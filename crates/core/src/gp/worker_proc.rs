//! Process-level island workers under a supervising parent.
//!
//! This module promotes the thread-level [`super::island::IslandCoordinator`]
//! to a supervisor/worker architecture: islands are stepped by separate OS
//! processes (or in-process loopback workers that speak the identical byte
//! protocol) connected to the supervisor by the frame transport of
//! [`super::transport`]. The payloads are JSON-encoded [`WireMsg`]s carrying
//! checkpoint-v2 [`IslandSnapshot`] fragments — the same serialization the
//! checkpoint file uses, so everything that round-trips through a checkpoint
//! round-trips over the wire, exactly (the vendored JSON layer prints `f64`
//! in shortest-roundtrip form).
//!
//! # Division of labour
//!
//! The **worker** is deliberately dumb: it rebuilds the deterministic
//! fitness pipeline from its [`WorkerSpec`] (examples, config, base feature
//! columns), then answers `Step` requests by advancing the received island
//! state exactly one generation. It holds no retry logic, no timers, no
//! policy — if anything is wrong it exits with a typed [`WorkerError`].
//!
//! The **supervisor** owns all robustness policy: per-worker heartbeat
//! deadlines, frame-level validation (never trust a byte off the wire),
//! retry-with-backoff respawn from the last committed round, and a bounded
//! reconnect window after which a worker's islands are **frozen** — still
//! merged, never silently dropped. The degradation ladder is
//! `retry → respawn → freeze-but-merge`.
//!
//! # Determinism
//!
//! The signature invariant — byte-identical results and checkpoints for a
//! given `(seed, topology)` — holds at any worker count, over any launcher,
//! and under any injected transport fault schedule, because:
//!
//! - **Rounds are barriers.** Each round sends every active island's last
//!   committed state out, and commits replies in island-id order only after
//!   every batch joined. Worker count changes wall-clock, never state.
//! - **A retried batch replays a pure function.** The worker's step is a
//!   deterministic function of `(spec, island snapshot)`; a respawned
//!   worker re-stepping the same committed state produces the same bytes,
//!   so transient kills, torn frames and duplicate frames are invisible in
//!   results. Worker respawns and reconnects are *telemetry-only* — they
//!   are never written into island state (unlike island-level fitness
//!   crashes, which the thread coordinator records; transport faults are
//!   infrastructure, not search events).
//! - **Faults are keyed, not timed**: the injector is consulted once per
//!   worker batch attempt under `worker:<id>:round<r>#a<attempt>`, so a
//!   schedule reproduces identically at any speed.
//! - **Exhaustion freezes deterministically.** For a fixed schedule and
//!   worker count, which islands freeze is a function of the schedule alone
//!   (and freezing *is* recorded in state, exactly as the thread
//!   coordinator records it).
//! - **Cancellation discards whole rounds**: an interrupted round commits
//!   nothing; the state sits at the previous round boundary.

use crate::faults::{stable_hash, CancelToken, FaultInjector, FaultKind};
use crate::gp::engine::{GpEngine, GpRun, GpState, GpStatus};
use crate::gp::island::{
    merge_islands, migrate_ring, IslandSnapshot, IslandStatus, IslandTopology, IslandsState,
    RoundStatus,
};
use crate::gp::transport::{
    duplex, FrameTransport, SendFault, StreamTransport, TransportError, TransportStats,
    PROTOCOL_VERSION,
};
use crate::grammar::Grammar;
use crate::lang::EvalEngine;
use crate::search::{FeatureSearch, SearchConfig, TrainingExample};
use crate::telemetry::Telemetry;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Everything a worker needs to rebuild the deterministic fitness pipeline:
/// the search configuration (with the *effective*, outer-budget-clamped GP
/// settings), the evaluation engine, the training examples and the base
/// feature texts accepted so far. Sent once per connection in the
/// [`WireMsg::Hello`] handshake.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerSpec {
    /// Protocol version the supervisor speaks; checked in the handshake on
    /// top of the per-frame check, so a skewed *message* vocabulary is
    /// caught even when the frame layout still matches.
    pub protocol: u32,
    /// Full search configuration, `gp` already clamped to the remaining
    /// outer generation budget.
    pub config: SearchConfig,
    /// Feature-evaluation engine (execution strategy; identical values
    /// either way, shipped so worker telemetry matches supervisor intent).
    pub engine: EvalEngine,
    /// Digest of the supervisor's grammar (`Debug` form). The worker
    /// re-derives its grammar from the examples and refuses the spec if the
    /// two disagree — a split-brain grammar would silently change the
    /// search space.
    pub grammar_digest: u64,
    /// The training examples (cycle tables round-trip bit-exactly).
    pub examples: Vec<TrainingExample>,
    /// Accepted base features, in order, as parseable text.
    pub base_features: Vec<String>,
}

/// Content digest of a grammar — the compact stand-in for shipping the
/// (non-serializable) grammar itself. Rendered from resolved names, not
/// `Debug` (which leaks process-local symbol-interner state and would make
/// a freshly spawned worker reject a supervisor with identical grammar).
pub fn grammar_digest(grammar: &Grammar) -> u64 {
    let mut canon = String::new();
    canon.push_str("kinds:");
    for k in grammar.kinds() {
        canon.push_str(k.as_str());
        canon.push(';');
    }
    canon.push_str("|num:");
    for a in grammar.num_attrs() {
        canon.push_str(&format!("{}[{:?},{:?}];", a.name.as_str(), a.min, a.max));
    }
    canon.push_str("|bool:");
    for a in grammar.bool_attrs() {
        canon.push_str(a.as_str());
        canon.push(';');
    }
    canon.push_str("|enum:");
    for a in grammar.enum_attrs() {
        canon.push_str(a.name.as_str());
        canon.push('{');
        for v in &a.values {
            canon.push_str(v.as_str());
            canon.push(',');
        }
        canon.push_str("};");
    }
    canon.push_str(&format!("|max_children:{}", grammar.max_children()));
    stable_hash(canon.as_bytes())
}

impl WorkerSpec {
    /// Builds the spec a supervisor hands its workers.
    pub fn new(
        config: SearchConfig,
        engine: EvalEngine,
        grammar: &Grammar,
        examples: &[TrainingExample],
        base_features: Vec<String>,
    ) -> Self {
        WorkerSpec {
            protocol: PROTOCOL_VERSION,
            config,
            engine,
            grammar_digest: grammar_digest(grammar),
            examples: examples.to_vec(),
            base_features,
        }
    }

    /// Content digest of the spec, echoed back in [`WireMsg::HelloAck`] so
    /// the supervisor can verify the worker adopted the exact bytes it sent.
    pub fn digest(&self) -> u64 {
        let json = serde_json::to_string(self).unwrap_or_default();
        stable_hash(json.as_bytes())
    }
}

/// The supervisor↔worker message vocabulary. Every message travels as one
/// frame; the payload is this enum, JSON-encoded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireMsg {
    /// Supervisor → worker: handshake carrying the full spec.
    Hello {
        /// The worker's build instructions.
        spec: WorkerSpec,
    },
    /// Worker → supervisor: handshake acknowledgement.
    HelloAck {
        /// [`WorkerSpec::digest`] of the spec the worker adopted.
        spec_digest: u64,
    },
    /// Supervisor → worker: advance this island one generation.
    Step {
        /// The island's last committed state.
        island: IslandSnapshot,
    },
    /// Worker → supervisor: the stepped island.
    StepDone {
        /// The island after one generation.
        island: IslandSnapshot,
        /// The step hit the engine's convergence rule.
        converged: bool,
    },
    /// Worker → supervisor: the worker cannot proceed (typed detail); the
    /// connection is dead after this.
    WorkerError {
        /// Human-readable failure description.
        detail: String,
    },
    /// Supervisor → worker: exit cleanly.
    Shutdown,
}

/// Encodes a [`WireMsg`] as a frame payload.
pub fn encode_msg(msg: &WireMsg) -> Result<Vec<u8>, TransportError> {
    serde_json::to_string(msg)
        .map(String::into_bytes)
        .map_err(|e| TransportError::Malformed(format!("encode: {e}")))
}

/// Decodes a frame payload as a [`WireMsg`]. Typed rejection, never a
/// panic: the payload already passed the frame digest, but digest-valid
/// bytes can still be version-skewed or hostile JSON.
pub fn decode_msg(payload: &[u8]) -> Result<WireMsg, TransportError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| TransportError::Malformed(format!("non-UTF-8 payload: {e}")))?;
    serde_json::from_str(text).map_err(|e| TransportError::Malformed(format!("decode: {e}")))
}

/// Typed worker-side failures. A worker exits with one of these — it never
/// hangs on bad input and never panics on wire bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerError {
    /// The transport failed or delivered invalid frames.
    Transport(TransportError),
    /// The handshake violated the protocol (wrong first message, protocol
    /// skew, unexpected message mid-session).
    Handshake {
        /// What was violated.
        detail: String,
    },
    /// The spec was well-formed on the wire but unusable (grammar digest
    /// mismatch, unparseable base feature, invalid configuration).
    Spec {
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for WorkerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerError::Transport(e) => write!(f, "worker transport failure: {e}"),
            WorkerError::Handshake { detail } => write!(f, "worker handshake failure: {detail}"),
            WorkerError::Spec { detail } => write!(f, "worker spec rejected: {detail}"),
        }
    }
}

impl std::error::Error for WorkerError {}

impl From<TransportError> for WorkerError {
    fn from(e: TransportError) -> Self {
        WorkerError::Transport(e)
    }
}

/// The worker main loop: handshake, rebuild the fitness pipeline, answer
/// `Step` requests until `Shutdown` or EOF.
///
/// The loop is crash-only: any protocol violation or transport failure is
/// a typed error and the worker exits; the supervisor treats the dead
/// connection as a respawn trigger. A clean EOF after the handshake is a
/// normal shutdown (the supervisor dropped the connection).
pub fn run_worker<T: FrameTransport>(transport: &mut T) -> Result<(), WorkerError> {
    let spec = match decode_msg(&transport.recv()?)? {
        WireMsg::Hello { spec } => spec,
        other => {
            return Err(WorkerError::Handshake {
                detail: format!("expected Hello, got {}", msg_name(&other)),
            })
        }
    };
    if spec.protocol != PROTOCOL_VERSION {
        // Tell the supervisor why before dying — best-effort, the typed
        // exit matters more than the courtesy message.
        let detail = format!(
            "protocol skew: supervisor speaks v{}, this worker v{PROTOCOL_VERSION}",
            spec.protocol
        );
        let _ = encode_msg(&WireMsg::WorkerError {
            detail: detail.clone(),
        })
        .and_then(|m| transport.send(&m));
        return Err(WorkerError::Handshake { detail });
    }
    let spec_digest = spec.digest();

    // Rebuild the exact deterministic fitness pipeline the supervisor's
    // in-process path would use: same grammar derivation, same harness,
    // same base columns — byte-identical `f64` trajectories.
    let search = FeatureSearch::from_examples(&spec.examples, spec.config.clone())
        .with_engine(spec.engine);
    if grammar_digest(search.grammar()) != spec.grammar_digest {
        let detail = format!(
            "grammar digest mismatch: derived {:016x}, supervisor expects {:016x}",
            grammar_digest(search.grammar()),
            spec.grammar_digest
        );
        let _ = encode_msg(&WireMsg::WorkerError {
            detail: detail.clone(),
        })
        .and_then(|m| transport.send(&m));
        return Err(WorkerError::Spec { detail });
    }
    let mut harness = search.harness(&spec.examples).map_err(|e| WorkerError::Spec {
        detail: format!("harness: {e}"),
    })?;
    for text in &spec.base_features {
        let expr = crate::lang::parse_feature(text).map_err(|e| WorkerError::Spec {
            detail: format!("unparseable base feature `{text}`: {e}"),
        })?;
        let column = harness.column(&expr).ok_or_else(|| WorkerError::Spec {
            detail: format!("base feature `{text}` does not evaluate on the examples"),
        })?;
        harness.push_base_column(column);
    }
    let engine = GpEngine::new(search.grammar(), spec.config.gp.clone());
    let fitness = |e: &crate::lang::FeatureExpr| harness.fitness(e);

    transport.send(&encode_msg(&WireMsg::HelloAck { spec_digest })?)?;

    loop {
        let payload = match transport.recv() {
            Ok(payload) => payload,
            // The supervisor dropped the connection: normal shutdown.
            Err(TransportError::Closed) => return Ok(()),
            Err(e) => return Err(e.into()),
        };
        match decode_msg(&payload)? {
            WireMsg::Step { island } => {
                let mut gp =
                    GpState::from_snapshot(&island.gp).map_err(|e| WorkerError::Spec {
                        detail: format!("island {} state: {e}", island.id),
                    })?;
                // No cancel token on purpose: cancellation is supervisor
                // policy; a worker always finishes its step (or dies).
                let status = engine.step_cancellable(&mut gp, &fitness, None);
                let reply = WireMsg::StepDone {
                    island: IslandSnapshot {
                        id: island.id,
                        status: island.status,
                        restarts: island.restarts,
                        gp: gp.snapshot(),
                    },
                    converged: status == Some(GpStatus::Converged),
                };
                transport.send(&encode_msg(&reply)?)?;
            }
            WireMsg::Shutdown => return Ok(()),
            other => {
                return Err(WorkerError::Handshake {
                    detail: format!("unexpected message {} mid-session", msg_name(&other)),
                })
            }
        }
    }
}

/// Worker entrypoint over stdin/stdout — the body of the CLI's hidden
/// `island-worker` subcommand. Stdout *is* the transport channel, which is
/// why workers must never print.
pub fn run_stdio_worker() -> Result<(), WorkerError> {
    let mut transport = StreamTransport::new(std::io::stdin(), std::io::stdout());
    run_worker(&mut transport)
}

fn msg_name(msg: &WireMsg) -> &'static str {
    match msg {
        WireMsg::Hello { .. } => "Hello",
        WireMsg::HelloAck { .. } => "HelloAck",
        WireMsg::Step { .. } => "Step",
        WireMsg::StepDone { .. } => "StepDone",
        WireMsg::WorkerError { .. } => "WorkerError",
        WireMsg::Shutdown => "Shutdown",
    }
}

/// How the worker's stdio is wired to the supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelKind {
    /// Anonymous stdin/stdout pipes.
    Stdio,
    /// A Unix-domain socket pair installed as the child's stdin and stdout
    /// (one bidirectional descriptor instead of two pipes). Falls back to
    /// [`ChannelKind::Stdio`] on non-Unix targets.
    UnixSocket,
}

impl ChannelKind {
    fn as_str(self) -> &'static str {
        match self {
            ChannelKind::Stdio => "stdio",
            ChannelKind::UnixSocket => "unix-socket",
        }
    }
}

/// How the supervisor obtains a connected worker.
#[derive(Debug, Clone)]
pub enum WorkerLauncher {
    /// An in-process thread running [`run_worker`] over the in-memory
    /// duplex pipe. Same byte protocol, same codec path; only the carrier
    /// differs — which is exactly what the byte-identity tests exploit.
    Loopback,
    /// A child process (`argv[0]` + arguments, e.g. the `fegen` binary with
    /// the hidden `island-worker` subcommand), speaking frames over its
    /// stdin/stdout.
    Command {
        /// Program and arguments.
        argv: Vec<String>,
        /// How stdin/stdout are carried.
        channel: ChannelKind,
    },
}

impl WorkerLauncher {
    fn kind(&self) -> &'static str {
        match self {
            WorkerLauncher::Loopback => "loopback",
            WorkerLauncher::Command { channel, .. } => channel.as_str(),
        }
    }

    /// Spawns one unconnected (pre-handshake) worker.
    fn spawn(&self) -> Result<WorkerHandle, TransportError> {
        match self {
            WorkerLauncher::Loopback => {
                let (sup, mut wrk) = duplex();
                let thread = std::thread::spawn(move || {
                    // A worker failure surfaces to the supervisor as a dead
                    // connection; the typed error itself is the process-mode
                    // exit code's job.
                    let _ = run_worker(&mut wrk);
                });
                Ok(WorkerHandle {
                    transport: Some(Box::new(sup)),
                    child: None,
                    thread: Some(thread),
                    reported: TransportStats::default(),
                })
            }
            WorkerLauncher::Command { argv, channel } => {
                let (program, args) = argv
                    .split_first()
                    .ok_or_else(|| TransportError::Io("empty worker argv".into()))?;
                match channel {
                    ChannelKind::Stdio => spawn_stdio(program, args),
                    ChannelKind::UnixSocket => spawn_unix_socket(program, args),
                }
            }
        }
    }
}

fn spawn_stdio(program: &str, args: &[String]) -> Result<WorkerHandle, TransportError> {
    let mut child = Command::new(program)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| TransportError::Io(format!("spawn {program}: {e}")))?;
    let stdin = child
        .stdin
        .take()
        .ok_or_else(|| TransportError::Io("child stdin not captured".into()))?;
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| TransportError::Io("child stdout not captured".into()))?;
    Ok(WorkerHandle {
        transport: Some(Box::new(StreamTransport::new(stdout, stdin))),
        child: Some(child),
        thread: None,
        reported: TransportStats::default(),
    })
}

#[cfg(unix)]
fn spawn_unix_socket(program: &str, args: &[String]) -> Result<WorkerHandle, TransportError> {
    use std::os::fd::OwnedFd;
    use std::os::unix::net::UnixStream;
    let (parent_end, child_end) = UnixStream::pair()
        .map_err(|e| TransportError::Io(format!("socketpair: {e}")))?;
    let child_in: OwnedFd = child_end
        .try_clone()
        .map_err(|e| TransportError::Io(format!("clone socket: {e}")))?
        .into();
    let child_out: OwnedFd = child_end.into();
    let child = Command::new(program)
        .args(args)
        .stdin(Stdio::from(child_in))
        .stdout(Stdio::from(child_out))
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| TransportError::Io(format!("spawn {program}: {e}")))?;
    let reader = parent_end
        .try_clone()
        .map_err(|e| TransportError::Io(format!("clone socket: {e}")))?;
    Ok(WorkerHandle {
        transport: Some(Box::new(StreamTransport::new(reader, parent_end))),
        child: Some(child),
        thread: None,
        reported: TransportStats::default(),
    })
}

#[cfg(not(unix))]
fn spawn_unix_socket(program: &str, args: &[String]) -> Result<WorkerHandle, TransportError> {
    spawn_stdio(program, args)
}

/// One live worker connection. Dropping it severs the transport (a child
/// sees EOF and exits; a stuck child is killed) and reaps the process.
struct WorkerHandle {
    transport: Option<Box<dyn FrameTransport>>,
    child: Option<Child>,
    thread: Option<std::thread::JoinHandle<()>>,
    /// Transport stats already absorbed into supervisor counters.
    reported: TransportStats,
}

impl WorkerHandle {
    fn transport(&mut self) -> &mut dyn FrameTransport {
        self.transport
            .as_mut()
            .expect("transport present until shutdown")
            .as_mut()
    }

    /// Stats accumulated since the last drain.
    fn drain_stats(&mut self) -> TransportStats {
        let Some(t) = self.transport.as_ref() else {
            return TransportStats::default();
        };
        let now = t.stats();
        let delta = TransportStats {
            frames_tx: now.frames_tx - self.reported.frames_tx,
            frames_rx: now.frames_rx - self.reported.frames_rx,
            duplicates_dropped: now.duplicates_dropped - self.reported.duplicates_dropped,
        };
        self.reported = now;
        delta
    }

    /// Graceful shutdown: ask politely, sever the transport, wait.
    fn shutdown(mut self) {
        if let Some(t) = self.transport.as_mut() {
            let _ = encode_msg(&WireMsg::Shutdown).and_then(|m| t.send(&m));
        }
        // EOF unblocks a worker waiting in recv even if the Shutdown
        // message never made it through a poisoned stream.
        self.transport = None;
        if let Some(mut child) = self.child.take() {
            let _ = child.wait();
        }
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        // Failure path: sever, kill, reap. The kill covers a worker wedged
        // mid-step (e.g. by an injected stall) that EOF alone cannot reach.
        self.transport = None;
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Heartbeat sentinel: the batch has not been picked up this round.
const HB_QUEUED: u64 = u64::MAX;
/// Heartbeat sentinel: the batch finished this round.
const HB_DONE: u64 = u64::MAX - 1;

/// One island stepped by a worker, validated and decoded, awaiting the
/// round's barrier commit.
struct SteppedIsland {
    id: usize,
    gp: GpState,
    converged: bool,
    step_us: u64,
}

/// What one worker's batch attempt sequence left behind.
#[derive(Default)]
struct BatchOutcome {
    stepped: Vec<SteppedIsland>,
    frozen: bool,
    interrupted: bool,
    respawns: u64,
    reconnects: u64,
    digest_rejections: u64,
    frames: TransportStats,
}

fn add_stats(total: &mut TransportStats, delta: TransportStats) {
    total.frames_tx += delta.frames_tx;
    total.frames_rx += delta.frames_rx;
    total.duplicates_dropped += delta.duplicates_dropped;
}

/// Why a connect attempt failed.
enum ConnectError {
    /// The worker answered the handshake with the wrong spec digest.
    DigestRejected,
    /// Spawn, transport or protocol failure (detail for telemetry only).
    Failed,
}

/// The supervising parent: drives rounds over a fleet of worker
/// connections, owning heartbeats, respawn/backoff and the freeze policy.
/// The structural twin of [`super::island::IslandCoordinator`] with the
/// step function moved across a process boundary.
pub struct ProcSupervisor<'a> {
    spec: WorkerSpec,
    spec_digest: u64,
    launcher: WorkerLauncher,
    topology: IslandTopology,
    workers: usize,
    heartbeat_deadline_ms: u64,
    backoff_ms: u64,
    cancel: Option<&'a CancelToken>,
    injector: Option<&'a FaultInjector>,
    telemetry: Telemetry,
    /// Per-worker connections, kept across rounds. Mutex-wrapped so one
    /// batch thread per slot can drive its connection while the supervisor
    /// is shared immutably — a slot is only ever contended at shutdown.
    handles: Vec<Mutex<Option<WorkerHandle>>>,
    step_us: Vec<u64>,
    parsimony: bool,
    started: bool,
}

impl<'a> ProcSupervisor<'a> {
    /// A supervisor stepping `topology` islands with workers built from
    /// `spec` via `launcher`. Defaults: one worker, 2 s heartbeat deadline,
    /// 1 ms backoff base.
    pub fn new(spec: WorkerSpec, launcher: WorkerLauncher, topology: IslandTopology) -> Self {
        let islands = topology.islands.max(1);
        let parsimony = spec.config.gp.parsimony;
        let spec_digest = spec.digest();
        ProcSupervisor {
            spec,
            spec_digest,
            launcher,
            topology,
            workers: 1,
            heartbeat_deadline_ms: 2_000,
            backoff_ms: 1,
            cancel: None,
            injector: None,
            telemetry: Telemetry::disabled(),
            handles: Vec::new(),
            step_us: vec![0; islands],
            parsimony,
            started: false,
        }
    }

    /// Worker process count (execution knob: any value produces
    /// byte-identical results and checkpoints).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Heartbeat deadline in milliseconds; 0 disables the monitor.
    /// Observational only — a missed deadline is reported, never acted on.
    pub fn heartbeat_deadline_ms(mut self, ms: u64) -> Self {
        self.heartbeat_deadline_ms = ms;
        self
    }

    /// Base backoff (milliseconds) between reconnect attempts; grows
    /// exponentially per consecutive failure, capped at 2 s.
    pub fn backoff_ms(mut self, ms: u64) -> Self {
        self.backoff_ms = ms;
        self
    }

    /// Cooperative cancellation token, polled at attempt boundaries.
    pub fn cancel(mut self, cancel: Option<&'a CancelToken>) -> Self {
        self.cancel = cancel;
        self
    }

    /// Fault injector consulted once per worker batch attempt (keys
    /// `worker:<id>:round<r>#a<attempt>`).
    pub fn injector(mut self, injector: Option<&'a FaultInjector>) -> Self {
        self.injector = injector;
        self
    }

    /// Telemetry handle for supervision events.
    pub fn telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.telemetry = telemetry.clone();
        self
    }

    fn is_cancelled(&self) -> bool {
        self.cancel.is_some_and(CancelToken::is_cancelled)
    }

    /// Advances every active island by one generation through the worker
    /// fleet, then (on migration rounds) exchanges elites. All-or-nothing:
    /// an interrupted round commits nothing.
    pub fn round(&mut self, state: &mut IslandsState) -> RoundStatus {
        if !self.started {
            self.started = true;
            self.telemetry
                .event("workers_start")
                .u64("workers", self.workers as u64)
                .str("launcher", self.launcher.kind())
                .u64("reconnect_limit", self.topology.restart_limit as u64)
                .emit();
        }
        let active: Vec<usize> = state
            .islands
            .iter()
            .filter(|i| i.status == IslandStatus::Active)
            .map(|i| i.id)
            .collect();
        if active.is_empty() {
            return RoundStatus::Done;
        }
        if self.is_cancelled() {
            return RoundStatus::Interrupted;
        }

        // Deterministic assignment: island `i` is stepped by worker
        // `i % workers`, whatever the fleet's health history.
        let workers = self.workers;
        let batches: Vec<Vec<usize>> = (0..workers)
            .map(|w| {
                active
                    .iter()
                    .copied()
                    .filter(|id| id % workers == w)
                    .collect()
            })
            .collect();
        while self.handles.len() < workers {
            self.handles.push(Mutex::new(None));
        }
        let round = state.round + 1;
        let epoch = Instant::now();
        let heartbeats: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(HB_QUEUED)).collect();
        let mut outcomes: Vec<BatchOutcome> = (0..workers).map(|_| BatchOutcome::default()).collect();
        {
            let this = &*self;
            let pending = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for ((w, batch), (out, hb)) in batches
                    .iter()
                    .enumerate()
                    .zip(outcomes.iter_mut().zip(heartbeats.iter()))
                {
                    if batch.is_empty() {
                        continue;
                    }
                    let islands: Vec<IslandSnapshot> = batch
                        .iter()
                        .map(|&id| {
                            let island = &state.islands[id];
                            IslandSnapshot {
                                id: island.id,
                                status: island.status,
                                restarts: island.restarts,
                                gp: island.gp.snapshot(),
                            }
                        })
                        .collect();
                    pending.fetch_add(1, Ordering::SeqCst);
                    let pending = &pending;
                    let epoch = &epoch;
                    s.spawn(move || {
                        hb.store(epoch.elapsed().as_millis() as u64, Ordering::SeqCst);
                        let mut slot = this.handles[w].lock().expect("worker slot lock");
                        *out = this.run_batch(w, round, &islands, &mut slot, hb, epoch);
                        drop(slot);
                        hb.store(HB_DONE, Ordering::SeqCst);
                        pending.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                this.monitor(&heartbeats, &pending, &epoch);
            });
        }

        // An interrupted batch poisons the whole round: committing a
        // partial round would make the boundary worker-count-dependent.
        if outcomes.iter().any(|o| o.interrupted) || self.is_cancelled() {
            return RoundStatus::Interrupted;
        }

        // Worker-level resilience telemetry, in worker-id order. All of it
        // is observational: respawns and reconnects never enter island
        // state, so a transiently flaky transport is byte-invisible.
        for (w, out) in outcomes.iter().enumerate() {
            if out.respawns > 0 {
                self.telemetry
                    .event("worker_respawn")
                    .u64("worker", w as u64)
                    .u64("round", round as u64)
                    .u64("respawns", out.respawns)
                    .emit();
                self.telemetry.counter_add("worker.respawns", out.respawns);
            }
            if out.reconnects > 0 {
                self.telemetry
                    .event("worker_reconnect")
                    .u64("worker", w as u64)
                    .u64("round", round as u64)
                    .u64("reconnects", out.reconnects)
                    .emit();
                self.telemetry
                    .counter_add("worker.reconnects", out.reconnects);
            }
            if out.digest_rejections > 0 {
                self.telemetry
                    .counter_add("worker.digest_rejections", out.digest_rejections);
            }
            self.telemetry.counter_add("worker.frames_tx", out.frames.frames_tx);
            self.telemetry.counter_add("worker.frames_rx", out.frames.frames_rx);
            self.telemetry
                .counter_add("worker.duplicates_dropped", out.frames.duplicates_dropped);
            if out.frozen {
                self.telemetry
                    .event("worker_frozen")
                    .u64("worker", w as u64)
                    .u64("round", round as u64)
                    .u64("islands", batches[w].len() as u64)
                    .emit();
                self.telemetry
                    .counter_add("worker.frozen_islands", batches[w].len() as u64);
            }
        }

        // Deterministic commit, in island-id order (`active` ascends).
        for &id in &active {
            let w = id % workers;
            let out = &mut outcomes[w];
            let island = &mut state.islands[id];
            if out.frozen {
                // Graceful degradation, exactly like the thread
                // coordinator's freeze: reported, never silently dropped —
                // the last committed state still migrates and merges.
                island.status = IslandStatus::Frozen;
                self.telemetry
                    .event("island_frozen")
                    .u64("island", id as u64)
                    .u64("generations", island.gp.generations as u64)
                    .u64("restarts", island.restarts as u64)
                    .emit();
                self.telemetry.counter_add("island.frozen", 1);
                self.telemetry.progress(&format!(
                    "island {id} frozen: worker {w} exhausted its reconnect window; \
                     its last state still joins the merge"
                ));
                continue;
            }
            let pos = out
                .stepped
                .iter()
                .position(|s| s.id == id)
                .expect("uninterrupted, unfrozen batch stepped all its islands");
            let stepped = out.stepped.swap_remove(pos);
            self.step_us[id] += stepped.step_us;
            island.gp = stepped.gp;
            if stepped.converged {
                island.status = IslandStatus::Converged;
                self.telemetry
                    .event("island_converged")
                    .u64("island", id as u64)
                    .u64("generations", island.gp.generations as u64)
                    .emit();
            }
        }
        state.round += 1;
        if state.round.is_multiple_of(self.topology.migration_every.max(1)) {
            migrate_ring(state, &self.telemetry);
        }
        if state
            .islands
            .iter()
            .any(|i| i.status == IslandStatus::Active)
        {
            RoundStatus::Running
        } else {
            RoundStatus::Done
        }
    }

    /// One worker's batch for one round: the retry → respawn → freeze
    /// ladder. Every attempt replays the *whole* batch from the round's
    /// committed snapshots, so partial progress can never leak.
    fn run_batch(
        &self,
        w: usize,
        round: usize,
        islands: &[IslandSnapshot],
        slot: &mut Option<WorkerHandle>,
        hb: &AtomicU64,
        epoch: &Instant,
    ) -> BatchOutcome {
        let mut out = BatchOutcome::default();
        let mut attempt = 0usize;
        loop {
            if self.is_cancelled() {
                out.interrupted = true;
                return out;
            }
            attempt += 1;
            if attempt > self.topology.restart_limit + 1 {
                // Reconnect window exhausted: freeze-but-merge.
                out.frozen = true;
                return out;
            }
            let key = format!("worker:{w}:round{round}#a{attempt}");
            let mut first_send = SendFault::Clean;
            let mut kill = false;
            let mut slow_handshake_ms = 0u64;
            if let Some(injector) = self.injector {
                for fault in injector.fire_all(&key) {
                    match fault {
                        FaultKind::KillWorker => kill = true,
                        FaultKind::TornFrame => first_send = SendFault::Torn,
                        FaultKind::DuplicateFrame => first_send = SendFault::Duplicate,
                        FaultKind::SlowHandshake(ms) => slow_handshake_ms = ms,
                        FaultKind::StallConn(ms)
                        | FaultKind::IslandStall(ms)
                        | FaultKind::Delay(ms) => {
                            // Wall-clock only: the batch hangs, heartbeats
                            // go overdue, nothing else changes.
                            std::thread::sleep(Duration::from_millis(ms));
                        }
                        FaultKind::Cancel => {
                            if let Some(cancel) = self.cancel {
                                cancel.cancel();
                            }
                        }
                        _ => {}
                    }
                }
            }
            if kill {
                // The worker dies before (or instead of) serving this
                // attempt; sever and respawn on the next one.
                if let Some(mut handle) = slot.take() {
                    add_stats(&mut out.frames, handle.drain_stats());
                }
                out.respawns += 1;
                self.backoff(attempt);
                continue;
            }
            if slot.is_none() {
                if slow_handshake_ms > 0 {
                    std::thread::sleep(Duration::from_millis(slow_handshake_ms));
                }
                match self.connect() {
                    Ok(handle) => {
                        *slot = Some(handle);
                        if attempt > 1 {
                            out.reconnects += 1;
                        }
                    }
                    Err(ConnectError::DigestRejected) => {
                        out.digest_rejections += 1;
                        self.backoff(attempt);
                        continue;
                    }
                    Err(ConnectError::Failed) => {
                        self.backoff(attempt);
                        continue;
                    }
                }
            }
            let handle = slot.as_mut().expect("connected above");
            hb.store(epoch.elapsed().as_millis() as u64, Ordering::SeqCst);
            match step_batch(handle, islands, first_send, hb, epoch) {
                Ok(stepped) => {
                    out.stepped = stepped;
                    add_stats(&mut out.frames, handle.drain_stats());
                    return out;
                }
                Err(_) => {
                    // Typed frame errors are fatal to the connection (no
                    // resync): absorb its counters, sever, retry from the
                    // committed round.
                    if let Some(mut handle) = slot.take() {
                        add_stats(&mut out.frames, handle.drain_stats());
                    }
                    out.respawns += 1;
                    self.backoff(attempt);
                }
            }
        }
    }

    fn backoff(&self, attempt: usize) {
        let ms = self
            .backoff_ms
            .saturating_mul(1 << attempt.saturating_sub(1).min(5))
            .min(2_000);
        if ms > 0 {
            std::thread::sleep(Duration::from_millis(ms));
        }
    }

    /// Spawns and handshakes one worker, verifying it adopted the exact
    /// spec bytes (a worker with a different view of the search must never
    /// be allowed to step islands).
    fn connect(&self) -> Result<WorkerHandle, ConnectError> {
        let mut handle = self.launcher.spawn().map_err(|_| ConnectError::Failed)?;
        let hello = encode_msg(&WireMsg::Hello {
            spec: self.spec.clone(),
        })
        .map_err(|_| ConnectError::Failed)?;
        let t = handle.transport();
        t.send(&hello).map_err(|_| ConnectError::Failed)?;
        let reply = t.recv().map_err(|_| ConnectError::Failed)?;
        match decode_msg(&reply) {
            Ok(WireMsg::HelloAck { spec_digest }) if spec_digest == self.spec_digest => Ok(handle),
            Ok(WireMsg::HelloAck { .. }) => Err(ConnectError::DigestRejected),
            _ => Err(ConnectError::Failed),
        }
    }

    /// Observational heartbeat monitor, run on the supervisor thread while
    /// batches are in flight. At most one miss reported per worker per
    /// round; never touches search state.
    fn monitor(&self, heartbeats: &[AtomicU64], pending: &AtomicUsize, epoch: &Instant) {
        if self.heartbeat_deadline_ms == 0 {
            return;
        }
        let poll = Duration::from_millis((self.heartbeat_deadline_ms / 4).clamp(2, 250));
        let mut reported = vec![false; heartbeats.len()];
        while pending.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(poll);
            let now = epoch.elapsed().as_millis() as u64;
            for (w, hb) in heartbeats.iter().enumerate() {
                let beat = hb.load(Ordering::SeqCst);
                if beat == HB_QUEUED || beat == HB_DONE || reported[w] {
                    continue;
                }
                let overdue = now.saturating_sub(beat);
                if overdue > self.heartbeat_deadline_ms {
                    reported[w] = true;
                    self.telemetry
                        .event("worker_heartbeat_missed")
                        .u64("worker", w as u64)
                        .u64("overdue_ms", overdue)
                        .u64("deadline_ms", self.heartbeat_deadline_ms)
                        .emit();
                    self.telemetry.counter_add("worker.heartbeat_missed", 1);
                }
            }
        }
    }

    /// Merges the islands into one [`GpRun`] — the shared policy of
    /// [`merge_islands`], so process-mode merges cannot drift from
    /// thread-mode ones.
    pub fn merge(&self, state: &IslandsState) -> GpRun {
        merge_islands(state, self.parsimony, &self.step_us, &self.telemetry)
    }

    /// Shuts the fleet down gracefully: `Shutdown` message, EOF, reap.
    /// Flushes the accumulated counters as `metric` events so `fegen
    /// report` can render the worker-resilience tallies offline.
    pub fn shutdown(mut self) {
        for slot in self.handles.drain(..) {
            let slot = slot
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(mut handle) = slot {
                let frames = handle.drain_stats();
                self.telemetry.counter_add("worker.frames_tx", frames.frames_tx);
                self.telemetry.counter_add("worker.frames_rx", frames.frames_rx);
                self.telemetry
                    .counter_add("worker.duplicates_dropped", frames.duplicates_dropped);
                handle.shutdown();
            }
        }
        if self.started {
            self.telemetry.emit_metrics("proc_supervisor");
        }
    }
}

/// Sends every island of the batch through one connection, one
/// request/response pair at a time, validating each reply before trusting
/// it. The first send of the attempt carries the injected send fault (if
/// any); a torn first frame therefore fails the whole attempt, which
/// retries from the committed round.
fn step_batch(
    handle: &mut WorkerHandle,
    islands: &[IslandSnapshot],
    first_send: SendFault,
    hb: &AtomicU64,
    epoch: &Instant,
) -> Result<Vec<SteppedIsland>, TransportError> {
    let mut out = Vec::with_capacity(islands.len());
    for (pos, island) in islands.iter().enumerate() {
        let started = Instant::now();
        let msg = encode_msg(&WireMsg::Step {
            island: island.clone(),
        })?;
        let fault = if pos == 0 { first_send } else { SendFault::Clean };
        let t = handle.transport();
        t.send_with(&msg, fault)?;
        let reply = t.recv()?;
        hb.store(epoch.elapsed().as_millis() as u64, Ordering::SeqCst);
        match decode_msg(&reply)? {
            WireMsg::StepDone {
                island: stepped,
                converged,
            } if stepped.id == island.id => {
                let gp = GpState::from_snapshot(&stepped.gp)
                    .map_err(TransportError::Malformed)?;
                out.push(SteppedIsland {
                    id: stepped.id,
                    gp,
                    converged,
                    step_us: started.elapsed().as_micros() as u64,
                });
            }
            WireMsg::StepDone { island: stepped, .. } => {
                return Err(TransportError::Malformed(format!(
                    "worker stepped island {}, supervisor asked for {}",
                    stepped.id, island.id
                )))
            }
            WireMsg::WorkerError { detail } => {
                return Err(TransportError::Malformed(format!(
                    "worker refused: {detail}"
                )))
            }
            other => {
                return Err(TransportError::Malformed(format!(
                    "unexpected reply {} to Step",
                    msg_name(&other)
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::IrNode;

    fn tiny_spec() -> WorkerSpec {
        let examples: Vec<TrainingExample> = (0..6)
            .map(|i| {
                let ir = IrNode::build("loop", |l| {
                    l.attr_num("n", i as f64);
                    for _ in 0..(1 + i % 3) {
                        l.child("insn", |x| {
                            x.attr_enum("mode", "SI");
                        });
                    }
                });
                TrainingExample {
                    ir,
                    cycles: vec![100.0, 90.0 + i as f64, 120.0],
                }
            })
            .collect();
        let config = SearchConfig::quick();
        let search = FeatureSearch::from_examples(&examples, config.clone());
        WorkerSpec::new(
            config,
            EvalEngine::default(),
            search.grammar(),
            &examples,
            Vec::new(),
        )
    }

    #[test]
    fn wire_messages_roundtrip() {
        let spec = tiny_spec();
        let msgs = vec![
            WireMsg::Hello { spec: spec.clone() },
            WireMsg::HelloAck {
                spec_digest: spec.digest(),
            },
            WireMsg::WorkerError {
                detail: "no".into(),
            },
            WireMsg::Shutdown,
        ];
        for msg in msgs {
            let bytes = encode_msg(&msg).unwrap();
            assert_eq!(decode_msg(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn spec_digest_is_content_sensitive() {
        let a = tiny_spec();
        let mut b = a.clone();
        assert_eq!(a.digest(), b.digest());
        b.base_features.push("count(//*)".into());
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn worker_rejects_protocol_skew_with_typed_error() {
        let (mut sup, mut wrk) = duplex();
        let mut spec = tiny_spec();
        spec.protocol = PROTOCOL_VERSION + 1;
        let worker = std::thread::spawn(move || run_worker(&mut wrk));
        sup.send(&encode_msg(&WireMsg::Hello { spec }).unwrap())
            .unwrap();
        // The worker sends a courtesy WorkerError before dying typed.
        let reply = decode_msg(&sup.recv().unwrap()).unwrap();
        assert!(matches!(reply, WireMsg::WorkerError { .. }));
        let err = worker.join().unwrap().unwrap_err();
        assert!(matches!(err, WorkerError::Handshake { .. }), "got {err}");
    }

    #[test]
    fn worker_rejects_non_hello_first_message() {
        let (mut sup, mut wrk) = duplex();
        let worker = std::thread::spawn(move || run_worker(&mut wrk));
        sup.send(&encode_msg(&WireMsg::Shutdown).unwrap()).unwrap();
        let err = worker.join().unwrap().unwrap_err();
        assert!(matches!(err, WorkerError::Handshake { .. }), "got {err}");
    }

    #[test]
    fn worker_rejects_garbage_payload_typed() {
        let (mut sup, mut wrk) = duplex();
        let worker = std::thread::spawn(move || run_worker(&mut wrk));
        sup.send(b"definitely not json").unwrap();
        let err = worker.join().unwrap().unwrap_err();
        assert!(
            matches!(err, WorkerError::Transport(TransportError::Malformed(_))),
            "got {err}"
        );
    }

    #[test]
    fn worker_handshakes_and_exits_on_clean_eof() {
        let (mut sup, mut wrk) = duplex();
        let spec = tiny_spec();
        let digest = spec.digest();
        let worker = std::thread::spawn(move || run_worker(&mut wrk));
        sup.send(&encode_msg(&WireMsg::Hello { spec }).unwrap())
            .unwrap();
        match decode_msg(&sup.recv().unwrap()).unwrap() {
            WireMsg::HelloAck { spec_digest } => assert_eq!(spec_digest, digest),
            other => panic!("expected HelloAck, got {other:?}"),
        }
        drop(sup);
        assert_eq!(worker.join().unwrap(), Ok(()));
    }
}
