//! Grammar-respecting GP search operators.

use crate::grammar::Grammar;
use crate::lang::visit::{self, AnyExpr, Sort};
use crate::lang::FeatureExpr;
use rand::Rng;

const SORTS: [Sort; 3] = [Sort::Num, Sort::Bool, Sort::Seq];

/// Picks a uniformly random subtree position `(sort, index)` of `expr`.
fn random_position<R: Rng + ?Sized>(expr: &FeatureExpr, rng: &mut R) -> (Sort, usize) {
    let c = visit::counts(expr);
    let total = c.total();
    debug_assert!(total > 0);
    let mut i = rng.gen_range(0..total);
    for sort in SORTS {
        let n = c.get(sort);
        if i < n {
            return (sort, i);
        }
        i -= n;
    }
    // `i` was drawn below the sum of the per-sort counts, so one of the
    // branches above returned; the numeric root is the safe fallback.
    (Sort::Num, 0)
}

/// Mutation (paper Figure 9): select a random non-terminal in the parse tree
/// and replace it with a fresh random expansion of the same non-terminal.
///
/// `regrow_depth` bounds the depth of the regenerated subtree.
pub fn mutate<R: Rng + ?Sized>(
    grammar: &Grammar,
    expr: &FeatureExpr,
    rng: &mut R,
    regrow_depth: usize,
) -> FeatureExpr {
    let (sort, idx) = random_position(expr, rng);
    let replacement = match sort {
        Sort::Num => AnyExpr::Num(grammar.gen_num(rng, regrow_depth)),
        Sort::Bool => AnyExpr::Bool(grammar.gen_bool(rng, regrow_depth)),
        Sort::Seq => AnyExpr::Seq(grammar.gen_seq(rng, regrow_depth)),
    };
    // Positions come from `counts` over the same tree, so `replace` always
    // succeeds; an (impossible) out-of-range index degrades to a no-op
    // mutation rather than a panic mid-search.
    visit::replace(expr, sort, idx, &replacement).unwrap_or_else(|| expr.clone())
}

/// Crossover (paper Figure 10): select non-terminals of the same sort in two
/// parse trees and swap the corresponding subtrees, producing two children.
///
/// When the randomly chosen sort has no occurrence in the mate, other sorts
/// are tried; `Sort::Num` always occurs in both (every feature has a numeric
/// root), so crossover always succeeds.
pub fn crossover<R: Rng + ?Sized>(
    a: &FeatureExpr,
    b: &FeatureExpr,
    rng: &mut R,
) -> (FeatureExpr, FeatureExpr) {
    let ca = visit::counts(a);
    let cb = visit::counts(b);
    // Choose the crossover sort weighted by its frequency in parent `a`,
    // restricted to sorts present in both parents.
    let mut weights = [0usize; 3];
    let mut total = 0usize;
    for (i, sort) in SORTS.iter().enumerate() {
        if ca.get(*sort) > 0 && cb.get(*sort) > 0 {
            weights[i] = ca.get(*sort);
            total += weights[i];
        }
    }
    debug_assert!(total > 0, "Sort::Num present in every feature");
    if total == 0 {
        return (a.clone(), b.clone());
    }
    let mut pick = rng.gen_range(0..total);
    let mut sort = Sort::Num;
    for (i, s) in SORTS.iter().enumerate() {
        if pick < weights[i] {
            sort = *s;
            break;
        }
        pick -= weights[i];
    }
    let ia = rng.gen_range(0..ca.get(sort));
    let ib = rng.gen_range(0..cb.get(sort));
    // Indices are drawn below the respective counts, so pick/replace always
    // succeed; if they ever did not, crossover degrades to cloning the
    // parents rather than panicking mid-search.
    let (Some(sub_a), Some(sub_b)) = (visit::pick(a, sort, ia), visit::pick(b, sort, ib)) else {
        return (a.clone(), b.clone());
    };
    let (Some(child_a), Some(child_b)) = (
        visit::replace(a, sort, ia, &sub_b),
        visit::replace(b, sort, ib, &sub_a),
    ) else {
        return (a.clone(), b.clone());
    };
    (child_a, child_b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::IrNode;
    use crate::lang::parse_feature;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grammar() -> Grammar {
        let ir = IrNode::build("loop", |l| {
            l.attr_num("num-iter", 10.0);
            l.child("insn", |i| {
                i.attr_enum("mode", "SI");
                i.child("reg", |_| {});
            });
        });
        Grammar::derive([&ir])
    }

    #[test]
    fn mutate_produces_valid_printable_features() {
        let g = grammar();
        let mut rng = StdRng::seed_from_u64(5);
        let base = parse_feature("count(filter(//*, is-type(insn))) + get-attr(@num-iter)")
            .unwrap();
        for _ in 0..100 {
            let m = mutate(&g, &base, &mut rng, 4);
            let printed = m.to_string();
            assert_eq!(
                crate::lang::parse_feature(&printed).unwrap(),
                m,
                "mutant must roundtrip: {printed}"
            );
        }
    }

    #[test]
    fn mutate_eventually_changes_the_expression() {
        let g = grammar();
        let mut rng = StdRng::seed_from_u64(11);
        let base = parse_feature("count(//*)").unwrap();
        let changed = (0..50).any(|_| mutate(&g, &base, &mut rng, 4) != base);
        assert!(changed, "50 mutations never changed the expression");
    }

    #[test]
    fn crossover_children_are_made_of_parent_material() {
        let mut rng = StdRng::seed_from_u64(17);
        let a = parse_feature("count(filter(//*, is-type(reg)))").unwrap();
        let b = parse_feature("sum(/*, get-attr(@num-iter))").unwrap();
        for _ in 0..100 {
            let (c1, c2) = crossover(&a, &b, &mut rng);
            for c in [&c1, &c2] {
                let printed = c.to_string();
                assert_eq!(parse_feature(&printed).unwrap(), *c);
            }
            // Swapping the whole roots yields the parents exchanged; any
            // other position mixes material. Either way total size is
            // conserved.
            assert_eq!(
                c1.size() + c2.size(),
                a.size() + b.size(),
                "crossover conserves total node count"
            );
        }
    }

    #[test]
    fn crossover_at_root_swaps_parents() {
        // With single-node parents the only position is the root.
        let mut rng = StdRng::seed_from_u64(1);
        let a = parse_feature("1").unwrap();
        let b = parse_feature("2").unwrap();
        let (c1, c2) = crossover(&a, &b, &mut rng);
        assert_eq!((c1, c2), (b, a));
    }
}
