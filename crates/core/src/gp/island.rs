//! Supervised island-model GP runtime.
//!
//! The paper's feature searches ran for weeks, which makes worker failure
//! the normal case, not the exception. This module makes the *island* the
//! restartable unit of work: N populations advance independently on
//! isolated RNG streams (each derived from the root seed), exchange elites
//! through periodic deterministic migration rounds, and are driven by a
//! coordinator that supervises every step.
//!
//! # Determinism rule
//!
//! The signature invariant of this repository — byte-identical results for
//! a given `(seed, topology)` — survives supervision because only
//! *content-deterministic* events may alter the trajectory:
//!
//! - A **round is a barrier**: every active island advances exactly one
//!   generation per round, dispatched across however many worker threads
//!   are available. Each step executes on a *clone* of the island's last
//!   committed state; results are committed sequentially in island-id
//!   order after all workers join, so the worker count can only change
//!   wall-clock time, never state.
//! - **Crashes are keyed, not timed**: each step attempt consults the
//!   fault injector under the key `island:<id>:g<generation>#a<attempt>`.
//!   Whether an attempt crashes is a function of that key alone, so
//!   injected kills reproduce identically at any worker count. A crashed
//!   attempt is retried from the island's last committed state with
//!   bounded exponential backoff; after [`IslandTopology::restart_limit`]
//!   consecutive failures the island is **frozen** — reported, never
//!   silently dropped, and its last committed state still sends migrants
//!   and joins the final merge.
//! - **Wall-clock events are report-only**: heartbeat deadlines, stalls
//!   and slow check-ins produce telemetry, never state changes.
//! - **Cancellation discards, never commits, partial rounds**: if any
//!   step is interrupted mid-round, every step result of that round is
//!   thrown away and the run checkpoints at the previous round boundary —
//!   cancellation only chooses *which* boundary the run stops at.
//!
//! # Migration
//!
//! Every [`IslandTopology::migration_every`] rounds, island `i` clones its
//! best-so-far individual into the last population slot of island
//! `(i + 1) % n` (a deterministic ring). Frozen and converged islands
//! still *send* — their discoveries are not lost — but no longer receive.
//! Every migration is recorded in a digest-guarded ledger that travels
//! with the checkpoint.

use crate::faults::{CancelToken, FaultInjector, FaultKind};
use crate::gp::engine::{Evaluated, GpEngine, GpRun, GpSnapshot, GpState, GpStatus};
use crate::gp::FitnessFn;
use crate::telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Island topology of a feature search. Part of
/// [`crate::search::SearchConfig`] — and therefore of the checkpoint
/// identity fingerprint — because it defines the search *trajectory*. The
/// worker thread count deliberately lives elsewhere
/// ([`crate::search::SearchDriver::workers`]): it is an execution knob
/// that must not change results.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IslandTopology {
    /// Number of island populations (1 = the classic single-population
    /// search; the island coordinator is bypassed entirely).
    pub islands: usize,
    /// Rounds between migration exchanges (each round advances every
    /// active island by one generation).
    pub migration_every: usize,
    /// Consecutive failed step attempts after which an island is frozen
    /// (0 = freeze on the first crash; the default allows 3 restarts).
    pub restart_limit: usize,
}

impl IslandTopology {
    /// The classic single-population search.
    pub fn single() -> Self {
        IslandTopology {
            islands: 1,
            migration_every: 5,
            restart_limit: 3,
        }
    }

    /// A ring of `islands` islands with default migration cadence and
    /// restart budget.
    pub fn ring(islands: usize) -> Self {
        IslandTopology {
            islands: islands.max(1),
            ..IslandTopology::single()
        }
    }
}

impl Default for IslandTopology {
    fn default() -> Self {
        IslandTopology::single()
    }
}

/// Supervision status of one island.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IslandStatus {
    /// Advancing one generation per round.
    Active,
    /// Reached its generation cap or stagnation limit.
    Converged,
    /// Exhausted its restart budget; its last committed state still sends
    /// migrants and joins the final merge.
    Frozen,
}

impl IslandStatus {
    /// Stable lower-case name, for telemetry.
    pub fn as_str(self) -> &'static str {
        match self {
            IslandStatus::Active => "active",
            IslandStatus::Converged => "converged",
            IslandStatus::Frozen => "frozen",
        }
    }
}

/// One island: an independent GP population under supervision.
#[derive(Debug, Clone)]
pub struct Island {
    /// Position in the ring (0-based, contiguous).
    pub id: usize,
    /// The island's GP state — its "last atomic checkpoint": steps execute
    /// on a clone and only successful results are committed back here.
    pub gp: GpState,
    /// Supervision status.
    pub status: IslandStatus,
    /// Crashed step attempts absorbed over the island's lifetime.
    pub restarts: usize,
}

/// One recorded elite exchange.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationRecord {
    /// Round (1-based) after which the exchange happened.
    pub round: usize,
    /// Sending island.
    pub from: usize,
    /// Receiving island.
    pub to: usize,
    /// The migrated individual, printed.
    pub feature: String,
    /// Its quality at migration time.
    pub quality: f64,
}

/// Full state of an island run between rounds: the unit the outer search
/// checkpoints and the coordinator merges.
#[derive(Debug, Clone)]
pub struct IslandsState {
    /// The islands, indexed by id.
    pub islands: Vec<Island>,
    /// Completed rounds.
    pub round: usize,
    /// Every migration performed so far.
    pub ledger: Vec<MigrationRecord>,
}

/// Serializable form of one [`Island`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IslandSnapshot {
    /// Position in the ring.
    pub id: usize,
    /// Supervision status.
    pub status: IslandStatus,
    /// Lifetime crashed attempts.
    pub restarts: usize,
    /// The island's GP state.
    pub gp: GpSnapshot,
}

/// Serializable form of an [`IslandsState`] — the merged multi-island
/// snapshot embedded in [`crate::checkpoint::SearchCheckpoint`]. The
/// migration ledger is guarded by a content digest so a truncated or
/// hand-edited ledger is rejected at load, never partially adopted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IslandsSnapshot {
    /// Completed rounds.
    pub round: usize,
    /// Per-island snapshots, in id order.
    pub islands: Vec<IslandSnapshot>,
    /// Every migration performed so far.
    pub ledger: Vec<MigrationRecord>,
    /// [`ledger_digest`] over `ledger`, for integrity.
    pub ledger_digest: u64,
}

/// Order-sensitive content digest of a migration ledger (FNV-1a chained
/// per record, like the examples digest).
pub fn ledger_digest(ledger: &[MigrationRecord]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for r in ledger {
        let text = format!(
            "{}|{}|{}|{}|{:016x}",
            r.round,
            r.from,
            r.to,
            r.feature,
            r.quality.to_bits()
        );
        h ^= crate::faults::stable_hash(text.as_bytes());
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl IslandsSnapshot {
    /// Structural integrity checks: contiguous island ids, in-range and
    /// digest-verified migration ledger. A snapshot that fails here is
    /// rejected wholesale — never partially loaded.
    pub fn validate(&self) -> Result<(), String> {
        if self.islands.is_empty() {
            return Err("island snapshot holds no islands".into());
        }
        let n = self.islands.len();
        for (slot, island) in self.islands.iter().enumerate() {
            if island.id != slot {
                return Err(format!(
                    "island ids must be contiguous: slot {slot} holds id {}",
                    island.id
                ));
            }
        }
        if ledger_digest(&self.ledger) != self.ledger_digest {
            return Err(
                "migration ledger digest mismatch (truncated or tampered ledger)".into(),
            );
        }
        for (i, r) in self.ledger.iter().enumerate() {
            if r.round == 0 || r.round > self.round {
                return Err(format!(
                    "migration record {i} claims round {} outside 1..={}",
                    r.round, self.round
                ));
            }
            if r.from >= n || r.to >= n {
                return Err(format!(
                    "migration record {i} references island {} -> {} outside 0..{n}",
                    r.from, r.to
                ));
            }
        }
        Ok(())
    }
}

impl IslandsState {
    /// Captures the full state in serializable form.
    pub fn snapshot(&self) -> IslandsSnapshot {
        IslandsSnapshot {
            round: self.round,
            islands: self
                .islands
                .iter()
                .map(|i| IslandSnapshot {
                    id: i.id,
                    status: i.status,
                    restarts: i.restarts,
                    gp: i.gp.snapshot(),
                })
                .collect(),
            ledger: self.ledger.clone(),
            ledger_digest: ledger_digest(&self.ledger),
        }
    }

    /// Rebuilds the state from a snapshot, validating it first. All-or-
    /// nothing: any failure leaves nothing adopted.
    pub fn from_snapshot(snapshot: &IslandsSnapshot) -> Result<IslandsState, String> {
        snapshot.validate()?;
        let mut islands = Vec::with_capacity(snapshot.islands.len());
        for s in &snapshot.islands {
            islands.push(Island {
                id: s.id,
                gp: GpState::from_snapshot(&s.gp)
                    .map_err(|e| format!("island {}: {e}", s.id))?,
                status: s.status,
                restarts: s.restarts,
            });
        }
        Ok(IslandsState {
            islands,
            round: snapshot.round,
            ledger: snapshot.ledger.clone(),
        })
    }

    /// GP generations executed across all islands.
    pub fn generations(&self) -> usize {
        self.islands.iter().map(|i| i.gp.generations).sum()
    }
}

/// What a coordinator round left behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundStatus {
    /// At least one island remains active.
    Running,
    /// Every island is converged or frozen.
    Done,
    /// Cancellation landed mid-round; *nothing* was committed — the state
    /// still sits at the previous round boundary.
    Interrupted,
}

/// Result of one supervised island step attempt sequence.
struct StepOutcome {
    /// The stepped state, or `None` when the island froze.
    stepped: Option<(GpState, GpStatus)>,
    /// Crashed attempts absorbed while producing this outcome.
    restarts: usize,
    /// The step was interrupted by cancellation; discard the round.
    interrupted: bool,
    /// Wall-clock time spent on this island this round (including retries
    /// and backoff), for the slowest-island report.
    step_us: u64,
}

/// Heartbeat sentinel: the island has not been picked up this round.
const HB_QUEUED: u64 = u64::MAX;
/// Heartbeat sentinel: the island finished its step this round.
const HB_DONE: u64 = u64::MAX - 1;

/// The supervising coordinator: drives one round at a time, owning the
/// heartbeat monitor, per-island panic quarantine, restart-with-backoff
/// and freeze-on-repeated-failure policy.
pub struct IslandCoordinator<'a, 'g> {
    engine: &'a GpEngine<'g>,
    topology: IslandTopology,
    workers: usize,
    heartbeat_deadline_ms: u64,
    restart_backoff_ms: u64,
    cancel: Option<&'a CancelToken>,
    injector: Option<&'a FaultInjector>,
    telemetry: Telemetry,
    /// Cumulative per-island step wall-clock, for the final report.
    step_us: Vec<u64>,
}

impl<'a, 'g> IslandCoordinator<'a, 'g> {
    /// A coordinator over `engine` with the given topology. Defaults: one
    /// worker, 2 s heartbeat deadline, 1 ms restart backoff base.
    pub fn new(engine: &'a GpEngine<'g>, topology: IslandTopology) -> Self {
        let islands = topology.islands.max(1);
        IslandCoordinator {
            engine,
            topology,
            workers: 1,
            heartbeat_deadline_ms: 2_000,
            restart_backoff_ms: 1,
            cancel: None,
            injector: None,
            telemetry: Telemetry::disabled(),
            step_us: vec![0; islands],
        }
    }

    /// Worker threads stepping islands each round (execution knob: any
    /// value produces byte-identical results).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Heartbeat deadline in milliseconds; 0 disables the monitor. The
    /// monitor is observational: a missed deadline is reported, never
    /// acted on (wall-clock events must not alter the trajectory).
    pub fn heartbeat_deadline_ms(mut self, ms: u64) -> Self {
        self.heartbeat_deadline_ms = ms;
        self
    }

    /// Base backoff (milliseconds) between restart attempts; grows
    /// exponentially per consecutive failure, capped at 2 s.
    pub fn restart_backoff_ms(mut self, ms: u64) -> Self {
        self.restart_backoff_ms = ms;
        self
    }

    /// Cooperative cancellation token, polled before and during steps.
    pub fn cancel(mut self, cancel: Option<&'a CancelToken>) -> Self {
        self.cancel = cancel;
        self
    }

    /// Fault injector consulted per step attempt (keys
    /// `island:<id>:g<generation>#a<attempt>`).
    pub fn injector(mut self, injector: Option<&'a FaultInjector>) -> Self {
        self.injector = injector;
        self
    }

    /// Telemetry handle for supervision events.
    pub fn telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.telemetry = telemetry.clone();
        self
    }

    /// Derives the initial island states: per-island RNG streams are
    /// seeded by consecutive draws from the outer RNG, in id order, so
    /// the topology fully determines every stream.
    pub fn init_state(
        engine: &GpEngine<'_>,
        topology: &IslandTopology,
        rng: &mut StdRng,
    ) -> IslandsState {
        let islands = (0..topology.islands.max(1))
            .map(|id| Island {
                id,
                gp: engine.init_state(StdRng::seed_from_u64(rng.gen())),
                status: IslandStatus::Active,
                restarts: 0,
            })
            .collect();
        IslandsState {
            islands,
            round: 0,
            ledger: Vec::new(),
        }
    }

    fn is_cancelled(&self) -> bool {
        self.cancel.is_some_and(CancelToken::is_cancelled)
    }

    /// Advances every active island by one generation, then (on migration
    /// rounds) exchanges elites. All-or-nothing: an interrupted round
    /// commits nothing.
    pub fn round<F: FitnessFn>(&mut self, state: &mut IslandsState, fitness: &F) -> RoundStatus {
        let active: Vec<usize> = state
            .islands
            .iter()
            .filter(|i| i.status == IslandStatus::Active)
            .map(|i| i.id)
            .collect();
        if active.is_empty() {
            return RoundStatus::Done;
        }
        if self.is_cancelled() {
            return RoundStatus::Interrupted;
        }

        let epoch = Instant::now();
        let heartbeats: Vec<AtomicU64> =
            active.iter().map(|_| AtomicU64::new(HB_QUEUED)).collect();
        let mut outcomes: Vec<Option<StepOutcome>> = active.iter().map(|_| None).collect();
        let workers = self.workers.min(active.len()).max(1);
        let chunk = active.len().div_ceil(workers);
        {
            let this = &*self;
            let refs: Vec<&Island> = active.iter().map(|&id| &state.islands[id]).collect();
            let pending = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for ((island_chunk, out_chunk), hb_chunk) in refs
                    .chunks(chunk)
                    .zip(outcomes.chunks_mut(chunk))
                    .zip(heartbeats.chunks(chunk))
                {
                    pending.fetch_add(1, Ordering::SeqCst);
                    let pending = &pending;
                    s.spawn(move || {
                        for ((island, slot), hb) in island_chunk
                            .iter()
                            .zip(out_chunk.iter_mut())
                            .zip(hb_chunk.iter())
                        {
                            hb.store(epoch.elapsed().as_millis() as u64, Ordering::SeqCst);
                            let started = Instant::now();
                            let mut outcome = this.step_island(island, fitness, hb, &epoch);
                            outcome.step_us = started.elapsed().as_micros() as u64;
                            let stop = outcome.interrupted;
                            *slot = Some(outcome);
                            hb.store(HB_DONE, Ordering::SeqCst);
                            if stop {
                                break;
                            }
                        }
                        pending.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                this.monitor(&active, &heartbeats, &pending, &epoch);
            });
        }

        // An interrupted step poisons the whole round: committing a
        // partial round would make the boundary worker-count-dependent.
        if outcomes
            .iter()
            .any(|o| o.as_ref().is_none_or(|o| o.interrupted))
            || self.is_cancelled()
        {
            return RoundStatus::Interrupted;
        }

        // Deterministic commit, in island-id order (`active` ascends).
        for (pos, &id) in active.iter().enumerate() {
            let outcome = outcomes[pos].take().expect("uninterrupted outcome present");
            self.step_us[id] += outcome.step_us;
            let island = &mut state.islands[id];
            if outcome.restarts > 0 {
                island.restarts += outcome.restarts;
                self.telemetry
                    .event("island_restart")
                    .u64("island", id as u64)
                    .u64("generation", (island.gp.generations + 1) as u64)
                    .u64("restarts", outcome.restarts as u64)
                    .emit();
                self.telemetry
                    .counter_add("island.restarts", outcome.restarts as u64);
            }
            match outcome.stepped {
                Some((gp, status)) => {
                    island.gp = gp;
                    if status == GpStatus::Converged {
                        island.status = IslandStatus::Converged;
                        self.telemetry
                            .event("island_converged")
                            .u64("island", id as u64)
                            .u64("generations", island.gp.generations as u64)
                            .emit();
                    }
                }
                None => {
                    // Graceful degradation: frozen and reported, never
                    // silently dropped — the last committed state still
                    // migrates and merges.
                    island.status = IslandStatus::Frozen;
                    self.telemetry
                        .event("island_frozen")
                        .u64("island", id as u64)
                        .u64("generations", island.gp.generations as u64)
                        .u64("restarts", island.restarts as u64)
                        .emit();
                    self.telemetry.counter_add("island.frozen", 1);
                    self.telemetry.progress(&format!(
                        "island {id} frozen after {} crashed attempt(s); \
                         its last state still joins the merge",
                        island.restarts
                    ));
                }
            }
        }
        state.round += 1;
        if state.round.is_multiple_of(self.topology.migration_every.max(1)) {
            self.migrate(state);
        }
        if state
            .islands
            .iter()
            .any(|i| i.status == IslandStatus::Active)
        {
            RoundStatus::Running
        } else {
            RoundStatus::Done
        }
    }

    /// Supervised single-island step: clone the committed state, attempt
    /// the generation, retry crashed attempts with bounded backoff.
    fn step_island<F: FitnessFn>(
        &self,
        island: &Island,
        fitness: &F,
        hb: &AtomicU64,
        epoch: &Instant,
    ) -> StepOutcome {
        let generation = island.gp.generations + 1;
        let mut failures = 0usize;
        loop {
            if self.is_cancelled() {
                return StepOutcome {
                    stepped: None,
                    restarts: failures,
                    interrupted: true,
                    step_us: 0,
                };
            }
            let attempt = failures + 1;
            let fault = self.injector.and_then(|inj| {
                inj.fire(&format!("island:{}:g{generation}#a{attempt}", island.id))
            });
            // A slow heartbeat delays the check-in itself; a stall hangs
            // the worker *after* it checked in. Both are wall-clock only.
            if let Some(FaultKind::SlowHeartbeat(ms)) = fault {
                std::thread::sleep(Duration::from_millis(ms));
            }
            hb.store(epoch.elapsed().as_millis() as u64, Ordering::SeqCst);
            match fault {
                Some(FaultKind::IslandStall(ms) | FaultKind::Delay(ms)) => {
                    std::thread::sleep(Duration::from_millis(ms));
                }
                Some(FaultKind::Cancel) => {
                    if let Some(cancel) = self.cancel {
                        cancel.cancel();
                    }
                }
                _ => {}
            }
            let crashed = matches!(fault, Some(FaultKind::IslandKill | FaultKind::Panic));
            if !crashed {
                // Step on a clone; the committed state is untouched until
                // the coordinator adopts the result — the island's "last
                // atomic checkpoint" is always intact to restart from.
                let mut trial = island.gp.clone();
                let engine = self.engine;
                let cancel = self.cancel;
                let result = catch_unwind(AssertUnwindSafe(move || {
                    let status = engine.step_cancellable(&mut trial, fitness, cancel);
                    (trial, status)
                }));
                match result {
                    Ok((trial, Some(status))) => {
                        return StepOutcome {
                            stepped: Some((trial, status)),
                            restarts: failures,
                            interrupted: false,
                            step_us: 0,
                        };
                    }
                    Ok((_, None)) => {
                        return StepOutcome {
                            stepped: None,
                            restarts: failures,
                            interrupted: true,
                            step_us: 0,
                        };
                    }
                    // A panic that escaped the engine's own quarantine:
                    // treat it as a worker crash and retry.
                    Err(_) => {}
                }
            }
            failures += 1;
            if failures > self.topology.restart_limit {
                return StepOutcome {
                    stepped: None,
                    restarts: failures,
                    interrupted: false,
                    step_us: 0,
                };
            }
            let backoff = self
                .restart_backoff_ms
                .saturating_mul(1 << (failures - 1).min(5))
                .min(2_000);
            if backoff > 0 {
                std::thread::sleep(Duration::from_millis(backoff));
            }
        }
    }

    /// Observational heartbeat/deadline monitor, run on the coordinator
    /// thread while workers step. Reports at most one miss per island per
    /// round; never touches search state.
    fn monitor(
        &self,
        active: &[usize],
        heartbeats: &[AtomicU64],
        pending: &AtomicUsize,
        epoch: &Instant,
    ) {
        if self.heartbeat_deadline_ms == 0 {
            return;
        }
        let poll = Duration::from_millis((self.heartbeat_deadline_ms / 4).clamp(2, 250));
        let mut reported = vec![false; active.len()];
        while pending.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(poll);
            let now = epoch.elapsed().as_millis() as u64;
            for (pos, hb) in heartbeats.iter().enumerate() {
                let beat = hb.load(Ordering::SeqCst);
                if beat == HB_QUEUED || beat == HB_DONE || reported[pos] {
                    continue;
                }
                let overdue = now.saturating_sub(beat);
                if overdue > self.heartbeat_deadline_ms {
                    reported[pos] = true;
                    self.telemetry
                        .event("island_heartbeat_missed")
                        .u64("island", active[pos] as u64)
                        .u64("overdue_ms", overdue)
                        .u64("deadline_ms", self.heartbeat_deadline_ms)
                        .emit();
                    self.telemetry.counter_add("island.heartbeat_missed", 1);
                }
            }
        }
    }

    /// Deterministic ring migration: island `i` clones its best into the
    /// last population slot of island `(i + 1) % n`. Frozen and converged
    /// islands send but do not receive.
    fn migrate(&self, state: &mut IslandsState) {
        migrate_ring(state, &self.telemetry);
    }

    /// Merges the islands into one [`GpRun`]: best individual across all
    /// islands (parsimony-aware, ties to the lowest island id — frozen
    /// islands included), summed counters. Emits one `island_done` event
    /// per island so the report can name the slowest.
    pub fn merge(&self, state: &IslandsState) -> GpRun {
        merge_islands(
            state,
            self.engine.config().parsimony,
            &self.step_us,
            &self.telemetry,
        )
    }
}

/// The shared migration policy: island `i` clones its best into the last
/// population slot of island `(i + 1) % n` (a deterministic ring), every
/// exchange recorded in the digest-sealed ledger. Frozen and converged
/// islands send but do not receive. Used by both the thread-level
/// [`IslandCoordinator`] and the process-level
/// [`super::worker_proc::ProcSupervisor`] so the two modes cannot drift.
pub(crate) fn migrate_ring(state: &mut IslandsState, telemetry: &Telemetry) {
    let n = state.islands.len();
    if n < 2 {
        return;
    }
    let donors: Vec<Option<Evaluated>> = state.islands.iter().map(|i| i.gp.best.clone()).collect();
    for (from, donor) in donors.iter().enumerate() {
        let Some(best) = donor else { continue };
        let to = (from + 1) % n;
        if state.islands[to].status != IslandStatus::Active {
            continue;
        }
        let population = &mut state.islands[to].gp.population;
        let Some(slot) = population.len().checked_sub(1) else {
            continue;
        };
        population[slot] = best.expr.clone();
        state.ledger.push(MigrationRecord {
            round: state.round,
            from,
            to,
            feature: best.expr.to_string(),
            quality: best.quality,
        });
        telemetry
            .event("island_migration")
            .u64("round", state.round as u64)
            .u64("from", from as u64)
            .u64("to", to as u64)
            .f64("quality", best.quality)
            .emit();
        telemetry.counter_add("island.migrations", 1);
    }
}

/// The shared merge policy: best individual across all islands
/// (parsimony-aware, ties to the lowest island id — frozen islands
/// included), summed counters, one `island_done` event per island.
pub(crate) fn merge_islands(
    state: &IslandsState,
    parsimony: bool,
    step_us: &[u64],
    telemetry: &Telemetry,
) -> GpRun {
    let mut best: Option<Evaluated> = None;
    for island in &state.islands {
        telemetry
            .event("island_done")
            .u64("island", island.id as u64)
            .str("status", island.status.as_str())
            .u64("generations", island.gp.generations as u64)
            .u64("restarts", island.restarts as u64)
            .u64("step_us", step_us.get(island.id).copied().unwrap_or(0))
            .emit();
        if let Some(candidate) = &island.gp.best {
            if best
                .as_ref()
                .is_none_or(|b| candidate.better_than_with(b, parsimony))
            {
                best = Some(candidate.clone());
            }
        }
    }
    GpRun {
        best,
        generations: state.generations(),
        evaluations: state.islands.iter().map(|i| i.gp.evaluations).sum(),
        panics: state.islands.iter().map(|i| i.gp.panics).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultPlan, FaultTrigger};
    use crate::grammar::Grammar;
    use crate::gp::GpConfig;
    use crate::ir::IrNode;
    use crate::lang::FeatureExpr;

    fn grammar_and_ir() -> (Grammar, IrNode) {
        let ir = IrNode::build("loop", |l| {
            l.attr_num("num-iter", 12.0);
            for _ in 0..3 {
                l.child("insn", |i| {
                    i.attr_enum("mode", "SI");
                });
            }
            l.child("jump_insn", |_| {});
        });
        (Grammar::derive([&ir]), ir)
    }

    fn quick_cfg() -> GpConfig {
        GpConfig {
            population: 10,
            max_generations: 6,
            stagnation_limit: 6,
            ..GpConfig::quick()
        }
    }

    fn run_to_done(
        engine: &GpEngine<'_>,
        topology: IslandTopology,
        workers: usize,
        seed: u64,
        fitness: &impl FitnessFn,
        injector: Option<&FaultInjector>,
    ) -> (IslandsState, GpRun) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut state = IslandCoordinator::init_state(engine, &topology, &mut rng);
        let mut coordinator = IslandCoordinator::new(engine, topology)
            .workers(workers)
            .restart_backoff_ms(0)
            .injector(injector);
        loop {
            match coordinator.round(&mut state, fitness) {
                RoundStatus::Running => {}
                RoundStatus::Done => break,
                RoundStatus::Interrupted => panic!("no cancellation in this test"),
            }
        }
        let run = coordinator.merge(&state);
        (state, run)
    }

    #[test]
    fn worker_count_is_invisible_to_results() {
        let (g, ir) = grammar_and_ir();
        let fitness = |e: &FeatureExpr| e.eval_with_budget(&ir, 10_000).ok();
        let engine = GpEngine::new(&g, quick_cfg());
        let (s1, r1) = run_to_done(&engine, IslandTopology::ring(4), 1, 7, &fitness, None);
        let (s4, r4) = run_to_done(&engine, IslandTopology::ring(4), 4, 7, &fitness, None);
        assert_eq!(r1.best, r4.best);
        assert_eq!(r1.generations, r4.generations);
        assert_eq!(s1.snapshot(), s4.snapshot(), "state must be byte-identical");
    }

    #[test]
    fn migration_is_recorded_and_digested() {
        let (g, ir) = grammar_and_ir();
        let fitness = |e: &FeatureExpr| e.eval_with_budget(&ir, 10_000).ok();
        let engine = GpEngine::new(&g, quick_cfg());
        let topology = IslandTopology {
            islands: 3,
            migration_every: 2,
            restart_limit: 3,
        };
        let (state, _) = run_to_done(&engine, topology, 2, 9, &fitness, None);
        assert!(
            !state.ledger.is_empty(),
            "three islands over six generations must migrate at least once"
        );
        let snapshot = state.snapshot();
        assert_eq!(snapshot.ledger_digest, ledger_digest(&state.ledger));
        assert!(snapshot.validate().is_ok());
        let restored = IslandsState::from_snapshot(&snapshot).expect("roundtrip");
        assert_eq!(restored.snapshot(), snapshot);
    }

    #[test]
    fn transient_kill_is_retried_and_neutral() {
        let (g, ir) = grammar_and_ir();
        let fitness = |e: &FeatureExpr| e.eval_with_budget(&ir, 10_000).ok();
        let engine = GpEngine::new(&g, quick_cfg());
        let clean = run_to_done(&engine, IslandTopology::ring(3), 2, 5, &fitness, None);
        let injector = FaultInjector::new(vec![FaultPlan {
            trigger: FaultTrigger::OnKeyPrefix("island:1:g2#a1".into()),
            kind: FaultKind::IslandKill,
        }]);
        let faulted = run_to_done(
            &engine,
            IslandTopology::ring(3),
            2,
            5,
            &fitness,
            Some(&injector),
        );
        assert!(injector.injected() >= 1, "the kill must have fired");
        assert_eq!(clean.1, faulted.1, "a retried crash must not change results");
        // Snapshots differ only in the restart counter.
        let mut snap = faulted.0.snapshot();
        assert_eq!(snap.islands[1].restarts, 1);
        snap.islands[1].restarts = 0;
        assert_eq!(snap, clean.0.snapshot());
    }

    #[test]
    fn persistent_kill_freezes_island_which_still_merges() {
        let (g, ir) = grammar_and_ir();
        let fitness = |e: &FeatureExpr| e.eval_with_budget(&ir, 10_000).ok();
        let engine = GpEngine::new(&g, quick_cfg());
        let injector = FaultInjector::new(vec![FaultPlan {
            // Kill only generation >= 2 attempts, so the island has a
            // committed generation-1 state to contribute to the merge.
            trigger: FaultTrigger::OnKeyPrefix("island:0:g2".into()),
            kind: FaultKind::IslandKill,
        }]);
        let topology = IslandTopology {
            islands: 2,
            migration_every: 2,
            restart_limit: 2,
        };
        let (state, run) = run_to_done(&engine, topology, 1, 13, &fitness, Some(&injector));
        assert_eq!(state.islands[0].status, IslandStatus::Frozen);
        assert_eq!(state.islands[0].gp.generations, 1);
        assert_eq!(state.islands[0].restarts, 3, "limit + 1 attempts crashed");
        assert_eq!(state.islands[1].status, IslandStatus::Converged);
        // The frozen island's generations still count in the merge.
        assert_eq!(run.generations, state.generations());
        assert!(run.best.is_some(), "the healthy island still delivers");
    }

    #[test]
    fn snapshot_validation_rejects_corruption() {
        let (g, ir) = grammar_and_ir();
        let fitness = |e: &FeatureExpr| e.eval_with_budget(&ir, 10_000).ok();
        let engine = GpEngine::new(&g, quick_cfg());
        let topology = IslandTopology {
            islands: 3,
            migration_every: 2,
            restart_limit: 3,
        };
        let (state, _) = run_to_done(&engine, topology, 1, 9, &fitness, None);
        let good = state.snapshot();
        assert!(good.validate().is_ok());

        let mut truncated = good.clone();
        truncated.ledger.pop();
        assert!(truncated.validate().is_err(), "truncated ledger must fail");

        let mut shuffled = good.clone();
        shuffled.islands.swap(0, 2);
        assert!(shuffled.validate().is_err(), "non-contiguous ids must fail");

        let mut empty = good.clone();
        empty.islands.clear();
        assert!(empty.validate().is_err(), "empty snapshot must fail");

        let mut bad_round = good;
        if let Some(r) = bad_round.ledger.first().cloned() {
            let mut r2 = r;
            r2.round = bad_round.round + 10;
            bad_round.ledger[0] = r2;
            bad_round.ledger_digest = ledger_digest(&bad_round.ledger);
            assert!(bad_round.validate().is_err(), "out-of-range round must fail");
        }
    }
}
