//! Genetic-programming search over the feature space.
//!
//! The paper's search (§IV, *Searching the Feature Space*) is "a hybrid
//! between Grammatical Evolution and Genetic Programming": individuals are
//! parse trees of the feature grammar; the operators respect the grammar by
//! only regrowing or exchanging subtrees of the same non-terminal sort.
//!
//! - [`ops`] implements the mutation operator of Figure 9 (replace a random
//!   non-terminal with a fresh random expansion) and the crossover operator
//!   of Figure 10 (swap same-sort subtrees between two parents).
//! - [`engine`] implements the generational loop: tournament selection,
//!   elitism, parsimony-aware comparison (shorter wins ties), memoised
//!   fitness evaluation, and the paper's stopping rule (stop after 15
//!   stagnant generations or 200 generations, whichever comes first).
//! - [`island`] scales the loop out: N supervised island populations on
//!   isolated RNG streams, deterministic ring migration, restart-with-
//!   backoff and freeze-on-repeated-failure — byte-identical results for
//!   a given (seed, topology) at any worker count.

//!
//! - [`transport`] and [`worker_proc`] move the islands across a process
//!   boundary: a length-prefixed, digest-sealed frame protocol and a
//!   supervisor/worker runtime with reconnect, respawn and
//!   freeze-but-merge degradation — still byte-identical to the
//!   in-process coordinator.

pub mod engine;
pub mod island;
pub mod ops;
pub mod transport;
pub mod worker_proc;

pub use engine::{Evaluated, FitnessFn, GenStats, GpConfig, GpEngine, GpRun};
pub use island::{
    IslandCoordinator, IslandStatus, IslandTopology, IslandsSnapshot, IslandsState,
    MigrationRecord, RoundStatus,
};
pub use ops::{crossover, mutate};
pub use transport::{FrameTransport, LoopbackTransport, StreamTransport, TransportError};
pub use worker_proc::{
    run_stdio_worker, ChannelKind, ProcSupervisor, WorkerError, WorkerLauncher, WorkerSpec,
};
