//! The generational GP engine.
//!
//! One [`GpEngine::run`] performs the search for a *single* new feature (the
//! outer greedy loop in [`crate::search`] calls it repeatedly). The engine
//! follows the paper's §VI settings, available as [`GpConfig::paper`]:
//! population 100, stop after 15 generations without improvement or 200
//! generations total.

use crate::gp::ops;
use crate::grammar::Grammar;
use crate::lang::FeatureExpr;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;

/// Fitness oracle for candidate features.
///
/// Returns `None` when the feature is invalid — its evaluation timed out on
/// some program or produced a non-finite value. Invalid features "cannot
/// contribute to the gene pool" (§VI): they lose every tournament and are
/// never recorded as best.
pub trait FitnessFn: Sync {
    /// Quality of `expr`; higher is better. `None` marks an invalid feature.
    fn fitness(&self, expr: &FeatureExpr) -> Option<f64>;
}

impl<F> FitnessFn for F
where
    F: Fn(&FeatureExpr) -> Option<f64> + Sync,
{
    fn fitness(&self, expr: &FeatureExpr) -> Option<f64> {
        self(expr)
    }
}

/// Configuration of one GP run.
#[derive(Debug, Clone, PartialEq)]
pub struct GpConfig {
    /// Number of individuals per generation.
    pub population: usize,
    /// Hard cap on generations (paper: 200).
    pub max_generations: usize,
    /// Stop after this many generations without improvement (paper: 15).
    pub stagnation_limit: usize,
    /// Tournament size for parent selection.
    pub tournament_size: usize,
    /// Probability that a child is produced by crossover.
    pub crossover_rate: f64,
    /// Probability that a child is (further) mutated.
    pub mutation_rate: f64,
    /// Maximum depth of freshly generated individuals.
    pub init_depth: usize,
    /// Maximum depth of subtrees regrown by mutation.
    pub regrow_depth: usize,
    /// Number of elite individuals copied unchanged into each generation.
    pub elitism: usize,
    /// Worker threads for fitness evaluation (1 = sequential).
    pub threads: usize,
    /// Hard cap on individual size; larger candidates are regenerated.
    /// Parsimony already biases against bloat; the cap keeps printing and
    /// evaluation bounded.
    pub max_size: usize,
    /// Parsimony pressure: prefer the shorter of two equal-quality
    /// individuals (§III). Disable only for ablation studies.
    pub parsimony: bool,
}

impl GpConfig {
    /// The paper's settings (§VI): population 100, ≤200 generations,
    /// 15-generation stagnation window.
    pub fn paper() -> Self {
        GpConfig {
            population: 100,
            max_generations: 200,
            stagnation_limit: 15,
            tournament_size: 3,
            crossover_rate: 0.6,
            mutation_rate: 0.35,
            init_depth: 6,
            regrow_depth: 4,
            elitism: 2,
            threads: 1,
            max_size: 250,
            parsimony: true,
        }
    }

    /// A reduced preset for laptop-scale runs and tests; same algorithm,
    /// smaller budgets.
    pub fn quick() -> Self {
        GpConfig {
            population: 24,
            max_generations: 25,
            stagnation_limit: 6,
            ..GpConfig::paper()
        }
    }
}

impl Default for GpConfig {
    fn default() -> Self {
        GpConfig::quick()
    }
}

/// An individual together with its fitness.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluated {
    /// The feature expression.
    pub expr: FeatureExpr,
    /// Fitness (higher is better).
    pub quality: f64,
    /// Cached `expr.size()` for parsimony comparison.
    pub size: usize,
}

impl Evaluated {
    /// Parsimony comparison: better quality wins; equal quality prefers the
    /// smaller expression ("if two features have the same quality we prefer
    /// the shorter one", §III).
    pub fn better_than(&self, other: &Evaluated) -> bool {
        if self.quality != other.quality {
            self.quality > other.quality
        } else {
            self.size < other.size
        }
    }

    /// Comparison with parsimony optionally disabled (ablation).
    pub fn better_than_with(&self, other: &Evaluated, parsimony: bool) -> bool {
        if parsimony {
            self.better_than(other)
        } else {
            self.quality > other.quality
        }
    }
}

/// Result of one GP run.
#[derive(Debug, Clone, PartialEq)]
pub struct GpRun {
    /// The best valid individual found, if any individual was valid.
    pub best: Option<Evaluated>,
    /// Number of generations executed (counted against the outer-loop
    /// budget of 2,500 total generations).
    pub generations: usize,
    /// Total fitness evaluations that were *not* served from the memo.
    pub evaluations: usize,
}

/// Generational GP engine over a feature grammar.
#[derive(Debug)]
pub struct GpEngine<'a> {
    grammar: &'a Grammar,
    config: GpConfig,
}

impl<'a> GpEngine<'a> {
    /// Creates an engine over `grammar` with the given configuration.
    pub fn new(grammar: &'a Grammar, config: GpConfig) -> Self {
        GpEngine { grammar, config }
    }

    /// Runs the search, maximising `fitness`.
    ///
    /// Deterministic for a given seed and fitness function (also with
    /// `threads > 1`: parallelism only affects evaluation order, and fitness
    /// values are memoised by expression text).
    pub fn run<F: FitnessFn>(&self, fitness: &F, rng: &mut StdRng) -> GpRun {
        let cfg = &self.config;
        let memo: Mutex<HashMap<String, Option<f64>>> = Mutex::new(HashMap::new());
        let evaluations = Mutex::new(0usize);

        let mut population: Vec<FeatureExpr> = (0..cfg.population)
            .map(|i| {
                // Ramped initial depths for structural diversity.
                let depth = 2 + i % cfg.init_depth.max(1);
                self.grammar.gen_feature(rng, depth)
            })
            .collect();

        let mut best: Option<Evaluated> = None;
        let mut stagnant = 0usize;
        let mut generations = 0usize;

        for _gen in 0..cfg.max_generations {
            generations += 1;
            let scored = self.evaluate_all(&population, fitness, &memo, &evaluations);

            // Track the best valid individual, with parsimony.
            let mut improved = false;
            for ev in scored.iter().flatten() {
                if best.as_ref().is_none_or(|b| ev.better_than_with(b, cfg.parsimony)) {
                    // Only count strictly better quality as "improvement"
                    // for the stagnation rule; shorter-at-equal-quality
                    // refines the record without resetting the clock.
                    if best.as_ref().is_none_or(|b| ev.quality > b.quality) {
                        improved = true;
                    }
                    best = Some(ev.clone());
                }
            }
            if improved {
                stagnant = 0;
            } else {
                stagnant += 1;
                if stagnant >= cfg.stagnation_limit {
                    break;
                }
            }

            population = self.breed(&population, &scored, rng);
        }

        let evaluations = *evaluations.lock();
        GpRun {
            best,
            generations,
            evaluations,
        }
    }

    fn evaluate_all<F: FitnessFn>(
        &self,
        population: &[FeatureExpr],
        fitness: &F,
        memo: &Mutex<HashMap<String, Option<f64>>>,
        evaluations: &Mutex<usize>,
    ) -> Vec<Option<Evaluated>> {
        let eval_one = |expr: &FeatureExpr| -> Option<Evaluated> {
            let key = expr.to_string();
            if let Some(q) = memo.lock().get(&key) {
                return q.map(|quality| Evaluated {
                    expr: expr.clone(),
                    quality,
                    size: expr.size(),
                });
            }
            let q = fitness.fitness(expr);
            *evaluations.lock() += 1;
            memo.lock().insert(key, q);
            q.map(|quality| Evaluated {
                expr: expr.clone(),
                quality,
                size: expr.size(),
            })
        };

        if self.config.threads <= 1 {
            population.iter().map(eval_one).collect()
        } else {
            let mut out: Vec<Option<Evaluated>> = vec![None; population.len()];
            let chunk = population.len().div_ceil(self.config.threads);
            crossbeam::scope(|s| {
                for (pop_chunk, out_chunk) in
                    population.chunks(chunk).zip(out.chunks_mut(chunk))
                {
                    s.spawn(move |_| {
                        for (expr, slot) in pop_chunk.iter().zip(out_chunk.iter_mut()) {
                            *slot = eval_one(expr);
                        }
                    });
                }
            })
            .expect("gp evaluation worker panicked");
            out
        }
    }

    /// Tournament selection over the scored population; invalid individuals
    /// lose every tournament.
    fn select<'p>(
        &self,
        population: &'p [FeatureExpr],
        scored: &[Option<Evaluated>],
        rng: &mut StdRng,
    ) -> &'p FeatureExpr {
        let mut winner: Option<usize> = None;
        for _ in 0..self.config.tournament_size {
            let i = rng.gen_range(0..population.len());
            winner = Some(match winner {
                None => i,
                Some(w) => match (&scored[i], &scored[w]) {
                    (Some(a), Some(b)) => {
                        if a.better_than_with(b, self.config.parsimony) {
                            i
                        } else {
                            w
                        }
                    }
                    (Some(_), None) => i,
                    _ => w,
                },
            });
        }
        &population[winner.expect("tournament_size >= 1")]
    }

    fn breed(
        &self,
        population: &[FeatureExpr],
        scored: &[Option<Evaluated>],
        rng: &mut StdRng,
    ) -> Vec<FeatureExpr> {
        let cfg = &self.config;
        let mut next = Vec::with_capacity(cfg.population);

        // Elites: best valid individuals survive unchanged.
        let mut ranked: Vec<&Evaluated> = scored.iter().flatten().collect();
        ranked.sort_by(|a, b| {
            let quality = b
                .quality
                .partial_cmp(&a.quality)
                .unwrap_or(std::cmp::Ordering::Equal);
            if cfg.parsimony {
                quality.then(a.size.cmp(&b.size))
            } else {
                quality
            }
        });
        for e in ranked.iter().take(cfg.elitism) {
            next.push(e.expr.clone());
        }

        while next.len() < cfg.population {
            let mut child = if rng.gen_bool(cfg.crossover_rate) {
                let a = self.select(population, scored, rng);
                let b = self.select(population, scored, rng);
                let (c1, c2) = ops::crossover(a, b, rng);
                if next.len() + 1 < cfg.population && !self.too_big(&c2) {
                    next.push(self.cap(c2, rng));
                }
                c1
            } else {
                self.select(population, scored, rng).clone()
            };
            if rng.gen_bool(cfg.mutation_rate) {
                child = ops::mutate(self.grammar, &child, rng, cfg.regrow_depth);
            }
            next.push(self.cap(child, rng));
        }
        next.truncate(cfg.population);
        next
    }

    fn too_big(&self, expr: &FeatureExpr) -> bool {
        expr.size() > self.config.max_size
    }

    /// Replaces over-sized offspring with fresh random individuals.
    fn cap(&self, expr: FeatureExpr, rng: &mut StdRng) -> FeatureExpr {
        if self.too_big(&expr) {
            self.grammar.gen_feature(rng, self.config.init_depth)
        } else {
            expr
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::IrNode;
    use rand::SeedableRng;

    fn grammar_and_ir() -> (Grammar, IrNode) {
        let ir = IrNode::build("loop", |l| {
            l.attr_num("num-iter", 12.0);
            l.attr_num("depth", 2.0);
            for _ in 0..3 {
                l.child("insn", |i| {
                    i.attr_enum("mode", "SI");
                    i.child("reg", |_| {});
                });
            }
            l.child("jump_insn", |_| {});
        });
        (Grammar::derive([&ir]), ir)
    }

    #[test]
    fn finds_a_target_value_feature() {
        // Fitness: how close the feature's value on the IR is to 12
        // (i.e. the engine should discover `get-attr(@num-iter)` or an
        // expression evaluating to 12).
        let (g, ir) = grammar_and_ir();
        let fit = |e: &FeatureExpr| -> Option<f64> {
            let v = e.eval_with_budget(&ir, 10_000).ok()?;
            Some(-(v - 12.0).abs())
        };
        let engine = GpEngine::new(&g, GpConfig::quick());
        let mut rng = StdRng::seed_from_u64(2);
        let run = engine.run(&fit, &mut rng);
        let best = run.best.expect("some individual must be valid");
        assert!(
            best.quality > -0.51,
            "expected near-perfect fitness, got {} for {}",
            best.quality,
            best.expr
        );
    }

    #[test]
    fn respects_generation_cap() {
        let (g, ir) = grammar_and_ir();
        let fit = |e: &FeatureExpr| e.eval_with_budget(&ir, 10_000).ok();
        let cfg = GpConfig {
            max_generations: 3,
            stagnation_limit: 100,
            ..GpConfig::quick()
        };
        let engine = GpEngine::new(&g, cfg);
        let run = engine.run(&fit, &mut StdRng::seed_from_u64(0));
        assert_eq!(run.generations, 3);
    }

    #[test]
    fn stops_on_stagnation() {
        let (g, _ir) = grammar_and_ir();
        // Constant fitness: first generation sets the best, never improves.
        let fit = |_: &FeatureExpr| Some(1.0);
        let cfg = GpConfig {
            stagnation_limit: 4,
            max_generations: 100,
            ..GpConfig::quick()
        };
        let engine = GpEngine::new(&g, cfg);
        let run = engine.run(&fit, &mut StdRng::seed_from_u64(0));
        // Gen 1 may improve (first best); afterwards 4 stagnant generations.
        assert!(run.generations <= 6, "ran {} generations", run.generations);
    }

    #[test]
    fn all_invalid_population_yields_no_best() {
        let (g, _ir) = grammar_and_ir();
        let fit = |_: &FeatureExpr| -> Option<f64> { None };
        let cfg = GpConfig {
            max_generations: 2,
            ..GpConfig::quick()
        };
        let engine = GpEngine::new(&g, cfg);
        let run = engine.run(&fit, &mut StdRng::seed_from_u64(0));
        assert!(run.best.is_none());
    }

    #[test]
    fn parsimony_prefers_shorter_at_equal_quality() {
        let (g, _ir) = grammar_and_ir();
        let fit = |_: &FeatureExpr| Some(5.0);
        let engine = GpEngine::new(&g, GpConfig::quick());
        let run = engine.run(&fit, &mut StdRng::seed_from_u64(3));
        let best = run.best.unwrap();
        // With constant fitness the best must be a minimal (size-1) feature.
        assert_eq!(best.size, 1, "parsimony should find a size-1 expression, got {}", best.expr);
    }

    #[test]
    fn memoisation_reduces_evaluations() {
        let (g, ir) = grammar_and_ir();
        let fit = |e: &FeatureExpr| e.eval_with_budget(&ir, 10_000).ok();
        let cfg = GpConfig {
            max_generations: 10,
            stagnation_limit: 10,
            ..GpConfig::quick()
        };
        let engine = GpEngine::new(&g, cfg.clone());
        let run = engine.run(&fit, &mut StdRng::seed_from_u64(4));
        let naive = cfg.population * run.generations;
        assert!(
            run.evaluations < naive,
            "expected memo hits: {} evaluations for {} slots",
            run.evaluations,
            naive
        );
    }

    #[test]
    fn parallel_evaluation_matches_sequential() {
        let (g, ir) = grammar_and_ir();
        let fit = |e: &FeatureExpr| e.eval_with_budget(&ir, 10_000).ok();
        let run_with = |threads: usize| {
            let cfg = GpConfig {
                threads,
                max_generations: 8,
                ..GpConfig::quick()
            };
            let engine = GpEngine::new(&g, cfg);
            engine.run(&fit, &mut StdRng::seed_from_u64(21))
        };
        let seq = run_with(1);
        let par = run_with(3);
        assert_eq!(seq.best, par.best, "threading must not change results");
        assert_eq!(seq.generations, par.generations);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (g, ir) = grammar_and_ir();
        let fit = |e: &FeatureExpr| e.eval_with_budget(&ir, 10_000).ok();
        let engine = GpEngine::new(&g, GpConfig::quick());
        let r1 = engine.run(&fit, &mut StdRng::seed_from_u64(9));
        let r2 = engine.run(&fit, &mut StdRng::seed_from_u64(9));
        assert_eq!(r1.best, r2.best);
        assert_eq!(r1.generations, r2.generations);
    }
}
