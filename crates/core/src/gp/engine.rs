//! The generational GP engine.
//!
//! One [`GpEngine::run`] performs the search for a *single* new feature (the
//! outer greedy loop in [`crate::search`] calls it repeatedly). The engine
//! follows the paper's §VI settings, available as [`GpConfig::paper`]:
//! population 100, stop after 15 generations without improvement or 200
//! generations total.
//!
//! # Fault tolerance
//!
//! The engine is built to survive misbehaving fitness functions:
//!
//! - Every fitness call is wrapped in [`std::panic::catch_unwind`]; a panic
//!   costs that one candidate (it is memoised as invalid, exactly like a
//!   timeout) and increments [`GpState::panics`], never the whole run.
//! - Non-finite fitness values are sanitized to "invalid" so a NaN can never
//!   poison tournament comparisons or the best-so-far record.
//! - If panics keep occurring ([`GpEngine::DEGRADE_AFTER_PANIC_GENS`]
//!   generations with at least one panic each), parallel evaluation degrades
//!   to sequential for the rest of the run — the conservative mode when the
//!   evaluator is evidently unsound under concurrency.
//!
//! # Stepping and checkpointing
//!
//! The run loop is exposed one generation at a time: [`GpEngine::init_state`]
//! builds a [`GpState`], [`GpEngine::step`] advances it by one generation,
//! and [`GpState::snapshot`] / [`GpState::from_snapshot`] convert the full
//! mid-run state (population, memoised fitness cache, RNG stream, counters)
//! to and from a serializable form. Resuming from a snapshot provably
//! continues the same deterministic trajectory — see the `checkpoint_resume`
//! integration tests.

use crate::faults::CancelToken;
use crate::gp::ops;
use crate::grammar::Grammar;
use crate::lang::FeatureExpr;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Fitness oracle for candidate features.
///
/// Returns `None` when the feature is invalid — its evaluation timed out on
/// some program or produced a non-finite value. Invalid features "cannot
/// contribute to the gene pool" (§VI): they lose every tournament and are
/// never recorded as best.
pub trait FitnessFn: Sync {
    /// Quality of `expr`; higher is better. `None` marks an invalid feature.
    fn fitness(&self, expr: &FeatureExpr) -> Option<f64>;
}

impl<F> FitnessFn for F
where
    F: Fn(&FeatureExpr) -> Option<f64> + Sync,
{
    fn fitness(&self, expr: &FeatureExpr) -> Option<f64> {
        self(expr)
    }
}

/// Configuration of one GP run. Serializable because it travels in the
/// [`crate::gp::worker_proc::WorkerSpec`] handed to process-level island
/// workers; the checkpoint identity fingerprint still hashes the `Debug`
/// form, so the derive changes no existing bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpConfig {
    /// Number of individuals per generation.
    pub population: usize,
    /// Hard cap on generations (paper: 200).
    pub max_generations: usize,
    /// Stop after this many generations without improvement (paper: 15).
    pub stagnation_limit: usize,
    /// Tournament size for parent selection.
    pub tournament_size: usize,
    /// Probability that a child is produced by crossover.
    pub crossover_rate: f64,
    /// Probability that a child is (further) mutated.
    pub mutation_rate: f64,
    /// Maximum depth of freshly generated individuals.
    pub init_depth: usize,
    /// Maximum depth of subtrees regrown by mutation.
    pub regrow_depth: usize,
    /// Number of elite individuals copied unchanged into each generation.
    pub elitism: usize,
    /// Worker threads for fitness evaluation (1 = sequential).
    pub threads: usize,
    /// Hard cap on individual size; larger candidates are regenerated.
    /// Parsimony already biases against bloat; the cap keeps printing and
    /// evaluation bounded.
    pub max_size: usize,
    /// Parsimony pressure: prefer the shorter of two equal-quality
    /// individuals (§III). Disable only for ablation studies.
    pub parsimony: bool,
}

impl GpConfig {
    /// The paper's settings (§VI): population 100, ≤200 generations,
    /// 15-generation stagnation window.
    pub fn paper() -> Self {
        GpConfig {
            population: 100,
            max_generations: 200,
            stagnation_limit: 15,
            tournament_size: 3,
            crossover_rate: 0.6,
            mutation_rate: 0.35,
            init_depth: 6,
            regrow_depth: 4,
            elitism: 2,
            threads: 1,
            max_size: 250,
            parsimony: true,
        }
    }

    /// A reduced preset for laptop-scale runs and tests; same algorithm,
    /// smaller budgets.
    pub fn quick() -> Self {
        GpConfig {
            population: 24,
            max_generations: 25,
            stagnation_limit: 6,
            ..GpConfig::paper()
        }
    }
}

impl Default for GpConfig {
    fn default() -> Self {
        GpConfig::quick()
    }
}

/// An individual together with its fitness.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluated {
    /// The feature expression.
    pub expr: FeatureExpr,
    /// Fitness (higher is better).
    pub quality: f64,
    /// Cached `expr.size()` for parsimony comparison.
    pub size: usize,
}

impl Evaluated {
    /// Parsimony comparison: better quality wins; equal quality prefers the
    /// smaller expression ("if two features have the same quality we prefer
    /// the shorter one", §III).
    pub fn better_than(&self, other: &Evaluated) -> bool {
        if self.quality != other.quality {
            self.quality > other.quality
        } else {
            self.size < other.size
        }
    }

    /// Comparison with parsimony optionally disabled (ablation).
    pub fn better_than_with(&self, other: &Evaluated, parsimony: bool) -> bool {
        if parsimony {
            self.better_than(other)
        } else {
            self.quality > other.quality
        }
    }
}

/// Result of one GP run.
#[derive(Debug, Clone, PartialEq)]
pub struct GpRun {
    /// The best valid individual found, if any individual was valid.
    pub best: Option<Evaluated>,
    /// Number of generations executed (counted against the outer-loop
    /// budget of 2,500 total generations).
    pub generations: usize,
    /// Total fitness evaluations that were *not* served from the memo.
    pub evaluations: usize,
    /// Fitness calls that panicked and were isolated.
    pub panics: usize,
}

impl GpRun {
    /// The best individual, or a typed error when every candidate of every
    /// generation was invalid (all-timeout / all-panic populations).
    pub fn best(&self) -> Result<&Evaluated, crate::error::SearchError> {
        self.best
            .as_ref()
            .ok_or(crate::error::SearchError::NoViableCandidate {
                generations: self.generations,
                evaluations: self.evaluations,
            })
    }
}

/// Whether a [`GpEngine::step`] left the run able to continue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpStatus {
    /// More generations may follow.
    Running,
    /// The run reached its generation cap or stagnation limit.
    Converged,
}

/// One memoised fitness record. The expression tree itself is stored (not
/// its printed text) so hash collisions are detected by structural equality
/// — strictly stronger than comparing printed forms, and allocation-free —
/// and so snapshots can still print the canonical text on demand.
#[derive(Debug, Clone)]
struct MemoEntry {
    expr: FeatureExpr,
    fit: Option<f64>,
}

/// Fitness memo keyed by the 64-bit structural hash of the canonical form
/// ([`FeatureExpr::structural_hash`]). Looking up a candidate hashes the
/// tree directly — no print, no allocation — where the old `String`-keyed
/// memo printed every individual every generation. Colliding hashes chain
/// into a short vector and are resolved by tree equality.
type Memo = HashMap<u64, Vec<MemoEntry>>;

fn memo_get(memo: &Memo, hash: u64, expr: &FeatureExpr) -> Option<Option<f64>> {
    memo.get(&hash)?
        .iter()
        .find(|e| e.expr == *expr)
        .map(|e| e.fit)
}

fn memo_insert(memo: &mut Memo, hash: u64, expr: FeatureExpr, fit: Option<f64>) {
    memo.entry(hash).or_default().push(MemoEntry { expr, fit });
}

/// Full mid-run state of a GP search, advanced by [`GpEngine::step`].
#[derive(Debug, Clone)]
pub struct GpState {
    /// Current population.
    pub population: Vec<FeatureExpr>,
    /// Best valid individual seen so far.
    pub best: Option<Evaluated>,
    /// Generations since the last strict quality improvement.
    pub stagnant: usize,
    /// Generations executed.
    pub generations: usize,
    /// Fitness evaluations not served from the memo.
    pub evaluations: usize,
    /// Fitness calls that panicked and were isolated.
    pub panics: usize,
    /// Generations in which at least one panic occurred.
    panic_generations: usize,
    /// Whether parallel evaluation has been degraded to sequential.
    degraded: bool,
    /// Fitness memo keyed by structural hash. Shared across generations;
    /// also what makes panic outcomes identical across thread counts.
    memo: Memo,
    /// The run's private RNG stream.
    rng: StdRng,
    /// Summary of the most recent generation, for observability. Not part
    /// of [`GpSnapshot`]: telemetry must stay checkpoint-byte-neutral, and
    /// the value is recomputed by the first step after a resume anyway.
    pub last_gen: Option<GenStats>,
}

/// Per-generation observability summary; see [`GpState::last_gen`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenStats {
    /// Generation number this summarises (1-based, equals
    /// `GpState::generations` right after the step).
    pub generation: usize,
    /// Best-so-far quality after this generation (`NAN` when none valid).
    pub best: f64,
    /// Best valid quality scored within this generation (`NAN` when none).
    pub gen_best: f64,
    /// Mean valid quality within this generation (`NAN` when none).
    pub mean: f64,
    /// Individuals with a valid (finite) fitness this generation.
    pub valid: usize,
    /// Individuals scored invalid (discarded, non-finite or panicked).
    pub invalid: usize,
    /// Stagnation counter after this generation.
    pub stagnant: usize,
    /// Cumulative non-memoised fitness evaluations.
    pub evaluations: usize,
    /// Cumulative isolated panics.
    pub panics: usize,
}

/// Serializable form of [`GpState`]; expressions travel as their canonical
/// text (print/parse round-trips are exact — property-tested in
/// `feature_language_props`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpSnapshot {
    /// Population, printed.
    pub population: Vec<String>,
    /// Best individual as `(printed expression, quality)`.
    pub best: Option<(String, f64)>,
    /// Generations since the last strict improvement.
    pub stagnant: usize,
    /// Generations executed.
    pub generations: usize,
    /// Fitness evaluations not served from the memo.
    pub evaluations: usize,
    /// Panics isolated so far.
    pub panics: usize,
    /// Generations with at least one panic.
    pub panic_generations: usize,
    /// Whether evaluation has degraded to sequential.
    pub degraded: bool,
    /// Fitness memo, sorted by key for canonical output.
    pub memo: Vec<(String, Option<f64>)>,
    /// RNG stream state.
    pub rng: [u64; 4],
}

impl GpState {
    /// Captures the full state in serializable form. The memo travels as
    /// sorted `(canonical text, fitness)` pairs — printing happens only
    /// here, at checkpoint time, keeping the snapshot format byte-identical
    /// to the `String`-keyed memo it replaced.
    pub fn snapshot(&self) -> GpSnapshot {
        let mut memo: Vec<(String, Option<f64>)> = self
            .memo
            .values()
            .flatten()
            .map(|e| (e.expr.to_string(), e.fit))
            .collect();
        memo.sort_by(|(a, _), (b, _)| a.cmp(b));
        GpSnapshot {
            population: self.population.iter().map(|e| e.to_string()).collect(),
            best: self
                .best
                .as_ref()
                .map(|b| (b.expr.to_string(), b.quality)),
            stagnant: self.stagnant,
            generations: self.generations,
            evaluations: self.evaluations,
            panics: self.panics,
            panic_generations: self.panic_generations,
            degraded: self.degraded,
            memo,
            rng: self.rng.state(),
        }
    }

    /// Rebuilds a state from a snapshot. Fails with a description when an
    /// expression no longer parses (a corrupt or hand-edited snapshot).
    pub fn from_snapshot(snapshot: &GpSnapshot) -> Result<GpState, String> {
        let parse = |text: &str| {
            crate::lang::parse_feature(text)
                .map_err(|e| format!("unparseable expression `{text}`: {e}"))
        };
        let mut population = Vec::with_capacity(snapshot.population.len());
        for text in &snapshot.population {
            population.push(parse(text)?);
        }
        let best = match &snapshot.best {
            None => None,
            Some((text, quality)) => {
                let expr = parse(text)?;
                let size = expr.size();
                Some(Evaluated {
                    expr,
                    quality: *quality,
                    size,
                })
            }
        };
        let mut memo: Memo = HashMap::new();
        for (text, fit) in &snapshot.memo {
            let expr = parse(text)?;
            let hash = expr.structural_hash();
            memo_insert(&mut memo, hash, expr, *fit);
        }
        Ok(GpState {
            population,
            best,
            stagnant: snapshot.stagnant,
            generations: snapshot.generations,
            evaluations: snapshot.evaluations,
            panics: snapshot.panics,
            panic_generations: snapshot.panic_generations,
            degraded: snapshot.degraded,
            memo,
            rng: StdRng::from_state(snapshot.rng),
            last_gen: None,
        })
    }

    /// Finishes the run, extracting the result.
    pub fn into_run(self) -> GpRun {
        GpRun {
            best: self.best,
            generations: self.generations,
            evaluations: self.evaluations,
            panics: self.panics,
        }
    }
}

/// Generational GP engine over a feature grammar.
#[derive(Debug)]
pub struct GpEngine<'a> {
    grammar: &'a Grammar,
    config: GpConfig,
}

impl<'a> GpEngine<'a> {
    /// After this many generations that each saw at least one isolated
    /// panic, parallel evaluation degrades to sequential for the rest of
    /// the run.
    pub const DEGRADE_AFTER_PANIC_GENS: usize = 3;

    /// Creates an engine over `grammar` with the given configuration.
    pub fn new(grammar: &'a Grammar, config: GpConfig) -> Self {
        GpEngine { grammar, config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GpConfig {
        &self.config
    }

    /// Builds the initial state: a ramped-depth random population and the
    /// run's RNG stream.
    pub fn init_state(&self, mut rng: StdRng) -> GpState {
        let cfg = &self.config;
        let population: Vec<FeatureExpr> = (0..cfg.population)
            .map(|i| {
                // Ramped initial depths for structural diversity.
                let depth = 2 + i % cfg.init_depth.max(1);
                self.grammar.gen_feature(&mut rng, depth)
            })
            .collect();
        GpState {
            population,
            best: None,
            stagnant: 0,
            generations: 0,
            evaluations: 0,
            panics: 0,
            panic_generations: 0,
            degraded: false,
            memo: HashMap::new(),
            rng,
            last_gen: None,
        }
    }

    /// Runs the search, maximising `fitness`.
    ///
    /// Deterministic for a given seed and fitness function (also with
    /// `threads > 1`: parallelism only affects evaluation order, and fitness
    /// values — including isolated panics — are memoised by structural
    /// hash).
    pub fn run<F: FitnessFn>(&self, fitness: &F, rng: &mut StdRng) -> GpRun {
        let mut state = self.init_state(rng.clone());
        while let GpStatus::Running = self.step(&mut state, fitness) {}
        *rng = StdRng::from_state(state.rng.state());
        state.into_run()
    }

    /// Advances the run by one generation: evaluate the current population,
    /// update the best-so-far record, and (unless converged) breed the next
    /// generation.
    pub fn step<F: FitnessFn>(&self, state: &mut GpState, fitness: &F) -> GpStatus {
        self.step_cancellable(state, fitness, None)
            .expect("a step without a cancel token always completes")
    }

    /// [`GpEngine::step`] with cooperative cancellation: returns `None` —
    /// with `state` completely untouched — when `cancel` flips before the
    /// generation's results are committed. Discarding the aborted
    /// generation is exact: a resumed run recomputes it identically, so
    /// cancellation only chooses *which* generation boundary a run stops
    /// at, never what the trajectory looks like.
    pub fn step_cancellable<F: FitnessFn>(
        &self,
        state: &mut GpState,
        fitness: &F,
        cancel: Option<&CancelToken>,
    ) -> Option<GpStatus> {
        let cfg = &self.config;
        if state.generations >= cfg.max_generations
            || (state.stagnant >= cfg.stagnation_limit && state.generations > 0)
        {
            return Some(GpStatus::Converged);
        }
        let scored = self.evaluate_all(state, fitness, cancel)?;
        state.generations += 1;

        // Track the best valid individual, with parsimony.
        let mut improved = false;
        for ev in scored.iter().flatten() {
            if state
                .best
                .as_ref()
                .is_none_or(|b| ev.better_than_with(b, cfg.parsimony))
            {
                // Only count strictly better quality as "improvement" for
                // the stagnation rule; shorter-at-equal-quality refines the
                // record without resetting the clock.
                if state.best.as_ref().is_none_or(|b| ev.quality > b.quality) {
                    improved = true;
                }
                state.best = Some(ev.clone());
            }
        }
        if improved {
            state.stagnant = 0;
        } else {
            state.stagnant += 1;
        }

        // Observability snapshot of this generation; never serialized, and
        // computed before the convergence returns so the final generation is
        // also recorded.
        let valid: Vec<f64> = scored.iter().flatten().map(|e| e.quality).collect();
        state.last_gen = Some(GenStats {
            generation: state.generations,
            best: state.best.as_ref().map_or(f64::NAN, |b| b.quality),
            gen_best: valid.iter().copied().fold(f64::NAN, f64::max),
            mean: if valid.is_empty() {
                f64::NAN
            } else {
                valid.iter().sum::<f64>() / valid.len() as f64
            },
            valid: valid.len(),
            invalid: scored.len() - valid.len(),
            stagnant: state.stagnant,
            evaluations: state.evaluations,
            panics: state.panics,
        });

        if !improved && state.stagnant >= cfg.stagnation_limit {
            return Some(GpStatus::Converged);
        }
        if state.generations >= cfg.max_generations {
            return Some(GpStatus::Converged);
        }

        let parents = std::mem::take(&mut state.population);
        state.population = self.breed(&parents, &scored, &mut state.rng);
        Some(GpStatus::Running)
    }

    /// Evaluates the population, reading and feeding the memo.
    ///
    /// Duplicate individuals are evaluated once; the memo is updated with
    /// every distinct new expression — deterministically, whatever the
    /// thread count. Panicking fitness calls are caught and recorded as
    /// invalid.
    ///
    /// Returns `None` — without touching `state` — when `cancel` flips.
    /// The gate sits *after* result collection and *before* memo
    /// insertion: a cancelled evaluator may hand back `None` for
    /// candidates it never finished, and memoising such a value would
    /// fork the trajectory on resume. All-or-nothing commits keep the
    /// memo a pure function of the candidate set.
    fn evaluate_all<F: FitnessFn>(
        &self,
        state: &mut GpState,
        fitness: &F,
        cancel: Option<&CancelToken>,
    ) -> Option<Vec<Option<Evaluated>>> {
        // Structural hashes instead of printed text: no per-candidate
        // print+alloc. Collisions (same hash, different tree) are resolved
        // by tree equality everywhere the hash is consulted.
        let hashes: Vec<u64> = state
            .population
            .iter()
            .map(FeatureExpr::structural_hash)
            .collect();

        // Distinct not-yet-memoised expressions, in first-appearance order.
        let mut pending: Vec<usize> = Vec::new();
        for i in 0..state.population.len() {
            let expr = &state.population[i];
            if memo_get(&state.memo, hashes[i], expr).is_some() {
                continue;
            }
            let claimed = pending
                .iter()
                .any(|&j| hashes[j] == hashes[i] && state.population[j] == *expr);
            if !claimed {
                pending.push(i);
            }
        }

        // One guarded fitness call: a panic or a non-finite value both
        // cost exactly this candidate.
        let eval_one = |expr: &FeatureExpr| -> (Option<f64>, bool) {
            match catch_unwind(AssertUnwindSafe(|| fitness.fitness(expr))) {
                Ok(Some(q)) if q.is_finite() => (Some(q), false),
                Ok(_) => (None, false),
                Err(_) => (None, true),
            }
        };

        let cancelled = || cancel.is_some_and(CancelToken::is_cancelled);
        let threads = self.config.threads;
        let results: Vec<(Option<f64>, bool)> = if threads <= 1
            || state.degraded
            || pending.len() <= 1
        {
            let mut out = Vec::with_capacity(pending.len());
            for &i in &pending {
                if cancelled() {
                    return None;
                }
                out.push(eval_one(&state.population[i]));
            }
            out
        } else {
            let exprs: Vec<&FeatureExpr> =
                pending.iter().map(|&i| &state.population[i]).collect();
            let mut out: Vec<(Option<f64>, bool)> = vec![(None, false); exprs.len()];
            let chunk = exprs.len().div_ceil(threads);
            let eval_one = &eval_one;
            let cancelled = &cancelled;
            std::thread::scope(|s| {
                for (expr_chunk, out_chunk) in exprs.chunks(chunk).zip(out.chunks_mut(chunk)) {
                    s.spawn(move || {
                        for (expr, slot) in expr_chunk.iter().zip(out_chunk.iter_mut()) {
                            if cancelled() {
                                break;
                            }
                            *slot = eval_one(expr);
                        }
                    });
                }
            });
            out
        };

        // Commit gate: once the token flips, *nothing* from this
        // generation may reach the memo — some results above may be
        // cancellation artefacts, not true evaluations.
        if cancelled() {
            return None;
        }

        let mut generation_panics = 0usize;
        for (&i, (quality, panicked)) in pending.iter().zip(results) {
            memo_insert(
                &mut state.memo,
                hashes[i],
                state.population[i].clone(),
                quality,
            );
            state.evaluations += 1;
            if panicked {
                state.panics += 1;
                generation_panics += 1;
            }
        }
        if generation_panics > 0 {
            state.panic_generations += 1;
            if state.panic_generations >= Self::DEGRADE_AFTER_PANIC_GENS && threads > 1 {
                // The evaluator keeps dying; stop trusting it under
                // concurrency. Results are unchanged (the memo is shared),
                // only the execution strategy degrades.
                state.degraded = true;
            }
        }

        Some(
            hashes
                .iter()
                .zip(state.population.iter())
                .map(|(&hash, expr)| {
                    memo_get(&state.memo, hash, expr)
                        .flatten()
                        .map(|quality| Evaluated {
                            expr: expr.clone(),
                            quality,
                            size: expr.size(),
                        })
                })
                .collect(),
        )
    }

    /// Tournament selection over the scored population; invalid individuals
    /// lose every tournament.
    fn select<'p>(
        &self,
        population: &'p [FeatureExpr],
        scored: &[Option<Evaluated>],
        rng: &mut StdRng,
    ) -> &'p FeatureExpr {
        let mut winner = rng.gen_range(0..population.len());
        for _ in 1..self.config.tournament_size.max(1) {
            let i = rng.gen_range(0..population.len());
            winner = match (&scored[i], &scored[winner]) {
                (Some(a), Some(b)) => {
                    if a.better_than_with(b, self.config.parsimony) {
                        i
                    } else {
                        winner
                    }
                }
                (Some(_), None) => i,
                _ => winner,
            };
        }
        &population[winner]
    }

    fn breed(
        &self,
        population: &[FeatureExpr],
        scored: &[Option<Evaluated>],
        rng: &mut StdRng,
    ) -> Vec<FeatureExpr> {
        let cfg = &self.config;
        let mut next = Vec::with_capacity(cfg.population);

        // Elites: best valid individuals survive unchanged.
        let mut ranked: Vec<&Evaluated> = scored.iter().flatten().collect();
        ranked.sort_by(|a, b| {
            let quality = b
                .quality
                .partial_cmp(&a.quality)
                .unwrap_or(std::cmp::Ordering::Equal);
            if cfg.parsimony {
                quality.then(a.size.cmp(&b.size))
            } else {
                quality
            }
        });
        for e in ranked.iter().take(cfg.elitism) {
            next.push(e.expr.clone());
        }

        while next.len() < cfg.population {
            let mut child = if rng.gen_bool(cfg.crossover_rate) {
                let a = self.select(population, scored, rng);
                let b = self.select(population, scored, rng);
                let (c1, c2) = ops::crossover(a, b, rng);
                if next.len() + 1 < cfg.population && !self.too_big(&c2) {
                    next.push(self.cap(c2, rng));
                }
                c1
            } else {
                self.select(population, scored, rng).clone()
            };
            if rng.gen_bool(cfg.mutation_rate) {
                child = ops::mutate(self.grammar, &child, rng, cfg.regrow_depth);
            }
            next.push(self.cap(child, rng));
        }
        next.truncate(cfg.population);
        next
    }

    fn too_big(&self, expr: &FeatureExpr) -> bool {
        expr.size() > self.config.max_size
    }

    /// Replaces over-sized offspring with fresh random individuals.
    fn cap(&self, expr: FeatureExpr, rng: &mut StdRng) -> FeatureExpr {
        if self.too_big(&expr) {
            self.grammar.gen_feature(rng, self.config.init_depth)
        } else {
            expr
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::IrNode;
    use rand::SeedableRng;

    fn grammar_and_ir() -> (Grammar, IrNode) {
        let ir = IrNode::build("loop", |l| {
            l.attr_num("num-iter", 12.0);
            l.attr_num("depth", 2.0);
            for _ in 0..3 {
                l.child("insn", |i| {
                    i.attr_enum("mode", "SI");
                    i.child("reg", |_| {});
                });
            }
            l.child("jump_insn", |_| {});
        });
        (Grammar::derive([&ir]), ir)
    }

    #[test]
    fn finds_a_target_value_feature() {
        // Fitness: how close the feature's value on the IR is to 12
        // (i.e. the engine should discover `get-attr(@num-iter)` or an
        // expression evaluating to 12).
        let (g, ir) = grammar_and_ir();
        let fit = |e: &FeatureExpr| -> Option<f64> {
            let v = e.eval_with_budget(&ir, 10_000).ok()?;
            Some(-(v - 12.0).abs())
        };
        let engine = GpEngine::new(&g, GpConfig::quick());
        let mut rng = StdRng::seed_from_u64(2);
        let run = engine.run(&fit, &mut rng);
        let best = run.best().expect("some individual must be valid");
        assert!(
            best.quality > -0.51,
            "expected near-perfect fitness, got {} for {}",
            best.quality,
            best.expr
        );
    }

    #[test]
    fn respects_generation_cap() {
        let (g, ir) = grammar_and_ir();
        let fit = |e: &FeatureExpr| e.eval_with_budget(&ir, 10_000).ok();
        let cfg = GpConfig {
            max_generations: 3,
            stagnation_limit: 100,
            ..GpConfig::quick()
        };
        let engine = GpEngine::new(&g, cfg);
        let run = engine.run(&fit, &mut StdRng::seed_from_u64(0));
        assert_eq!(run.generations, 3);
    }

    #[test]
    fn stops_on_stagnation() {
        let (g, _ir) = grammar_and_ir();
        // Constant fitness: first generation sets the best, never improves.
        let fit = |_: &FeatureExpr| Some(1.0);
        let cfg = GpConfig {
            stagnation_limit: 4,
            max_generations: 100,
            ..GpConfig::quick()
        };
        let engine = GpEngine::new(&g, cfg);
        let run = engine.run(&fit, &mut StdRng::seed_from_u64(0));
        // Gen 1 may improve (first best); afterwards 4 stagnant generations.
        assert!(run.generations <= 6, "ran {} generations", run.generations);
    }

    #[test]
    fn all_invalid_population_yields_no_best() {
        let (g, _ir) = grammar_and_ir();
        let fit = |_: &FeatureExpr| -> Option<f64> { None };
        let cfg = GpConfig {
            max_generations: 2,
            ..GpConfig::quick()
        };
        let engine = GpEngine::new(&g, cfg);
        let run = engine.run(&fit, &mut StdRng::seed_from_u64(0));
        assert!(run.best.is_none());
        assert!(matches!(
            run.best(),
            Err(crate::error::SearchError::NoViableCandidate { .. })
        ));
    }

    #[test]
    fn parsimony_prefers_shorter_at_equal_quality() {
        let (g, _ir) = grammar_and_ir();
        let fit = |_: &FeatureExpr| Some(5.0);
        let engine = GpEngine::new(&g, GpConfig::quick());
        let run = engine.run(&fit, &mut StdRng::seed_from_u64(3));
        let best = run.best().expect("constant fitness validates everyone");
        // With constant fitness the best must be a minimal (size-1) feature.
        assert_eq!(best.size, 1, "parsimony should find a size-1 expression, got {}", best.expr);
    }

    #[test]
    fn memoisation_reduces_evaluations() {
        let (g, ir) = grammar_and_ir();
        let fit = |e: &FeatureExpr| e.eval_with_budget(&ir, 10_000).ok();
        let cfg = GpConfig {
            max_generations: 10,
            stagnation_limit: 10,
            ..GpConfig::quick()
        };
        let engine = GpEngine::new(&g, cfg.clone());
        let run = engine.run(&fit, &mut StdRng::seed_from_u64(4));
        let naive = cfg.population * run.generations;
        assert!(
            run.evaluations < naive,
            "expected memo hits: {} evaluations for {} slots",
            run.evaluations,
            naive
        );
    }

    #[test]
    fn parallel_evaluation_matches_sequential() {
        let (g, ir) = grammar_and_ir();
        let fit = |e: &FeatureExpr| e.eval_with_budget(&ir, 10_000).ok();
        let run_with = |threads: usize| {
            let cfg = GpConfig {
                threads,
                max_generations: 8,
                ..GpConfig::quick()
            };
            let engine = GpEngine::new(&g, cfg);
            engine.run(&fit, &mut StdRng::seed_from_u64(21))
        };
        let seq = run_with(1);
        let par = run_with(3);
        assert_eq!(seq.best, par.best, "threading must not change results");
        assert_eq!(seq.generations, par.generations);
        assert_eq!(seq.evaluations, par.evaluations);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (g, ir) = grammar_and_ir();
        let fit = |e: &FeatureExpr| e.eval_with_budget(&ir, 10_000).ok();
        let engine = GpEngine::new(&g, GpConfig::quick());
        let r1 = engine.run(&fit, &mut StdRng::seed_from_u64(9));
        let r2 = engine.run(&fit, &mut StdRng::seed_from_u64(9));
        assert_eq!(r1.best, r2.best);
        assert_eq!(r1.generations, r2.generations);
    }

    #[test]
    fn panicking_fitness_costs_one_candidate_not_the_run() {
        let (g, ir) = grammar_and_ir();
        // Panic on every expression mentioning `depth`; everything else
        // evaluates normally.
        let fit = |e: &FeatureExpr| -> Option<f64> {
            let text = e.to_string();
            if text.contains("depth") {
                panic!("injected: evaluator bug on {text}");
            }
            e.eval_with_budget(&ir, 10_000).ok()
        };
        let cfg = GpConfig {
            max_generations: 6,
            ..GpConfig::quick()
        };
        let engine = GpEngine::new(&g, cfg);
        let run = engine.run(&fit, &mut StdRng::seed_from_u64(14));
        // The run completes; whatever best it found does not mention the
        // poisoned attribute.
        assert_eq!(run.generations, 6);
        if let Some(best) = &run.best {
            assert!(!best.expr.to_string().contains("depth"));
        }
    }

    #[test]
    fn panic_isolation_is_thread_count_invariant() {
        let (g, ir) = grammar_and_ir();
        let fit = |e: &FeatureExpr| -> Option<f64> {
            let text = e.to_string();
            if crate::faults::fnv1a(text.as_bytes()).is_multiple_of(5) {
                panic!("injected: hash-selected panic");
            }
            e.eval_with_budget(&ir, 10_000).ok()
        };
        let run_with = |threads: usize| {
            let cfg = GpConfig {
                threads,
                max_generations: 6,
                ..GpConfig::quick()
            };
            GpEngine::new(&g, cfg).run(&fit, &mut StdRng::seed_from_u64(33))
        };
        let seq = run_with(1);
        let par = run_with(4);
        assert_eq!(seq.best, par.best);
        assert_eq!(seq.generations, par.generations);
        assert_eq!(seq.panics, par.panics);
        assert!(seq.panics > 0, "the fault pattern should have fired");
    }

    #[test]
    fn nan_fitness_is_sanitized_to_invalid() {
        let (g, _ir) = grammar_and_ir();
        let fit = |_: &FeatureExpr| Some(f64::NAN);
        let cfg = GpConfig {
            max_generations: 2,
            ..GpConfig::quick()
        };
        let run = GpEngine::new(&g, cfg).run(&fit, &mut StdRng::seed_from_u64(0));
        assert!(run.best.is_none(), "NaN must never become a best fitness");
    }

    #[test]
    fn snapshot_resume_continues_identically() {
        let (g, ir) = grammar_and_ir();
        let fit = |e: &FeatureExpr| e.eval_with_budget(&ir, 10_000).ok();
        let cfg = GpConfig {
            max_generations: 9,
            stagnation_limit: 9,
            ..GpConfig::quick()
        };
        let engine = GpEngine::new(&g, cfg);

        // Uninterrupted reference run.
        let mut reference = engine.init_state(StdRng::seed_from_u64(77));
        while let GpStatus::Running = engine.step(&mut reference, &fit) {}
        let reference = reference.into_run();

        // Run 4 generations, snapshot, round-trip through serialization,
        // resume to completion.
        let mut state = engine.init_state(StdRng::seed_from_u64(77));
        for _ in 0..4 {
            assert_eq!(engine.step(&mut state, &fit), GpStatus::Running);
        }
        let snapshot = state.snapshot();
        drop(state);
        let text = serde_json::to_string(&snapshot).expect("snapshot serializes");
        let back: GpSnapshot = serde_json::from_str(&text).expect("snapshot parses");
        assert_eq!(back, snapshot);
        let mut resumed = GpState::from_snapshot(&back).expect("snapshot restores");
        while let GpStatus::Running = engine.step(&mut resumed, &fit) {}
        let resumed = resumed.into_run();

        assert_eq!(resumed.best, reference.best);
        assert_eq!(resumed.generations, reference.generations);
        assert_eq!(resumed.evaluations, reference.evaluations);
    }
}
