//! Length-prefixed, digest-sealed frame transport for process-level
//! island workers.
//!
//! The supervisor and its workers exchange **frames**: a fixed 28-byte
//! header followed by an opaque payload (in practice a JSON-encoded
//! [`super::worker_proc::WireMsg`] carrying checkpoint-v2
//! [`super::island::IslandSnapshot`] fragments). Nothing off the wire is
//! trusted: every frame is validated for magic, protocol version, length
//! bounds and payload digest before a single payload byte is interpreted,
//! and every violation surfaces as a typed [`TransportError`] — never a
//! panic, never a partial read silently adopted.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     4  magic        b"FGN1"
//!      4     4  version      PROTOCOL_VERSION
//!      8     8  seq          per-connection sequence number
//!     16     4  payload_len  bounds-checked against MAX_FRAME_LEN
//!     20     8  digest       stable_hash (FNV-1a) of the payload
//!     28     …  payload
//! ```
//!
//! The sequence number gives the receiver a one-frame dedup window: a
//! frame repeating the previous sequence number is dropped without being
//! delivered, which is what makes an injected
//! [`crate::faults::FaultKind::DuplicateFrame`] *provably* neutral.
//!
//! A frame-level error is fatal to its connection. There is no resync
//! protocol: the reader cannot know where the next header starts after a
//! torn or corrupted frame, so both sides treat the stream as dead — the
//! worker exits with a typed error, the supervisor discards the attempt
//! and respawns from the last committed round. Crash-only, like the rest
//! of the runtime.
//!
//! Two transports implement the same trait: [`StreamTransport`] over any
//! `Read`/`Write` pair (child-process stdio pipes, Unix-domain sockets)
//! and the same type over the in-memory [`duplex`] pipe for loopback
//! workers — loopback still encodes and decodes every frame, so the two
//! modes execute the identical codec path.

use crate::faults::stable_hash;
use std::collections::VecDeque;
use std::fmt;
use std::io::{Read, Write};
use std::sync::{Arc, Condvar, Mutex};

/// First four bytes of every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"FGN1";
/// Wire protocol version; bumped on any incompatible frame or message
/// change. Checked on every frame *and* in the handshake.
pub const PROTOCOL_VERSION: u32 = 1;
/// Hard upper bound on a payload; anything larger is rejected before
/// allocation (a hostile or corrupt length field cannot OOM the reader).
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;
/// Size of the fixed frame header.
pub const FRAME_HEADER_LEN: usize = 28;

/// Typed frame/connection failures. Every decoding error names what was
/// violated; none of them can panic the peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The underlying channel failed (OS error text preserved).
    Io(String),
    /// The peer closed the connection at a frame boundary (clean EOF).
    Closed,
    /// The stream ended inside a header or payload (torn frame).
    TornFrame {
        /// Bytes the reader needed.
        expected: usize,
        /// Bytes it got before the stream ended.
        got: usize,
    },
    /// The header does not start with [`FRAME_MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// The frame was produced by an incompatible protocol version.
    VersionSkew {
        /// Version in the frame.
        found: u32,
        /// Version this build speaks.
        expected: u32,
    },
    /// The length field exceeds [`MAX_FRAME_LEN`].
    OverLength {
        /// Claimed payload length.
        len: u32,
        /// The bound it violates.
        max: u32,
    },
    /// The payload does not hash to the digest in the header (bit flip,
    /// truncated write, tampering).
    DigestMismatch {
        /// Digest the header promised.
        expected: u64,
        /// Digest of the bytes actually received.
        found: u64,
    },
    /// The payload decoded as bytes but not as a valid protocol message.
    Malformed(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Io(detail) => write!(f, "transport i/o error: {detail}"),
            TransportError::Closed => write!(f, "transport closed by peer"),
            TransportError::TornFrame { expected, got } => {
                write!(f, "torn frame: needed {expected} byte(s), got {got}")
            }
            TransportError::BadMagic { found } => {
                write!(f, "bad frame magic {found:02x?}")
            }
            TransportError::VersionSkew { found, expected } => write!(
                f,
                "protocol version skew: peer speaks v{found}, this build v{expected}"
            ),
            TransportError::OverLength { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte bound")
            }
            TransportError::DigestMismatch { expected, found } => write!(
                f,
                "frame digest mismatch: header promised {expected:016x}, payload hashes to {found:016x}"
            ),
            TransportError::Malformed(detail) => {
                write!(f, "malformed protocol message: {detail}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// Encodes one frame. Fails (typed, no panic) only when the payload
/// exceeds [`MAX_FRAME_LEN`].
pub fn encode_frame(seq: u64, payload: &[u8]) -> Result<Vec<u8>, TransportError> {
    if payload.len() > MAX_FRAME_LEN as usize {
        return Err(TransportError::OverLength {
            len: payload.len().min(u32::MAX as usize) as u32,
            max: MAX_FRAME_LEN,
        });
    }
    let mut buf = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    buf.extend_from_slice(&FRAME_MAGIC);
    buf.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&stable_hash(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    Ok(buf)
}

/// Decodes one frame from an in-memory buffer, applying every validation
/// a streaming reader applies (magic, version, bounds, digest, torn
/// tail). Returns `(seq, payload)`.
pub fn decode_frame(bytes: &[u8]) -> Result<(u64, Vec<u8>), TransportError> {
    if bytes.len() < FRAME_HEADER_LEN {
        return Err(TransportError::TornFrame {
            expected: FRAME_HEADER_LEN,
            got: bytes.len(),
        });
    }
    let magic: [u8; 4] = bytes[0..4].try_into().expect("4-byte slice");
    if magic != FRAME_MAGIC {
        return Err(TransportError::BadMagic { found: magic });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4-byte slice"));
    if version != PROTOCOL_VERSION {
        return Err(TransportError::VersionSkew {
            found: version,
            expected: PROTOCOL_VERSION,
        });
    }
    let seq = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
    let len = u32::from_le_bytes(bytes[16..20].try_into().expect("4-byte slice"));
    if len > MAX_FRAME_LEN {
        return Err(TransportError::OverLength {
            len,
            max: MAX_FRAME_LEN,
        });
    }
    let expected = u64::from_le_bytes(bytes[20..28].try_into().expect("8-byte slice"));
    let want = FRAME_HEADER_LEN + len as usize;
    if bytes.len() < want {
        return Err(TransportError::TornFrame {
            expected: want,
            got: bytes.len(),
        });
    }
    let payload = &bytes[FRAME_HEADER_LEN..want];
    let found = stable_hash(payload);
    if found != expected {
        return Err(TransportError::DigestMismatch { expected, found });
    }
    Ok((seq, payload.to_vec()))
}

/// How an injected fault wants the next send to misbehave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SendFault {
    /// Send the frame normally.
    #[default]
    Clean,
    /// Send the frame twice with the same sequence number; the receiver's
    /// dedup window drops the replay.
    Duplicate,
    /// Send only the first half of the frame's bytes, then poison the
    /// connection — the deterministic stand-in for a torn write / dropped
    /// connection mid-frame.
    Torn,
}

/// Per-connection frame counters, for telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Frames fully sent.
    pub frames_tx: u64,
    /// Frames fully received and delivered.
    pub frames_rx: u64,
    /// Duplicate frames dropped by the dedup window.
    pub duplicates_dropped: u64,
}

/// A bidirectional frame channel. One instance serves exactly one
/// supervisor↔worker connection; any error poisons it.
pub trait FrameTransport: Send {
    /// Sends one payload as a frame, optionally misbehaving as `fault`
    /// dictates. [`SendFault::Torn`] reports success (the torn bytes *were*
    /// written) but poisons the connection.
    fn send_with(&mut self, payload: &[u8], fault: SendFault) -> Result<(), TransportError>;

    /// Receives the next frame's payload, transparently dropping
    /// duplicated sequence numbers.
    fn recv(&mut self) -> Result<Vec<u8>, TransportError>;

    /// Frame counters so far.
    fn stats(&self) -> TransportStats;

    /// Sends one payload as a well-formed frame.
    fn send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        self.send_with(payload, SendFault::Clean)
    }
}

/// [`FrameTransport`] over any blocking byte stream pair: child-process
/// stdio pipes, a Unix-domain socket, or the in-memory [`duplex`] pipe.
pub struct StreamTransport<R: Read, W: Write> {
    reader: R,
    writer: W,
    next_seq: u64,
    last_recv_seq: Option<u64>,
    poisoned: bool,
    stats: TransportStats,
}

impl<R: Read, W: Write> StreamTransport<R, W> {
    /// A transport over the given stream halves.
    pub fn new(reader: R, writer: W) -> Self {
        StreamTransport {
            reader,
            writer,
            next_seq: 0,
            last_recv_seq: None,
            poisoned: false,
            stats: TransportStats::default(),
        }
    }

    fn read_exact_or_torn(&mut self, buf: &mut [u8], clean_eof: bool) -> Result<(), TransportError> {
        let mut got = 0usize;
        while got < buf.len() {
            match self.reader.read(&mut buf[got..]) {
                Ok(0) => {
                    return if got == 0 && clean_eof {
                        Err(TransportError::Closed)
                    } else {
                        Err(TransportError::TornFrame {
                            expected: buf.len(),
                            got,
                        })
                    };
                }
                Ok(n) => got += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(TransportError::Io(e.to_string())),
            }
        }
        Ok(())
    }

    /// Reads one raw frame off the stream (no dedup).
    fn read_frame(&mut self) -> Result<(u64, Vec<u8>), TransportError> {
        let mut header = [0u8; FRAME_HEADER_LEN];
        self.read_exact_or_torn(&mut header, true)?;
        let magic: [u8; 4] = header[0..4].try_into().expect("4-byte slice");
        if magic != FRAME_MAGIC {
            return Err(TransportError::BadMagic { found: magic });
        }
        let version = u32::from_le_bytes(header[4..8].try_into().expect("4-byte slice"));
        if version != PROTOCOL_VERSION {
            return Err(TransportError::VersionSkew {
                found: version,
                expected: PROTOCOL_VERSION,
            });
        }
        let seq = u64::from_le_bytes(header[8..16].try_into().expect("8-byte slice"));
        let len = u32::from_le_bytes(header[16..20].try_into().expect("4-byte slice"));
        if len > MAX_FRAME_LEN {
            return Err(TransportError::OverLength {
                len,
                max: MAX_FRAME_LEN,
            });
        }
        let expected = u64::from_le_bytes(header[20..28].try_into().expect("8-byte slice"));
        let mut payload = vec![0u8; len as usize];
        self.read_exact_or_torn(&mut payload, false)?;
        let found = stable_hash(&payload);
        if found != expected {
            return Err(TransportError::DigestMismatch { expected, found });
        }
        Ok((seq, payload))
    }
}

impl<R: Read + Send, W: Write + Send> FrameTransport for StreamTransport<R, W> {
    fn send_with(&mut self, payload: &[u8], fault: SendFault) -> Result<(), TransportError> {
        if self.poisoned {
            return Err(TransportError::Closed);
        }
        let bytes = encode_frame(self.next_seq, payload)?;
        self.next_seq += 1;
        let write = |w: &mut W, bytes: &[u8]| -> Result<(), TransportError> {
            w.write_all(bytes)
                .and_then(|()| w.flush())
                .map_err(|e| TransportError::Io(e.to_string()))
        };
        match fault {
            SendFault::Clean => {
                write(&mut self.writer, &bytes)?;
                self.stats.frames_tx += 1;
            }
            SendFault::Duplicate => {
                write(&mut self.writer, &bytes)?;
                write(&mut self.writer, &bytes)?;
                self.stats.frames_tx += 2;
            }
            SendFault::Torn => {
                // Half the frame, then never the rest: the peer's reader
                // fails typed (TornFrame or DigestMismatch), and this side
                // refuses further traffic on the dead stream.
                let half = bytes.len() / 2;
                write(&mut self.writer, &bytes[..half])?;
                self.poisoned = true;
            }
        }
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        if self.poisoned {
            return Err(TransportError::Closed);
        }
        loop {
            let (seq, payload) = match self.read_frame() {
                Ok(frame) => frame,
                Err(e) => {
                    self.poisoned = !matches!(e, TransportError::Closed);
                    return Err(e);
                }
            };
            if self.last_recv_seq == Some(seq) {
                self.stats.duplicates_dropped += 1;
                continue;
            }
            self.last_recv_seq = Some(seq);
            self.stats.frames_rx += 1;
            return Ok(payload);
        }
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

/// Shared state of one in-memory pipe direction.
#[derive(Default)]
struct PipeInner {
    buf: VecDeque<u8>,
    closed: bool,
}

type PipeShared = Arc<(Mutex<PipeInner>, Condvar)>;

/// Read half of an in-memory blocking pipe.
pub struct PipeReader(PipeShared);
/// Write half of an in-memory blocking pipe.
pub struct PipeWriter(PipeShared);

impl Read for PipeReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let (lock, cvar) = &*self.0;
        let mut inner = lock.lock().expect("pipe lock");
        loop {
            if !inner.buf.is_empty() {
                let n = buf.len().min(inner.buf.len());
                for slot in buf.iter_mut().take(n) {
                    *slot = inner.buf.pop_front().expect("non-empty pipe");
                }
                return Ok(n);
            }
            if inner.closed {
                return Ok(0);
            }
            inner = cvar.wait(inner).expect("pipe wait");
        }
    }
}

impl Write for PipeWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let (lock, cvar) = &*self.0;
        let mut inner = lock.lock().expect("pipe lock");
        if inner.closed {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "pipe reader dropped",
            ));
        }
        inner.buf.extend(buf.iter().copied());
        cvar.notify_all();
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        let (lock, cvar) = &*self.0;
        if let Ok(mut inner) = lock.lock() {
            inner.closed = true;
            cvar.notify_all();
        }
    }
}

impl Drop for PipeReader {
    fn drop(&mut self) {
        let (lock, cvar) = &*self.0;
        if let Ok(mut inner) = lock.lock() {
            inner.closed = true;
            cvar.notify_all();
        }
    }
}

fn pipe() -> (PipeReader, PipeWriter) {
    let shared: PipeShared = Arc::new((Mutex::new(PipeInner::default()), Condvar::new()));
    (PipeReader(shared.clone()), PipeWriter(shared))
}

/// The loopback transport pair: two in-memory pipes crossed, so each side
/// gets a `(reader, writer)` that speaks to the other. Loopback workers
/// run the byte-level codec end to end — the only difference from a
/// process worker is the carrier.
pub type LoopbackTransport = StreamTransport<PipeReader, PipeWriter>;

/// Creates a connected `(supervisor_side, worker_side)` loopback pair.
pub fn duplex() -> (LoopbackTransport, LoopbackTransport) {
    let (sup_r, wrk_w) = pipe();
    let (wrk_r, sup_w) = pipe();
    (
        StreamTransport::new(sup_r, sup_w),
        StreamTransport::new(wrk_r, wrk_w),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_over_loopback() {
        let (mut sup, mut wrk) = duplex();
        sup.send(b"hello").unwrap();
        sup.send(b"").unwrap();
        assert_eq!(wrk.recv().unwrap(), b"hello");
        assert_eq!(wrk.recv().unwrap(), b"");
        wrk.send(b"ack").unwrap();
        assert_eq!(sup.recv().unwrap(), b"ack");
        assert_eq!(sup.stats().frames_tx, 2);
        assert_eq!(wrk.stats().frames_rx, 2);
    }

    #[test]
    fn duplicate_frames_are_dropped() {
        let (mut sup, mut wrk) = duplex();
        sup.send_with(b"once", SendFault::Duplicate).unwrap();
        sup.send(b"next").unwrap();
        assert_eq!(wrk.recv().unwrap(), b"once");
        assert_eq!(wrk.recv().unwrap(), b"next");
        assert_eq!(wrk.stats().duplicates_dropped, 1);
    }

    #[test]
    fn torn_send_poisons_both_ends() {
        let (mut sup, mut wrk) = duplex();
        sup.send_with(b"will tear", SendFault::Torn).unwrap();
        drop(sup);
        let err = wrk.recv().unwrap_err();
        assert!(
            matches!(err, TransportError::TornFrame { .. }),
            "torn frame must surface typed, got {err}"
        );
        // The poisoned reader refuses further traffic.
        assert_eq!(wrk.recv().unwrap_err(), TransportError::Closed);
    }

    #[test]
    fn clean_close_reports_closed() {
        let (sup, mut wrk) = duplex();
        drop(sup);
        assert_eq!(wrk.recv().unwrap_err(), TransportError::Closed);
    }

    #[test]
    fn decode_rejects_corruption_typed() {
        let good = encode_frame(7, b"payload").unwrap();
        assert_eq!(decode_frame(&good).unwrap(), (7, b"payload".to_vec()));

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xff;
        assert!(matches!(
            decode_frame(&bad_magic),
            Err(TransportError::BadMagic { .. })
        ));

        let mut skewed = good.clone();
        skewed[4] = 99;
        assert!(matches!(
            decode_frame(&skewed),
            Err(TransportError::VersionSkew { found: 99, .. })
        ));

        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(matches!(
            decode_frame(&flipped),
            Err(TransportError::DigestMismatch { .. })
        ));

        assert!(matches!(
            decode_frame(&good[..10]),
            Err(TransportError::TornFrame { .. })
        ));

        let mut oversized = good;
        oversized[16..20].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert!(matches!(
            decode_frame(&oversized),
            Err(TransportError::OverLength { .. })
        ));
    }
}
