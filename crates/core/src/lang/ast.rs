//! Abstract syntax of the feature expression language.
//!
//! A *feature* is a numeric expression evaluated at the root of an exported
//! IR tree (see [`crate::ir::IrNode`]). Sub-expressions come in three sorts,
//! mirroring the paper's grammar (Figures 7 and 11):
//!
//! - **numeric** ([`FeatureExpr`]) — `count`, `sum`, `max`, `min`, `avg`,
//!   `get-attr(@a)`, constants and arithmetic;
//! - **boolean** ([`BoolExpr`]) — `is-type(t)`, `has-attr(@a)`,
//!   `@a == value`, numeric comparisons, `!`, `&&`, `||` and the child
//!   pattern `/[n][p]`;
//! - **sequence** ([`SeqExpr`]) — `/*` (children), `//*` (descendants) and
//!   `filter(s, p)`.
//!
//! Booleans and numerics are evaluated *relative to a context node*; sequence
//! expressions produce the nodes over which an aggregate iterates, and the
//! aggregate's body expression sees each element as its context.

use crate::ir::Symbol;
use serde::{Deserialize, Serialize};

/// Arithmetic operators in numeric feature expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Protected division: division by (near-)zero evaluates to `0.0` so
    /// that genetic search does not have to avoid singular expressions.
    Div,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Applies the comparison to two floats (`==`/`!=` are exact, as the
    /// values compared are typically counts and small attribute values).
    pub fn apply(self, a: f64, b: f64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// A numeric feature expression. The top level of every feature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FeatureExpr {
    /// Literal constant.
    Const(f64),
    /// `get-attr(@name)` — numeric value of the context node's attribute.
    /// Missing attributes and enum attributes evaluate to `0.0`.
    GetAttr(Symbol),
    /// `count(s)` — number of nodes in the sequence.
    Count(SeqExpr),
    /// `sum(s, e)` — sum of `e` evaluated at each node of `s`.
    Sum(SeqExpr, Box<FeatureExpr>),
    /// `max(s, e)` — maximum of `e` over `s` (`0.0` when `s` is empty).
    Max(SeqExpr, Box<FeatureExpr>),
    /// `min(s, e)` — minimum of `e` over `s` (`0.0` when `s` is empty).
    Min(SeqExpr, Box<FeatureExpr>),
    /// `avg(s, e)` — mean of `e` over `s` (`0.0` when `s` is empty).
    Avg(SeqExpr, Box<FeatureExpr>),
    /// Binary arithmetic.
    Arith(ArithOp, Box<FeatureExpr>, Box<FeatureExpr>),
    /// Arithmetic negation.
    Neg(Box<FeatureExpr>),
}

/// A boolean predicate over a context node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BoolExpr {
    /// `is-type(t)` — the context node's kind is `t`.
    IsType(Symbol),
    /// `has-attr(@a)` — the context node has attribute `a`.
    HasAttr(Symbol),
    /// `@a == V` for an enumerated attribute value `V` (also covers
    /// `@flag == true` / `@flag == false` for boolean attributes).
    AttrEqEnum(Symbol, Symbol),
    /// `@a OP k` for a numeric attribute; false when the attribute is
    /// missing or non-numeric.
    AttrCmpNum(Symbol, CmpOp, f64),
    /// Comparison of two numeric sub-expressions.
    Cmp(CmpOp, Box<FeatureExpr>, Box<FeatureExpr>),
    /// `/[n][p]` — the context node has an `n`-th child and it satisfies `p`.
    ChildMatches(usize, Box<BoolExpr>),
    /// Logical negation.
    Not(Box<BoolExpr>),
    /// Short-circuit conjunction.
    And(Box<BoolExpr>, Box<BoolExpr>),
    /// Short-circuit disjunction.
    Or(Box<BoolExpr>, Box<BoolExpr>),
}

/// A sequence of IR nodes, relative to a context node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SeqExpr {
    /// `/*` — the context node's direct children.
    Children,
    /// `//*` — all descendants of the context node (excluding itself),
    /// pre-order.
    Descendants,
    /// `filter(s, p)` — the nodes of `s` satisfying `p`.
    Filter(Box<SeqExpr>, Box<BoolExpr>),
}

impl FeatureExpr {
    /// Number of AST nodes in this expression (used for parsimony pressure).
    pub fn size(&self) -> usize {
        use FeatureExpr::*;
        match self {
            Const(_) | GetAttr(_) => 1,
            Count(s) => 1 + s.size(),
            Sum(s, e) | Max(s, e) | Min(s, e) | Avg(s, e) => 1 + s.size() + e.size(),
            Arith(_, a, b) => 1 + a.size() + b.size(),
            Neg(a) => 1 + a.size(),
        }
    }

    /// Maximum nesting depth.
    pub fn depth(&self) -> usize {
        use FeatureExpr::*;
        match self {
            Const(_) | GetAttr(_) => 1,
            Count(s) => 1 + s.depth(),
            Sum(s, e) | Max(s, e) | Min(s, e) | Avg(s, e) => 1 + s.depth().max(e.depth()),
            Arith(_, a, b) => 1 + a.depth().max(b.depth()),
            Neg(a) => 1 + a.depth(),
        }
    }
}

impl BoolExpr {
    /// Number of AST nodes in this predicate.
    pub fn size(&self) -> usize {
        use BoolExpr::*;
        match self {
            IsType(_) | HasAttr(_) | AttrEqEnum(..) | AttrCmpNum(..) => 1,
            Cmp(_, a, b) => 1 + a.size() + b.size(),
            ChildMatches(_, p) => 1 + p.size(),
            Not(p) => 1 + p.size(),
            And(a, b) | Or(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Maximum nesting depth.
    pub fn depth(&self) -> usize {
        use BoolExpr::*;
        match self {
            IsType(_) | HasAttr(_) | AttrEqEnum(..) | AttrCmpNum(..) => 1,
            Cmp(_, a, b) => 1 + a.depth().max(b.depth()),
            ChildMatches(_, p) => 1 + p.depth(),
            Not(p) => 1 + p.depth(),
            And(a, b) | Or(a, b) => 1 + a.depth().max(b.depth()),
        }
    }
}

impl SeqExpr {
    /// Number of AST nodes in this sequence expression.
    pub fn size(&self) -> usize {
        match self {
            SeqExpr::Children | SeqExpr::Descendants => 1,
            SeqExpr::Filter(s, p) => 1 + s.size() + p.size(),
        }
    }

    /// Maximum nesting depth.
    pub fn depth(&self) -> usize {
        match self {
            SeqExpr::Children | SeqExpr::Descendants => 1,
            SeqExpr::Filter(s, p) => 1 + s.depth().max(p.depth()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FeatureExpr {
        // count(filter(//*, is-type(insn))) + 2
        FeatureExpr::Arith(
            ArithOp::Add,
            Box::new(FeatureExpr::Count(SeqExpr::Filter(
                Box::new(SeqExpr::Descendants),
                Box::new(BoolExpr::IsType(Symbol::intern("insn"))),
            ))),
            Box::new(FeatureExpr::Const(2.0)),
        )
    }

    #[test]
    fn size_counts_all_nodes() {
        // arith, count, filter, descendants, is-type, const = 6
        assert_eq!(sample().size(), 6);
    }

    #[test]
    fn depth_follows_longest_path() {
        // arith -> count -> filter -> {descendants | is-type}
        assert_eq!(sample().depth(), 4);
    }

    #[test]
    fn cmp_op_semantics() {
        assert!(CmpOp::Le.apply(2.0, 2.0));
        assert!(!CmpOp::Lt.apply(2.0, 2.0));
        assert!(CmpOp::Ne.apply(1.0, 2.0));
        assert!(CmpOp::Ge.apply(3.0, 2.0));
    }
}
