//! Abstract syntax of the feature expression language.
//!
//! A *feature* is a numeric expression evaluated at the root of an exported
//! IR tree (see [`crate::ir::IrNode`]). Sub-expressions come in three sorts,
//! mirroring the paper's grammar (Figures 7 and 11):
//!
//! - **numeric** ([`FeatureExpr`]) — `count`, `sum`, `max`, `min`, `avg`,
//!   `get-attr(@a)`, constants and arithmetic;
//! - **boolean** ([`BoolExpr`]) — `is-type(t)`, `has-attr(@a)`,
//!   `@a == value`, numeric comparisons, `!`, `&&`, `||` and the child
//!   pattern `/[n][p]`;
//! - **sequence** ([`SeqExpr`]) — `/*` (children), `//*` (descendants) and
//!   `filter(s, p)`.
//!
//! Booleans and numerics are evaluated *relative to a context node*; sequence
//! expressions produce the nodes over which an aggregate iterates, and the
//! aggregate's body expression sees each element as its context.

use crate::ir::Symbol;
use serde::{Deserialize, Serialize};

/// Arithmetic operators in numeric feature expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Protected division: division by (near-)zero evaluates to `0.0` so
    /// that genetic search does not have to avoid singular expressions.
    Div,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Applies the comparison to two floats (`==`/`!=` are exact, as the
    /// values compared are typically counts and small attribute values).
    pub fn apply(self, a: f64, b: f64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// A numeric feature expression. The top level of every feature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FeatureExpr {
    /// Literal constant.
    Const(f64),
    /// `get-attr(@name)` — numeric value of the context node's attribute.
    /// Missing attributes and enum attributes evaluate to `0.0`.
    GetAttr(Symbol),
    /// `count(s)` — number of nodes in the sequence.
    Count(SeqExpr),
    /// `sum(s, e)` — sum of `e` evaluated at each node of `s`.
    Sum(SeqExpr, Box<FeatureExpr>),
    /// `max(s, e)` — maximum of `e` over `s` (`0.0` when `s` is empty).
    Max(SeqExpr, Box<FeatureExpr>),
    /// `min(s, e)` — minimum of `e` over `s` (`0.0` when `s` is empty).
    Min(SeqExpr, Box<FeatureExpr>),
    /// `avg(s, e)` — mean of `e` over `s` (`0.0` when `s` is empty).
    Avg(SeqExpr, Box<FeatureExpr>),
    /// Binary arithmetic.
    Arith(ArithOp, Box<FeatureExpr>, Box<FeatureExpr>),
    /// Arithmetic negation.
    Neg(Box<FeatureExpr>),
}

/// A boolean predicate over a context node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BoolExpr {
    /// `is-type(t)` — the context node's kind is `t`.
    IsType(Symbol),
    /// `has-attr(@a)` — the context node has attribute `a`.
    HasAttr(Symbol),
    /// `@a == V` for an enumerated attribute value `V` (also covers
    /// `@flag == true` / `@flag == false` for boolean attributes).
    AttrEqEnum(Symbol, Symbol),
    /// `@a OP k` for a numeric attribute; false when the attribute is
    /// missing or non-numeric.
    AttrCmpNum(Symbol, CmpOp, f64),
    /// Comparison of two numeric sub-expressions.
    Cmp(CmpOp, Box<FeatureExpr>, Box<FeatureExpr>),
    /// `/[n][p]` — the context node has an `n`-th child and it satisfies `p`.
    ChildMatches(usize, Box<BoolExpr>),
    /// Logical negation.
    Not(Box<BoolExpr>),
    /// Short-circuit conjunction.
    And(Box<BoolExpr>, Box<BoolExpr>),
    /// Short-circuit disjunction.
    Or(Box<BoolExpr>, Box<BoolExpr>),
}

/// A sequence of IR nodes, relative to a context node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SeqExpr {
    /// `/*` — the context node's direct children.
    Children,
    /// `//*` — all descendants of the context node (excluding itself),
    /// pre-order.
    Descendants,
    /// `filter(s, p)` — the nodes of `s` satisfying `p`.
    Filter(Box<SeqExpr>, Box<BoolExpr>),
}

impl FeatureExpr {
    /// Number of AST nodes in this expression (used for parsimony pressure).
    pub fn size(&self) -> usize {
        use FeatureExpr::*;
        match self {
            Const(_) | GetAttr(_) => 1,
            Count(s) => 1 + s.size(),
            Sum(s, e) | Max(s, e) | Min(s, e) | Avg(s, e) => 1 + s.size() + e.size(),
            Arith(_, a, b) => 1 + a.size() + b.size(),
            Neg(a) => 1 + a.size(),
        }
    }

    /// Maximum nesting depth.
    pub fn depth(&self) -> usize {
        use FeatureExpr::*;
        match self {
            Const(_) | GetAttr(_) => 1,
            Count(s) => 1 + s.depth(),
            Sum(s, e) | Max(s, e) | Min(s, e) | Avg(s, e) => 1 + s.depth().max(e.depth()),
            Arith(_, a, b) => 1 + a.depth().max(b.depth()),
            Neg(a) => 1 + a.depth(),
        }
    }
}

impl BoolExpr {
    /// Number of AST nodes in this predicate.
    pub fn size(&self) -> usize {
        use BoolExpr::*;
        match self {
            IsType(_) | HasAttr(_) | AttrEqEnum(..) | AttrCmpNum(..) => 1,
            Cmp(_, a, b) => 1 + a.size() + b.size(),
            ChildMatches(_, p) => 1 + p.size(),
            Not(p) => 1 + p.size(),
            And(a, b) | Or(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Maximum nesting depth.
    pub fn depth(&self) -> usize {
        use BoolExpr::*;
        match self {
            IsType(_) | HasAttr(_) | AttrEqEnum(..) | AttrCmpNum(..) => 1,
            Cmp(_, a, b) => 1 + a.depth().max(b.depth()),
            ChildMatches(_, p) => 1 + p.depth(),
            Not(p) => 1 + p.depth(),
            And(a, b) | Or(a, b) => 1 + a.depth().max(b.depth()),
        }
    }
}

impl SeqExpr {
    /// Number of AST nodes in this sequence expression.
    pub fn size(&self) -> usize {
        match self {
            SeqExpr::Children | SeqExpr::Descendants => 1,
            SeqExpr::Filter(s, p) => 1 + s.size() + p.size(),
        }
    }

    /// Maximum nesting depth.
    pub fn depth(&self) -> usize {
        match self {
            SeqExpr::Children | SeqExpr::Descendants => 1,
            SeqExpr::Filter(s, p) => 1 + s.depth().max(p.depth()),
        }
    }
}

/// A 128-bit structural fingerprint of an expression: two independent 64-bit
/// hash streams over a canonical, unambiguous encoding of the tree.
///
/// Two expressions have equal fingerprints iff they are structurally equal
/// (up to 2⁻¹²⁸-grade collisions; callers that cannot tolerate even that
/// compare the trees on fingerprint equality, which is what the GP memo
/// does). Symbols are hashed by their **string content**, never by interner
/// index, so fingerprints are stable across processes, interning orders and
/// checkpoint resumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// The low 64 bits — a convenient single-word structural hash.
    pub fn low64(self) -> u64 {
        self.0 as u64
    }
}

/// Two decorrelated 64-bit streams: FNV-1a and a murmur-style
/// multiply-rotate. Collisions would have to occur in both simultaneously.
struct FpHasher {
    a: u64,
    b: u64,
}

impl FpHasher {
    fn new() -> FpHasher {
        FpHasher {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn byte(&mut self, x: u8) {
        self.a = (self.a ^ u64::from(x)).wrapping_mul(0x100_0000_01b3);
        self.b = (self.b ^ u64::from(x))
            .wrapping_mul(0xff51_afd7_ed55_8ccd)
            .rotate_left(23);
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &x in bytes {
            self.byte(x);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn sym(&mut self, s: Symbol) {
        let name = s.as_str();
        self.u64(name.len() as u64);
        self.bytes(name.as_bytes());
    }

    fn finish(&self) -> Fingerprint {
        // Final avalanche so trailing bytes affect high bits of both lanes.
        let mut a = self.a;
        a ^= a >> 33;
        a = a.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        a ^= a >> 29;
        let mut b = self.b;
        b ^= b >> 31;
        b = b.wrapping_mul(0xff51_afd7_ed55_8ccd);
        b ^= b >> 33;
        Fingerprint((u128::from(a) << 64) | u128::from(b))
    }
}

fn hash_feature(h: &mut FpHasher, e: &FeatureExpr) {
    use FeatureExpr::*;
    match e {
        Const(c) => {
            h.byte(1);
            h.f64(*c);
        }
        GetAttr(a) => {
            h.byte(2);
            h.sym(*a);
        }
        Count(s) => {
            h.byte(3);
            hash_seq(h, s);
        }
        Sum(s, e) => {
            h.byte(4);
            hash_seq(h, s);
            hash_feature(h, e);
        }
        Max(s, e) => {
            h.byte(5);
            hash_seq(h, s);
            hash_feature(h, e);
        }
        Min(s, e) => {
            h.byte(6);
            hash_seq(h, s);
            hash_feature(h, e);
        }
        Avg(s, e) => {
            h.byte(7);
            hash_seq(h, s);
            hash_feature(h, e);
        }
        Arith(op, a, b) => {
            h.byte(8);
            h.byte(*op as u8);
            hash_feature(h, a);
            hash_feature(h, b);
        }
        Neg(a) => {
            h.byte(9);
            hash_feature(h, a);
        }
    }
}

fn hash_bool(h: &mut FpHasher, e: &BoolExpr) {
    use BoolExpr::*;
    match e {
        IsType(k) => {
            h.byte(20);
            h.sym(*k);
        }
        HasAttr(a) => {
            h.byte(21);
            h.sym(*a);
        }
        AttrEqEnum(a, v) => {
            h.byte(22);
            h.sym(*a);
            h.sym(*v);
        }
        AttrCmpNum(a, op, k) => {
            h.byte(23);
            h.sym(*a);
            h.byte(*op as u8);
            h.f64(*k);
        }
        Cmp(op, a, b) => {
            h.byte(24);
            h.byte(*op as u8);
            hash_feature(h, a);
            hash_feature(h, b);
        }
        ChildMatches(n, p) => {
            h.byte(25);
            h.u64(*n as u64);
            hash_bool(h, p);
        }
        Not(p) => {
            h.byte(26);
            hash_bool(h, p);
        }
        And(a, b) => {
            h.byte(27);
            hash_bool(h, a);
            hash_bool(h, b);
        }
        Or(a, b) => {
            h.byte(28);
            hash_bool(h, a);
            hash_bool(h, b);
        }
    }
}

fn hash_seq(h: &mut FpHasher, e: &SeqExpr) {
    match e {
        SeqExpr::Children => h.byte(40),
        SeqExpr::Descendants => h.byte(41),
        SeqExpr::Filter(s, p) => {
            h.byte(42);
            hash_seq(h, s);
            hash_bool(h, p);
        }
    }
}

impl FeatureExpr {
    /// Structural fingerprint of this expression (see [`Fingerprint`]).
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = FpHasher::new();
        hash_feature(&mut h, self);
        h.finish()
    }

    /// 64-bit structural hash — [`Fingerprint::low64`] of [`fingerprint`]
    /// (callers needing collision safety compare trees on hash equality).
    ///
    /// [`fingerprint`]: FeatureExpr::fingerprint
    pub fn structural_hash(&self) -> u64 {
        self.fingerprint().low64()
    }
}

impl BoolExpr {
    /// Structural fingerprint of this predicate (see [`Fingerprint`]).
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = FpHasher::new();
        hash_bool(&mut h, self);
        h.finish()
    }
}

impl SeqExpr {
    /// Structural fingerprint of this sequence (see [`Fingerprint`]).
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = FpHasher::new();
        hash_seq(&mut h, self);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FeatureExpr {
        // count(filter(//*, is-type(insn))) + 2
        FeatureExpr::Arith(
            ArithOp::Add,
            Box::new(FeatureExpr::Count(SeqExpr::Filter(
                Box::new(SeqExpr::Descendants),
                Box::new(BoolExpr::IsType(Symbol::intern("insn"))),
            ))),
            Box::new(FeatureExpr::Const(2.0)),
        )
    }

    #[test]
    fn size_counts_all_nodes() {
        // arith, count, filter, descendants, is-type, const = 6
        assert_eq!(sample().size(), 6);
    }

    #[test]
    fn depth_follows_longest_path() {
        // arith -> count -> filter -> {descendants | is-type}
        assert_eq!(sample().depth(), 4);
    }

    #[test]
    fn fingerprints_separate_structure() {
        let a = sample();
        let b = sample();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.structural_hash(), b.structural_hash());
        // Different constant.
        let c = FeatureExpr::Arith(
            ArithOp::Add,
            Box::new(FeatureExpr::Count(SeqExpr::Filter(
                Box::new(SeqExpr::Descendants),
                Box::new(BoolExpr::IsType(Symbol::intern("insn"))),
            ))),
            Box::new(FeatureExpr::Const(3.0)),
        );
        assert_ne!(a.fingerprint(), c.fingerprint());
        // Different operator, same operands.
        let d = FeatureExpr::Arith(
            ArithOp::Sub,
            Box::new(FeatureExpr::Const(1.0)),
            Box::new(FeatureExpr::Const(2.0)),
        );
        let e = FeatureExpr::Arith(
            ArithOp::Add,
            Box::new(FeatureExpr::Const(1.0)),
            Box::new(FeatureExpr::Const(2.0)),
        );
        assert_ne!(d.fingerprint(), e.fingerprint());
        // Symbols hash by content: distinct kinds differ.
        let f = BoolExpr::IsType(Symbol::intern("insn"));
        let g = BoolExpr::IsType(Symbol::intern("reg"));
        assert_ne!(f.fingerprint(), g.fingerprint());
        // Children vs descendants.
        assert_ne!(
            SeqExpr::Children.fingerprint(),
            SeqExpr::Descendants.fingerprint()
        );
    }

    #[test]
    fn cmp_op_semantics() {
        assert!(CmpOp::Le.apply(2.0, 2.0));
        assert!(!CmpOp::Lt.apply(2.0, 2.0));
        assert!(CmpOp::Ne.apply(1.0, 2.0));
        assert!(CmpOp::Ge.apply(3.0, 2.0));
    }
}
