//! Compilation of feature expressions to flat stack bytecode.
//!
//! The GP search evaluates each candidate feature over *every* exported loop
//! (the paper, §VI: fitness = evaluate over all loops + train a tree), so a
//! candidate is compiled **once** and the resulting [`Program`] is executed
//! once per loop by the VM in [`super::vm`]. Compilation is a single pass
//! over the AST; the bytecode preserves the interpreter's step-charging
//! order *exactly* (one unit charge at every AST-node entry, one unit per
//! sequence element), so `BudgetExceeded` decisions are identical for any
//! budget — see DESIGN.md §11 for the argument.
//!
//! Three extra pieces of compile-time analysis:
//!
//! - **Indexed counts**: `count(/*)`, `count(//*)` and
//!   `count(filter(/*|//*, p))` for a *pure* predicate `p` (any boolean
//!   combination of attribute/kind tests and child probes — no `Cmp`, whose
//!   operands may aggregate) compile to a single [`Op::CountIndexed`] that
//!   answers from the arena's postings lists (single atoms) or a tight
//!   arena scan (combinations) and bulk-charges the exact step total the
//!   interpreter would have charged.
//! - **Fused aggregates**: any aggregate whose filter predicates are all
//!   pure and whose body is a leaf (`Const`, `get-attr`, or an indexed
//!   `count`) compiles to a single [`Op::AggFused`] the VM runs as one
//!   tight arena loop — no per-element bytecode dispatch or frame traffic.
//! - **Common-subexpression numbering**: every aggregate evaluated at the
//!   *root* context is wrapped in [`Op::CacheBegin`]/[`Op::CacheEnd`] keyed
//!   by its structural [`Fingerprint`], so GP siblings sharing subtrees
//!   share per-loop results across the population (the cache itself lives
//!   in [`super::vm::EvalPool`]).

use super::ast::{ArithOp, BoolExpr, CmpOp, FeatureExpr, Fingerprint, SeqExpr};
use super::eval::bool_symbols;
use crate::ir::Symbol;

/// Compile-time classification of an `@flag == V` target so the VM compares
/// symbols, never strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BoolView {
    /// Target is neither `true` nor `false`: boolean attributes never match.
    NotBool,
    /// Target is the literal `true`.
    True,
    /// Target is the literal `false`.
    False,
}

impl BoolView {
    fn of(target: Symbol) -> BoolView {
        let (t, f) = bool_symbols();
        if target == t {
            BoolView::True
        } else if target == f {
            BoolView::False
        } else {
            BoolView::NotBool
        }
    }
}

/// One bytecode instruction. Stack discipline: numeric ops use the `f64`
/// stack, boolean ops the `bool` stack; every op that corresponds to an AST
/// node entry charges exactly one step (compound nodes via [`Op::Charge`]).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Op {
    /// Charge one step (entry of an `Arith`/`Neg`/`Cmp`/`Not`/`And`/`Or`
    /// node whose value is produced by a later op).
    Charge,
    /// Charge 1; push a literal (non-finite literals raise `NonFinite`,
    /// as in the interpreter).
    PushConst(f64),
    /// Charge 1; push the context node's numeric attribute view (missing or
    /// enum attributes push `0.0`).
    LoadAttr(Symbol),
    /// Pop `b`, `a`; push `a op b` (protected division); non-finite raises.
    Arith(ArithOp),
    /// Pop `v`; push `-v`.
    Neg,
    /// Charge 1; push whether the context node's kind equals the symbol.
    IsType(Symbol),
    /// Charge 1; push whether the context node carries the attribute.
    HasAttr(Symbol),
    /// Charge 1; push the `@a == V` test (enum by symbol, bool via the
    /// precomputed [`BoolView`]).
    AttrEqEnum(Symbol, Symbol, BoolView),
    /// Charge 1; push the `@a OP k` numeric test (false when missing or
    /// non-numeric).
    AttrCmpNum(Symbol, CmpOp, f64),
    /// Pop two numbers; push the comparison (the `Cmp` node's entry charge
    /// is a preceding [`Op::Charge`]).
    CmpNum(CmpOp),
    /// Pop a bool; push its negation.
    NotBool,
    /// Pop a bool; if `false`, push `false` and jump (short-circuit `&&`).
    AndJump(u32),
    /// Pop a bool; if `true`, push `true` and jump (short-circuit `||`).
    OrJump(u32),
    /// Charge 1; `/[idx][p]`: if the context node has an `idx`-th child,
    /// save the context and descend into it; otherwise push `false` and
    /// jump to `skip`.
    ChildCtx {
        /// Child position.
        idx: u32,
        /// Jump target when the child is missing (past the matching
        /// [`Op::PopCtx`]).
        skip: u32,
    },
    /// Restore the context saved by the matching [`Op::ChildCtx`].
    PopCtx,
    /// Charge 1 (the aggregate node's entry); push an aggregate frame and
    /// start iterating (operand indexes [`Program::aggs`]).
    AggStart(u32),
    /// Pop a predicate result; `true` falls through to the next predicate
    /// or the body, `false` advances the top frame to the next element.
    PredGate,
    /// Accumulate one element (pops the body value except for `count`) and
    /// advance the top frame.
    AggAccum,
    /// Indexed count with bulk charging (operand indexes
    /// [`Program::counts`]).
    CountIndexed(u32),
    /// Fused aggregate: pure predicates + leaf body run as one tight arena
    /// loop with bulk charging (operand indexes [`Program::fused`]).
    AggFused(u32),
    /// Loop-nest plan: a whole (possibly nested) aggregate runs as
    /// recursive arena loops with bulk step charging — no per-element
    /// bytecode dispatch (operand indexes [`Program::plans`]).
    AggPlan(u32),
    /// Superinstruction: `IsType` fused with its `PredGate` (a single-atom
    /// predicate on the frame path contains no jumps, so the in-place
    /// rewrite is safe).
    IsTypeGate(Symbol),
    /// Superinstruction: `HasAttr` + `PredGate`.
    HasAttrGate(Symbol),
    /// Superinstruction: `AttrEqEnum` + `PredGate`.
    AttrEqEnumGate(Symbol, Symbol, BoolView),
    /// Superinstruction: `AttrCmpNum` + `PredGate`.
    AttrCmpNumGate(Symbol, CmpOp, f64),
    /// Superinstruction: `PushConst` + `AggAccum` (literal aggregate body).
    ConstAccum(f64),
    /// Superinstruction: `LoadAttr` + `AggAccum` (attribute aggregate body).
    AttrAccum(Symbol),
    /// CSE cache probe (operand indexes [`Program::keys`]); on hit, charge
    /// the recorded steps and short-circuit to `end`.
    CacheBegin {
        /// Index into [`Program::keys`].
        key_idx: u32,
        /// Jump target on a cache hit (past the matching [`Op::CacheEnd`]).
        end: u32,
    },
    /// Record the enclosing region's `(steps, value)` into the cache.
    CacheEnd,
    /// End of program; the feature value is the top of the numeric stack.
    Return,
}

/// Aggregate discriminator shared by compiler and VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AggKind {
    /// `count(s)`
    Count,
    /// `sum(s, e)`
    Sum,
    /// `max(s, e)`
    Max,
    /// `min(s, e)`
    Min,
    /// `avg(s, e)`
    Avg,
}

/// Static description of one general aggregate site.
#[derive(Debug, Clone)]
pub(crate) struct AggMeta {
    pub kind: AggKind,
    /// `true` for `/*` (children), `false` for `//*` (descendants).
    pub children_base: bool,
    /// First op of the per-element code (predicates, body, `AggAccum`).
    pub body_pc: u32,
    /// First op after the aggregate (the `CacheEnd` when cached).
    pub end_pc: u32,
}

/// A pure (fixed-cost, side-effect-free) predicate atom usable by the
/// indexed-count fast path.
#[derive(Debug, Clone, Copy)]
pub(crate) enum PureAtom {
    IsType(Symbol),
    HasAttr(Symbol),
    AttrEq(Symbol, Symbol, BoolView),
    AttrCmp(Symbol, CmpOp, f64),
}

/// A pure predicate: side-effect-free, cannot raise `NonFinite`, and its
/// step cost is computable while scanning the arena.
#[derive(Debug, Clone)]
pub(crate) enum PurePred {
    /// A single atom under zero or more negations — answerable in closed
    /// form from the arena's postings lists.
    Atom {
        atom: PureAtom,
        /// Parity of the `Not` layers.
        negated: bool,
        /// Exact interpreter step cost of evaluating the predicate once
        /// (1 for the atom plus 1 per `Not` layer).
        cost: u64,
    },
    /// A boolean combination of atoms and fixed-position child probes —
    /// answered by a tight arena scan that accumulates the interpreter's
    /// exact short-circuit step cost per element. When every atom is an
    /// `is-type` test of the element itself, `kinds` carries a verdict
    /// table precomputed at compile time and the scan needs no per-element
    /// predicate evaluation at all.
    Tree {
        expr: PureExpr,
        kinds: Option<KindTable>,
    },
}

/// Per-kind verdict table for a kinds-only predicate tree: verdict and
/// exact short-circuit step cost are pure functions of the element's kind,
/// and every kind the tree does not mention follows the identical
/// all-atoms-false trace, collapsed into `default`.
#[derive(Debug, Clone)]
pub(crate) struct KindTable {
    /// `(kind, verdict, exact step cost)` for each kind the tree mentions.
    pub entries: Vec<(Symbol, bool, u64)>,
    /// Verdict and cost for every other kind.
    pub default: (bool, u64),
}

/// A pure predicate tree. Every node costs exactly one interpreter step at
/// entry; `&&`/`||` short-circuit and a missing child probe skips its inner
/// predicate, so the cost is data-dependent but exactly reproducible.
#[derive(Debug, Clone)]
pub(crate) enum PureExpr {
    Atom(PureAtom),
    Not(Box<PureExpr>),
    And(Box<PureExpr>, Box<PureExpr>),
    Or(Box<PureExpr>, Box<PureExpr>),
    /// `/[idx][p]`: probe the `idx`-th child; `false` when missing.
    Child(u32, Box<PureExpr>),
}

/// Static description of one indexed-count site.
#[derive(Debug, Clone)]
pub(crate) struct CountMeta {
    /// `true` for `/*`, `false` for `//*`.
    pub children_base: bool,
    /// The filter predicate, if any.
    pub pred: Option<PurePred>,
}

/// Static description of one fused aggregate: every filter predicate is
/// pure and the body is a leaf, so the VM runs the whole aggregate as one
/// tight arena loop with bulk step charging — no per-element dispatch.
#[derive(Debug, Clone)]
pub(crate) struct FusedAggMeta {
    pub kind: AggKind,
    /// `true` for `/*`, `false` for `//*`.
    pub children_base: bool,
    /// Filter predicates in interpreter evaluation order (innermost
    /// first); an element is accumulated when all hold, and evaluation
    /// (with its step charges) stops at the first that fails.
    pub preds: Vec<PurePred>,
    pub body: FusedBody,
}

/// Leaf bodies a fused aggregate can evaluate without bytecode.
#[derive(Debug, Clone)]
pub(crate) enum FusedBody {
    /// `count` aggregates have no body.
    None,
    /// A literal (cost 1 per element).
    Const(f64),
    /// `get-attr(@a)` at the element (cost 1 per element).
    Attr(Symbol),
    /// A nested indexed `count` evaluated at the element.
    Count(CountMeta),
}

/// Static description of one loop-nest plan: an aggregate of *any*
/// predicate and body shape (up to [`MAX_PLAN_AGG_DEPTH`] nested aggregate
/// levels) lowered to recursive arena loops the VM evaluates without
/// bytecode dispatch. Pure predicates keep the fused tiers (closed-form
/// postings counts, kind tables, short-circuit scans); dynamic predicates
/// and bodies become small trees walked per element with the interpreter's
/// exact step accounting.
#[derive(Debug, Clone)]
pub(crate) struct PlanAgg {
    pub kind: AggKind,
    /// `true` for `/*` (children), `false` for `//*` (descendants).
    pub children_base: bool,
    /// Filter predicates in interpreter evaluation order (innermost
    /// first); an element is accumulated when all hold, and evaluation
    /// (with its step charges) stops at the first that fails.
    pub preds: Vec<PlanPred>,
    /// Aggregate body; `None` for `count`.
    pub body: Option<PlanExpr>,
    /// When the base is `//*` and the first (pure) predicate admits one,
    /// the outer loop iterates the merged cover postings slices instead of
    /// scanning the whole subtree span; runs of skipped elements outside
    /// the cover are bulk-charged their constant false-trace cost.
    pub cover: Option<PredCover>,
    /// When the aggregate has no predicates and a leaf body, the whole
    /// level collapses to one bulk-charged arena loop (closed form where
    /// the accumulation allows).
    pub leaf: Option<LeafArg>,
}

/// One postings list of a predicate cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CoverSrc {
    /// The kind postings of this symbol.
    Kind(Symbol),
    /// The attribute postings of this symbol.
    Attr(Symbol),
}

/// Cover-driven outer loop of a [`PlanAgg`] over `//*`: every element its
/// first predicate can match carries one of the cover symbols (as kind or
/// attribute), and every element outside the cover follows the identical
/// all-atoms-false short-circuit trace with constant cost. The outer loop
/// merges the cover postings slices and bulk-charges the skipped runs.
#[derive(Debug, Clone)]
pub(crate) struct PredCover {
    /// Postings lists to merge (at most [`MAX_COVER_SRCS`], deduplicated).
    pub srcs: Vec<CoverSrc>,
    /// Exact interpreter step cost of one element outside the cover: the
    /// `for_each` charge plus the predicate's constant false-trace cost.
    pub skip_per: u64,
}

/// A leaf operand evaluated flat at an element: a literal, an attribute
/// read, or an indexed count of the element's children/descendants. Used
/// as the body of a [`PlanAgg`] leaf level and as a `LeafCmp` operand.
#[derive(Debug, Clone, Copy)]
pub(crate) enum LeafArg {
    Const(f64),
    Attr(Symbol),
    /// `count(/*)` at the element (charges 1 + child count).
    ChildCount,
    /// `count(//*)` at the element (charges 1 + descendant count).
    DescCount,
}

/// One filter predicate of a [`PlanAgg`].
#[derive(Debug, Clone)]
pub(crate) enum PlanPred {
    /// Pure — fixed-cost and error-free; reuses the fused-tier evaluators.
    Pure(PurePred),
    /// Contains `Cmp`, whose operands may aggregate and raise.
    Dyn(PlanBool),
}

/// A boolean predicate tree a plan evaluates per element. Every node
/// charges one step at entry; `&&`/`||` short-circuit and a missing child
/// probe skips its inner predicate, exactly like the interpreter.
#[derive(Debug, Clone)]
pub(crate) enum PlanBool {
    Atom(PureAtom),
    Cmp(CmpOp, Box<PlanExpr>, Box<PlanExpr>),
    /// `Cmp` whose operands are both leaves — evaluated flat, without
    /// tree recursion (the dominant dynamic-predicate shape).
    LeafCmp(CmpOp, LeafArg, LeafArg),
    Not(Box<PlanBool>),
    And(Box<PlanBool>, Box<PlanBool>),
    Or(Box<PlanBool>, Box<PlanBool>),
    /// `/[idx][p]`: probe the `idx`-th child; `false` when missing.
    Child(u32, Box<PlanBool>),
}

/// A numeric expression tree a plan evaluates per element. Each node
/// charges one step at entry and raises `NonFinite` on a non-finite value,
/// exactly like the interpreter.
#[derive(Debug, Clone)]
pub(crate) enum PlanExpr {
    Const(f64),
    Attr(Symbol),
    /// An indexed count evaluated at the current element (closed-form
    /// postings totals or a range-restricted scan, bulk-charged).
    Count(CountMeta),
    /// A nested aggregate — a further loop level of the same plan.
    Agg(Box<PlanAgg>),
    /// A predicate-free aggregate with a leaf body — one bulk-charged
    /// arena loop, closed form where the accumulation allows.
    LeafAgg {
        kind: AggKind,
        /// `true` for `/*`, `false` for `//*`.
        children_base: bool,
        body: LeafArg,
    },
    Arith(ArithOp, Box<PlanExpr>, Box<PlanExpr>),
    Neg(Box<PlanExpr>),
}

/// A compiled feature: flat bytecode plus side tables. Compile once per
/// candidate, execute once per loop.
#[derive(Debug, Clone)]
pub struct Program {
    pub(crate) ops: Vec<Op>,
    pub(crate) aggs: Vec<AggMeta>,
    pub(crate) counts: Vec<CountMeta>,
    pub(crate) fused: Vec<FusedAggMeta>,
    pub(crate) plans: Vec<PlanAgg>,
    /// Structural CSE keys for `CacheBegin` sites.
    pub(crate) keys: Vec<Fingerprint>,
}

/// Which execution tier a compiled program lands on (worst tier present
/// wins). Surfaced through `PoolStats` so the fallback rate is observable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramPath {
    /// Straight-line bytecode: leaves, indexed counts, fused aggregates.
    Fast,
    /// Contains at least one loop-nest plan (and no frame aggregates).
    LoopNest,
    /// Contains at least one frame-path aggregate (per-element dispatch);
    /// only aggregates nested deeper than [`MAX_PLAN_AGG_DEPTH`] land here.
    Frame,
}

impl Program {
    /// Compiles a feature expression. Pure function of the expression.
    pub fn compile(expr: &FeatureExpr) -> Program {
        let mut c = Compiler {
            prog: Program {
                ops: Vec::new(),
                aggs: Vec::new(),
                counts: Vec::new(),
                fused: Vec::new(),
                plans: Vec::new(),
                keys: Vec::new(),
            },
        };
        c.num(expr, true);
        c.prog.ops.push(Op::Return);
        c.prog
    }

    /// Number of bytecode ops (diagnostics / tests).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the program is empty (never after `compile`).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of CSE cache sites (root-context aggregates).
    pub fn cache_sites(&self) -> usize {
        self.keys.len()
    }

    /// Execution tier of this program (worst tier present wins).
    pub fn path(&self) -> ProgramPath {
        if !self.aggs.is_empty() {
            ProgramPath::Frame
        } else if !self.plans.is_empty() {
            ProgramPath::LoopNest
        } else {
            ProgramPath::Fast
        }
    }
}

struct Compiler {
    prog: Program,
}

impl Compiler {
    fn pc(&self) -> u32 {
        self.prog.ops.len() as u32
    }

    /// Compiles a numeric expression. `root` is true while the context node
    /// is the evaluation root — only root-context aggregates are CSE-cached
    /// (aggregate bodies and filter predicates switch context to sequence
    /// elements, so cache regions never nest).
    fn num(&mut self, e: &FeatureExpr, root: bool) {
        use FeatureExpr::*;
        match e {
            Const(c) => self.prog.ops.push(Op::PushConst(*c)),
            GetAttr(a) => self.prog.ops.push(Op::LoadAttr(*a)),
            Arith(op, a, b) => {
                self.prog.ops.push(Op::Charge);
                self.num(a, root);
                self.num(b, root);
                self.prog.ops.push(Op::Arith(*op));
            }
            Neg(a) => {
                self.prog.ops.push(Op::Charge);
                self.num(a, root);
                self.prog.ops.push(Op::Neg);
            }
            Count(seq) => {
                if let Some(meta) = indexed_count(seq) {
                    let idx = self.prog.counts.len() as u32;
                    self.prog.counts.push(meta);
                    self.prog.ops.push(Op::CountIndexed(idx));
                } else {
                    self.aggregate(AggKind::Count, seq, None, e, root);
                }
            }
            Sum(seq, body) => self.aggregate(AggKind::Sum, seq, Some(body), e, root),
            Max(seq, body) => self.aggregate(AggKind::Max, seq, Some(body), e, root),
            Min(seq, body) => self.aggregate(AggKind::Min, seq, Some(body), e, root),
            Avg(seq, body) => self.aggregate(AggKind::Avg, seq, Some(body), e, root),
        }
    }

    fn aggregate(
        &mut self,
        kind: AggKind,
        seq: &SeqExpr,
        body: Option<&FeatureExpr>,
        whole: &FeatureExpr,
        root: bool,
    ) {
        let (preds, children_base) = split_filters(seq);

        let cache_at = root.then(|| {
            let key_idx = self.prog.keys.len() as u32;
            self.prog.keys.push(whole.fingerprint());
            let at = self.pc() as usize;
            self.prog.ops.push(Op::CacheBegin { key_idx, end: 0 });
            at
        });

        // Tier order: a plan with a leaf level or a cover-driven outer loop
        // beats the fused per-element scan, the fused scan beats a general
        // plan, and the frame path is the residual fallback.
        let mut plan = plan_agg(kind, children_base, &preds, body, 0);
        if plan
            .as_ref()
            .is_some_and(|p| p.leaf.is_some() || p.cover.is_some())
        {
            let idx = self.prog.plans.len() as u32;
            self.prog
                .plans
                .push(plan.take().unwrap_or_else(|| unreachable!()));
            self.prog.ops.push(Op::AggPlan(idx));
            self.close_cache(cache_at);
            return;
        }

        if let Some(fused) = fuse(kind, children_base, &preds, body) {
            let idx = self.prog.fused.len() as u32;
            self.prog.fused.push(fused);
            self.prog.ops.push(Op::AggFused(idx));
            self.close_cache(cache_at);
            return;
        }

        if let Some(plan) = plan {
            let idx = self.prog.plans.len() as u32;
            self.prog.plans.push(plan);
            self.prog.ops.push(Op::AggPlan(idx));
            self.close_cache(cache_at);
            return;
        }

        let agg_idx = self.prog.aggs.len() as u32;
        self.prog.aggs.push(AggMeta {
            kind,
            children_base,
            body_pc: 0,
            end_pc: 0,
        });
        self.prog.ops.push(Op::AggStart(agg_idx));
        let body_pc = self.pc();
        for p in preds {
            let before = self.pc() as usize;
            self.boolean(p);
            // A one-op predicate contains no jumps in or out, so the atom
            // can be rewritten in place into its PredGate-fused form.
            if !(self.pc() as usize == before + 1 && self.fuse_gate(before)) {
                self.prog.ops.push(Op::PredGate);
            }
        }
        match body {
            Some(b) => {
                let before = self.pc() as usize;
                self.num(b, false);
                if !(self.pc() as usize == before + 1 && self.fuse_accum(before)) {
                    self.prog.ops.push(Op::AggAccum);
                }
            }
            None => self.prog.ops.push(Op::AggAccum),
        }
        // When cached, the frame finalizes onto the CacheEnd op.
        let end_pc = self.pc();
        self.close_cache(cache_at);
        let meta = &mut self.prog.aggs[agg_idx as usize];
        meta.body_pc = body_pc;
        meta.end_pc = end_pc;
    }

    /// Closes the CSE region opened by [`Self::aggregate`], if any: emits
    /// the `CacheEnd` and patches the matching `CacheBegin`'s hit target.
    fn close_cache(&mut self, cache_at: Option<usize>) {
        if let Some(at) = cache_at {
            self.prog.ops.push(Op::CacheEnd);
            let after = self.pc();
            let Op::CacheBegin { end, .. } = &mut self.prog.ops[at] else {
                unreachable!("cache_at points at CacheBegin")
            };
            *end = after;
        }
    }

    /// Superinstruction rewrite: a single-op predicate atom at `at` absorbs
    /// its `PredGate`. Positions don't shift, so no jump target breaks.
    fn fuse_gate(&mut self, at: usize) -> bool {
        let rep = match self.prog.ops[at] {
            Op::IsType(k) => Op::IsTypeGate(k),
            Op::HasAttr(a) => Op::HasAttrGate(a),
            Op::AttrEqEnum(a, v, w) => Op::AttrEqEnumGate(a, v, w),
            Op::AttrCmpNum(a, op, k) => Op::AttrCmpNumGate(a, op, k),
            _ => return false,
        };
        self.prog.ops[at] = rep;
        true
    }

    /// Superinstruction rewrite: a single-op leaf body at `at` absorbs its
    /// `AggAccum`.
    fn fuse_accum(&mut self, at: usize) -> bool {
        let rep = match self.prog.ops[at] {
            Op::PushConst(c) => Op::ConstAccum(c),
            Op::LoadAttr(a) => Op::AttrAccum(a),
            _ => return false,
        };
        self.prog.ops[at] = rep;
        true
    }

    fn boolean(&mut self, e: &BoolExpr) {
        use BoolExpr::*;
        match e {
            IsType(k) => self.prog.ops.push(Op::IsType(*k)),
            HasAttr(a) => self.prog.ops.push(Op::HasAttr(*a)),
            AttrEqEnum(a, v) => self.prog.ops.push(Op::AttrEqEnum(*a, *v, BoolView::of(*v))),
            AttrCmpNum(a, op, k) => self.prog.ops.push(Op::AttrCmpNum(*a, *op, *k)),
            Cmp(op, a, b) => {
                self.prog.ops.push(Op::Charge);
                self.num(a, false);
                self.num(b, false);
                self.prog.ops.push(Op::CmpNum(*op));
            }
            ChildMatches(idx, p) => {
                let at = self.pc() as usize;
                self.prog.ops.push(Op::ChildCtx {
                    idx: *idx as u32,
                    skip: 0,
                });
                self.boolean(p);
                self.prog.ops.push(Op::PopCtx);
                let after = self.pc();
                let Op::ChildCtx { skip, .. } = &mut self.prog.ops[at] else {
                    unreachable!("at points at ChildCtx")
                };
                *skip = after;
            }
            Not(p) => {
                self.prog.ops.push(Op::Charge);
                self.boolean(p);
                self.prog.ops.push(Op::NotBool);
            }
            And(a, b) => {
                self.prog.ops.push(Op::Charge);
                self.boolean(a);
                let at = self.pc() as usize;
                self.prog.ops.push(Op::AndJump(0));
                self.boolean(b);
                let after = self.pc();
                let Op::AndJump(t) = &mut self.prog.ops[at] else {
                    unreachable!("at points at AndJump")
                };
                *t = after;
            }
            Or(a, b) => {
                self.prog.ops.push(Op::Charge);
                self.boolean(a);
                let at = self.pc() as usize;
                self.prog.ops.push(Op::OrJump(0));
                self.boolean(b);
                let after = self.pc();
                let Op::OrJump(t) = &mut self.prog.ops[at] else {
                    unreachable!("at points at OrJump")
                };
                *t = after;
            }
        }
    }
}

/// Attempts to fuse an aggregate: every filter predicate must be pure and
/// the body a leaf. Anything else keeps the general frame path.
fn fuse(
    kind: AggKind,
    children_base: bool,
    preds: &[&BoolExpr],
    body: Option<&FeatureExpr>,
) -> Option<FusedAggMeta> {
    let preds: Vec<PurePred> = preds.iter().map(|p| pure_pred(p)).collect::<Option<_>>()?;
    let body = match body {
        None => FusedBody::None,
        Some(FeatureExpr::Const(c)) => FusedBody::Const(*c),
        Some(FeatureExpr::GetAttr(a)) => FusedBody::Attr(*a),
        Some(FeatureExpr::Count(seq)) => FusedBody::Count(indexed_count(seq)?),
        Some(_) => return None,
    };
    Some(FusedAggMeta {
        kind,
        children_base,
        preds,
        body,
    })
}

/// Unwraps a filter chain into its predicates (interpreter evaluation
/// order: innermost first) and whether the base sequence is `/*`.
fn split_filters(seq: &SeqExpr) -> (Vec<&BoolExpr>, bool) {
    let mut preds: Vec<&BoolExpr> = Vec::new();
    let mut base = seq;
    while let SeqExpr::Filter(inner, p) = base {
        preds.push(p);
        base = inner;
    }
    preds.reverse();
    (preds, matches!(base, SeqExpr::Children))
}

/// Aggregate-nesting bound for loop-nest plans. The planner covers the
/// whole feature language, so without a bound the frame path would be dead
/// code; beyond this depth one evaluation costs at least `n^DEPTH` steps
/// and is budget-bound anyway, so the outer levels stay on frames and the
/// inner levels re-enter the planner.
const MAX_PLAN_AGG_DEPTH: usize = 8;

/// Attempts to lower an aggregate to a loop-nest plan. `depth` counts
/// enclosing aggregate levels of the same plan; total by construction —
/// the only failure is exceeding [`MAX_PLAN_AGG_DEPTH`].
fn plan_agg(
    kind: AggKind,
    children_base: bool,
    preds: &[&BoolExpr],
    body: Option<&FeatureExpr>,
    depth: usize,
) -> Option<PlanAgg> {
    if depth >= MAX_PLAN_AGG_DEPTH {
        return None;
    }
    let preds: Vec<PlanPred> = preds
        .iter()
        .map(|p| plan_pred(p, depth))
        .collect::<Option<_>>()?;
    let orig_body = body;
    let body = match body {
        None => None,
        Some(b) => Some(plan_expr(b, depth)?),
    };
    let cover = if children_base {
        None
    } else {
        pred_cover(&preds)
    };
    let leaf = if preds.is_empty() && !matches!(kind, AggKind::Count) {
        orig_body.and_then(leaf_arg)
    } else {
        None
    };
    Some(PlanAgg {
        kind,
        children_base,
        preds,
        body,
        cover,
        leaf,
    })
}

/// Upper bound on postings lists merged by one cover scan.
const MAX_COVER_SRCS: usize = 4;

/// The postings list containing every element a (positive) atom can match.
fn cover_of_atom(a: &PureAtom) -> CoverSrc {
    match a {
        PureAtom::IsType(k) => CoverSrc::Kind(*k),
        PureAtom::HasAttr(s) | PureAtom::AttrEq(s, ..) | PureAtom::AttrCmp(s, ..) => {
            CoverSrc::Attr(*s)
        }
    }
}

/// Collects a cover for a pure tree and returns the constant step cost of
/// its all-atoms-false short-circuit trace, or `None` when no cover exists
/// (negation or child probes — matches then escape any postings union).
///
/// For `a && b` only `a`'s cover is needed: a match requires `a` to hold,
/// and outside `cover(a)` the trace stops after `a`'s false path. For
/// `a || b` both covers and both false paths combine.
fn cover_of_tree(e: &PureExpr, srcs: &mut Vec<CoverSrc>) -> Option<u64> {
    match e {
        PureExpr::Atom(a) => {
            let s = cover_of_atom(a);
            if !srcs.contains(&s) {
                srcs.push(s);
            }
            Some(1)
        }
        PureExpr::And(a, _) => Some(1 + cover_of_tree(a, srcs)?),
        PureExpr::Or(a, b) => {
            let fa = cover_of_tree(a, srcs)?;
            let fb = cover_of_tree(b, srcs)?;
            Some(1 + fa + fb)
        }
        PureExpr::Not(_) | PureExpr::Child(..) => None,
    }
}

/// Builds the cover for a plan's first predicate, when it is pure and
/// admits one.
fn pred_cover(preds: &[PlanPred]) -> Option<PredCover> {
    let Some(PlanPred::Pure(pp)) = preds.first() else {
        return None;
    };
    match pp {
        PurePred::Atom {
            atom,
            negated: false,
            cost,
        } => Some(PredCover {
            srcs: vec![cover_of_atom(atom)],
            skip_per: 1 + cost,
        }),
        PurePred::Atom { .. } => None,
        PurePred::Tree { expr, .. } => {
            let mut srcs = Vec::new();
            let false_cost = cover_of_tree(expr, &mut srcs)?;
            if srcs.len() > MAX_COVER_SRCS {
                return None;
            }
            Some(PredCover {
                srcs,
                skip_per: 1 + false_cost,
            })
        }
    }
}

/// Recognizes leaf operands (see [`LeafArg`]).
fn leaf_arg(e: &FeatureExpr) -> Option<LeafArg> {
    match e {
        FeatureExpr::Const(c) => Some(LeafArg::Const(*c)),
        FeatureExpr::GetAttr(a) => Some(LeafArg::Attr(*a)),
        FeatureExpr::Count(seq) => match indexed_count(seq)? {
            CountMeta {
                children_base: true,
                pred: None,
            } => Some(LeafArg::ChildCount),
            CountMeta {
                children_base: false,
                pred: None,
            } => Some(LeafArg::DescCount),
            _ => None,
        },
        _ => None,
    }
}

fn plan_pred(p: &BoolExpr, depth: usize) -> Option<PlanPred> {
    if let Some(pure) = pure_pred(p) {
        return Some(PlanPred::Pure(pure));
    }
    Some(PlanPred::Dyn(plan_bool(p, depth)?))
}

fn plan_bool(p: &BoolExpr, depth: usize) -> Option<PlanBool> {
    if let Some(atom) = pure_atom(p) {
        return Some(PlanBool::Atom(atom));
    }
    match p {
        BoolExpr::Cmp(op, a, b) => {
            if let (Some(x), Some(y)) = (leaf_arg(a), leaf_arg(b)) {
                return Some(PlanBool::LeafCmp(*op, x, y));
            }
            Some(PlanBool::Cmp(
                *op,
                Box::new(plan_expr(a, depth)?),
                Box::new(plan_expr(b, depth)?),
            ))
        }
        BoolExpr::ChildMatches(idx, inner) => Some(PlanBool::Child(
            *idx as u32,
            Box::new(plan_bool(inner, depth)?),
        )),
        BoolExpr::Not(inner) => Some(PlanBool::Not(Box::new(plan_bool(inner, depth)?))),
        BoolExpr::And(a, b) => Some(PlanBool::And(
            Box::new(plan_bool(a, depth)?),
            Box::new(plan_bool(b, depth)?),
        )),
        BoolExpr::Or(a, b) => Some(PlanBool::Or(
            Box::new(plan_bool(a, depth)?),
            Box::new(plan_bool(b, depth)?),
        )),
        _ => unreachable!("atoms are handled by pure_atom above"),
    }
}

fn plan_expr(e: &FeatureExpr, depth: usize) -> Option<PlanExpr> {
    use FeatureExpr::*;
    match e {
        Const(c) => Some(PlanExpr::Const(*c)),
        GetAttr(a) => Some(PlanExpr::Attr(*a)),
        Arith(op, a, b) => Some(PlanExpr::Arith(
            *op,
            Box::new(plan_expr(a, depth)?),
            Box::new(plan_expr(b, depth)?),
        )),
        Neg(a) => Some(PlanExpr::Neg(Box::new(plan_expr(a, depth)?))),
        Count(seq) => {
            if let Some(meta) = indexed_count(seq) {
                return Some(PlanExpr::Count(meta));
            }
            plan_nested(AggKind::Count, seq, None, depth)
        }
        Sum(seq, b) => plan_nested(AggKind::Sum, seq, Some(b), depth),
        Max(seq, b) => plan_nested(AggKind::Max, seq, Some(b), depth),
        Min(seq, b) => plan_nested(AggKind::Min, seq, Some(b), depth),
        Avg(seq, b) => plan_nested(AggKind::Avg, seq, Some(b), depth),
    }
}

fn plan_nested(
    kind: AggKind,
    seq: &SeqExpr,
    body: Option<&FeatureExpr>,
    depth: usize,
) -> Option<PlanExpr> {
    let (preds, children_base) = split_filters(seq);
    let agg = plan_agg(kind, children_base, &preds, body, depth + 1)?;
    // A predicate-free leaf level needs no recursion at all.
    if let Some(body) = agg.leaf {
        return Some(PlanExpr::LeafAgg {
            kind,
            children_base,
            body,
        });
    }
    Some(PlanExpr::Agg(Box::new(agg)))
}

/// Recognizes `count` sequences answerable from the arena indices.
fn indexed_count(seq: &SeqExpr) -> Option<CountMeta> {
    match seq {
        SeqExpr::Children => Some(CountMeta {
            children_base: true,
            pred: None,
        }),
        SeqExpr::Descendants => Some(CountMeta {
            children_base: false,
            pred: None,
        }),
        SeqExpr::Filter(inner, p) => {
            let children_base = match **inner {
                SeqExpr::Children => true,
                SeqExpr::Descendants => false,
                SeqExpr::Filter(..) => return None,
            };
            let pred = pure_pred(p)?;
            Some(CountMeta {
                children_base,
                pred: Some(pred),
            })
        }
    }
}

/// Classifies a predicate as pure (arena-computable, error-free): a single
/// atom under negations (postings-list counting), or failing that, any
/// boolean combination of atoms and child probes (scan counting).
fn pure_pred(p: &BoolExpr) -> Option<PurePred> {
    let mut negs = 0u64;
    let mut q = p;
    while let BoolExpr::Not(inner) = q {
        negs += 1;
        q = inner;
    }
    if let Some(atom) = pure_atom(q) {
        return Some(PurePred::Atom {
            atom,
            negated: negs % 2 == 1,
            cost: 1 + negs,
        });
    }
    let expr = pure_tree(p)?;
    let kinds = kind_table(&expr);
    Some(PurePred::Tree { expr, kinds })
}

/// Builds the per-kind verdict table for a kinds-only tree; `None` when the
/// tree reads attributes or probes children (verdict then depends on more
/// than the kind).
fn kind_table(e: &PureExpr) -> Option<KindTable> {
    let mut kinds = Vec::new();
    if !collect_kinds(e, &mut kinds) {
        return None;
    }
    let entries = kinds
        .iter()
        .map(|&k| {
            let mut steps = 0u64;
            let verdict = eval_at_kind(e, Some(k), &mut steps);
            (k, verdict, steps)
        })
        .collect();
    let mut steps = 0u64;
    let verdict = eval_at_kind(e, None, &mut steps);
    Some(KindTable {
        entries,
        default: (verdict, steps),
    })
}

/// Collects the distinct kind symbols an `is-type`-only tree mentions;
/// false when any other atom (or a child probe) appears.
fn collect_kinds(e: &PureExpr, out: &mut Vec<Symbol>) -> bool {
    match e {
        PureExpr::Atom(PureAtom::IsType(k)) => {
            if !out.contains(k) {
                out.push(*k);
            }
            true
        }
        PureExpr::Atom(_) | PureExpr::Child(..) => false,
        PureExpr::Not(inner) => collect_kinds(inner, out),
        PureExpr::And(a, b) | PureExpr::Or(a, b) => collect_kinds(a, out) && collect_kinds(b, out),
    }
}

/// Evaluates a kinds-only tree for an element of the given kind (`None`
/// stands for any kind the tree does not mention), accumulating the exact
/// interpreter step cost: one per node entered, short-circuit honoured.
fn eval_at_kind(e: &PureExpr, kind: Option<Symbol>, steps: &mut u64) -> bool {
    *steps += 1;
    match e {
        PureExpr::Atom(PureAtom::IsType(k)) => Some(*k) == kind,
        PureExpr::Not(inner) => !eval_at_kind(inner, kind, steps),
        PureExpr::And(a, b) => eval_at_kind(a, kind, steps) && eval_at_kind(b, kind, steps),
        PureExpr::Or(a, b) => eval_at_kind(a, kind, steps) || eval_at_kind(b, kind, steps),
        PureExpr::Atom(_) | PureExpr::Child(..) => {
            unreachable!("kind table is only built for kinds-only trees")
        }
    }
}

fn pure_atom(q: &BoolExpr) -> Option<PureAtom> {
    match q {
        BoolExpr::IsType(k) => Some(PureAtom::IsType(*k)),
        BoolExpr::HasAttr(a) => Some(PureAtom::HasAttr(*a)),
        BoolExpr::AttrEqEnum(a, v) => Some(PureAtom::AttrEq(*a, *v, BoolView::of(*v))),
        BoolExpr::AttrCmpNum(a, op, k) => Some(PureAtom::AttrCmp(*a, *op, *k)),
        _ => None,
    }
}

/// Recognizes boolean combinations that stay pure all the way down. `Cmp`
/// is excluded: its numeric operands can aggregate or raise `NonFinite`.
fn pure_tree(p: &BoolExpr) -> Option<PureExpr> {
    if let Some(atom) = pure_atom(p) {
        return Some(PureExpr::Atom(atom));
    }
    match p {
        BoolExpr::Not(inner) => Some(PureExpr::Not(Box::new(pure_tree(inner)?))),
        BoolExpr::And(a, b) => Some(PureExpr::And(
            Box::new(pure_tree(a)?),
            Box::new(pure_tree(b)?),
        )),
        BoolExpr::Or(a, b) => Some(PureExpr::Or(
            Box::new(pure_tree(a)?),
            Box::new(pure_tree(b)?),
        )),
        BoolExpr::ChildMatches(idx, inner) => {
            Some(PureExpr::Child(*idx as u32, Box::new(pure_tree(inner)?)))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parse::parse_feature;

    fn compile(src: &str) -> Program {
        Program::compile(&parse_feature(src).unwrap())
    }

    #[test]
    fn simple_counts_use_indexed_path() {
        for src in [
            "count(/*)",
            "count(//*)",
            "count(filter(//*, is-type(insn)))",
            "count(filter(/*, has-attr(@x)))",
            "count(filter(//*, !has-attr(@x)))",
            "count(filter(//*, @mode==SI))",
            "count(filter(//*, @num-iter > 4))",
            "count(filter(//*, is-type(a) && is-type(b)))",
            "count(filter(//*, !(is-type(a) || is-type(b))))",
            "count(filter(//*, is-type(a) && /[0][is-type(b) || has-attr(@x)]))",
        ] {
            let p = compile(src);
            assert_eq!(p.counts.len(), 1, "{src} should compile to CountIndexed");
            assert!(p.aggs.is_empty(), "{src} should not need a frame");
        }
    }

    #[test]
    fn pure_leaf_aggregates_fuse() {
        // Shapes the leaf/cover plan tiers capture first: predicate-free
        // leaf bodies (closed forms) and covered atom predicates.
        for src in [
            "sum(//*, 1)",
            "sum(//*, get-attr(@weight))",
            "sum(//*, count(/*))",
            "min(//*, count(//*))",
            "count(filter(filter(//*, is-type(a)), is-type(b)))",
        ] {
            let p = compile(src);
            assert_eq!(p.plans.len(), 1, "{src} should take a leaf/cover plan");
            assert!(p.fused.is_empty(), "{src} should skip the fused tier");
            assert!(p.aggs.is_empty(), "{src} should not need a frame");
        }
        // No cover (children base / negated atom) but still pure: fused.
        for src in [
            "avg(filter(/*, is-type(basic-block)), count(filter(//*, is-type(insn))))",
            "max(filter(//*, !is-type(insn)), get-attr(@depth))",
        ] {
            let p = compile(src);
            assert_eq!(p.fused.len(), 1, "{src} should compile to AggFused");
            assert!(p.aggs.is_empty(), "{src} should not need a frame");
        }
    }

    #[test]
    fn complex_aggregates_lower_to_loop_nest_plans() {
        for src in [
            "count(filter(//*, count(/*) > 1))",
            "count(filter(//*, is-type(a) && count(/*) > 0))",
            "sum(//*, 1 + get-attr(@x))",
            "sum(//*, sum(//*, 1))",
            "sum(filter(//*, count(/*) > 0), 1)",
            "avg(filter(//*, is-type(a)), max(/*, get-attr(@x) * 2))",
        ] {
            let p = compile(src);
            assert_eq!(p.plans.len(), 1, "{src} should compile to one AggPlan");
            assert!(p.aggs.is_empty(), "{src} should not need a frame");
            assert_eq!(p.path(), ProgramPath::LoopNest);
        }
    }

    #[test]
    fn plan_cover_requires_non_negated_atoms_on_descendants() {
        let with = compile("sum(filter(//*, is-type(a)), count(/*) + 1)");
        assert_eq!(
            with.plans[0].cover.as_ref().map(|c| c.srcs.clone()),
            Some(vec![CoverSrc::Kind(Symbol::from("a"))])
        );
        let with = compile("sum(filter(//*, has-attr(@x)), count(/*) + 1)");
        assert_eq!(
            with.plans[0].cover.as_ref().map(|c| c.srcs.clone()),
            Some(vec![CoverSrc::Attr(Symbol::from("x"))])
        );
        // A disjunction covers with the union of both sides' postings.
        let with = compile("sum(filter(//*, is-type(a) || has-attr(@x)), count(/*) + 1)");
        assert_eq!(
            with.plans[0].cover.as_ref().map(|c| c.srcs.clone()),
            Some(vec![
                CoverSrc::Kind(Symbol::from("a")),
                CoverSrc::Attr(Symbol::from("x")),
            ])
        );
        // Negated atom, non-atom first pred, or a children base: scan.
        for src in [
            "sum(filter(//*, !is-type(a)), count(/*) + 1)",
            "sum(filter(//*, count(/*) > 0), count(/*) + 1)",
            "sum(filter(/*, is-type(a)), count(/*) + 1)",
        ] {
            let p = compile(src);
            assert!(p.plans[0].cover.is_none(), "{src} should scan");
        }
    }

    /// `levels` nested sums over `//*` with a `1` innermost body, e.g.
    /// `sum(//*, sum(//*, ... 1))`. With an `Arith` in every body the chain
    /// never fuses, so each level is a genuine plan/frame aggregate.
    fn deep_nest(levels: usize) -> FeatureExpr {
        let mut e = FeatureExpr::Const(1.0);
        for _ in 0..levels {
            e = FeatureExpr::Sum(
                SeqExpr::Descendants,
                Box::new(FeatureExpr::Arith(
                    ArithOp::Add,
                    Box::new(e),
                    Box::new(FeatureExpr::Const(0.0)),
                )),
            );
        }
        e
    }

    #[test]
    fn nests_beyond_plan_depth_bound_keep_the_frame_path() {
        let p = Program::compile(&deep_nest(MAX_PLAN_AGG_DEPTH));
        assert!(p.aggs.is_empty(), "a nest at the bound should fully plan");
        assert_eq!(p.path(), ProgramPath::LoopNest);

        let p = Program::compile(&deep_nest(MAX_PLAN_AGG_DEPTH + 2));
        assert!(
            !p.aggs.is_empty(),
            "a nest beyond the bound needs frame levels"
        );
        assert!(
            !p.plans.is_empty(),
            "the inner levels should re-enter the planner"
        );
        assert_eq!(p.path(), ProgramPath::Frame);
    }

    #[test]
    fn frame_path_fuses_single_op_preds_and_leaf_bodies() {
        // The deep body keeps the aggregate off the fuse/plan tiers; the
        // single-atom predicate and, below, the literal body must then be
        // rewritten into their superinstruction forms.
        let deep = deep_nest(MAX_PLAN_AGG_DEPTH + 2);
        let e = FeatureExpr::Sum(
            SeqExpr::Filter(
                Box::new(SeqExpr::Descendants),
                Box::new(BoolExpr::IsType(Symbol::intern("a"))),
            ),
            Box::new(deep.clone()),
        );
        let p = Program::compile(&e);
        assert!(
            p.ops.iter().any(|op| matches!(op, Op::IsTypeGate(_))),
            "single-atom predicate should fuse with its PredGate"
        );
        assert!(
            !p.ops.iter().any(|op| matches!(op, Op::PredGate)),
            "the fused predicate leaves no bare PredGate behind"
        );

        let e = FeatureExpr::Sum(
            SeqExpr::Filter(
                Box::new(SeqExpr::Descendants),
                Box::new(BoolExpr::Cmp(
                    CmpOp::Gt,
                    Box::new(deep),
                    Box::new(FeatureExpr::Const(0.0)),
                )),
            ),
            Box::new(FeatureExpr::Const(1.0)),
        );
        let p = Program::compile(&e);
        assert!(
            p.ops.iter().any(|op| matches!(op, Op::ConstAccum(_))),
            "literal body should fuse with its AggAccum"
        );
        assert!(
            p.ops.iter().any(|op| matches!(op, Op::PredGate)),
            "the multi-op predicate keeps its PredGate"
        );
    }

    #[test]
    fn root_aggregates_are_cache_sites() {
        // Two root-context aggregates, one nested (not cached).
        let p = compile("sum(//*, count(/*)) + max(//*, 1)");
        assert_eq!(p.cache_sites(), 2);
        // Indexed counts are not cache sites.
        let p = compile("count(//*) + 1");
        assert_eq!(p.cache_sites(), 0);
    }

    #[test]
    fn jump_targets_are_patched() {
        // Jumps are only emitted on the frame path, which an aggregate
        // reaches solely by exceeding the plan depth bound — so the
        // compound predicate is attached to a too-deep body.
        let pred = BoolExpr::And(
            Box::new(BoolExpr::IsType(Symbol::intern("a"))),
            Box::new(BoolExpr::Or(
                Box::new(BoolExpr::IsType(Symbol::intern("b"))),
                Box::new(BoolExpr::ChildMatches(
                    0,
                    Box::new(BoolExpr::IsType(Symbol::intern("c"))),
                )),
            )),
        );
        let e = FeatureExpr::Sum(
            SeqExpr::Filter(Box::new(SeqExpr::Descendants), Box::new(pred)),
            Box::new(deep_nest(MAX_PLAN_AGG_DEPTH + 2)),
        );
        let p = Program::compile(&e);
        assert!(p.fused.is_empty());
        assert!(
            p.ops
                .iter()
                .any(|op| matches!(op, Op::AndJump(_) | Op::OrJump(_))),
            "expected the frame path with short-circuit jumps"
        );
        for op in &p.ops {
            match op {
                Op::AndJump(t) | Op::OrJump(t) => assert_ne!(*t, 0),
                Op::ChildCtx { skip, .. } => assert_ne!(*skip, 0),
                Op::CacheBegin { end, .. } => assert_ne!(*end, 0),
                _ => {}
            }
        }
    }
}
