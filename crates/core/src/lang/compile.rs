//! Compilation of feature expressions to flat stack bytecode.
//!
//! The GP search evaluates each candidate feature over *every* exported loop
//! (the paper, §VI: fitness = evaluate over all loops + train a tree), so a
//! candidate is compiled **once** and the resulting [`Program`] is executed
//! once per loop by the VM in [`super::vm`]. Compilation is a single pass
//! over the AST; the bytecode preserves the interpreter's step-charging
//! order *exactly* (one unit charge at every AST-node entry, one unit per
//! sequence element), so `BudgetExceeded` decisions are identical for any
//! budget — see DESIGN.md §11 for the argument.
//!
//! Three extra pieces of compile-time analysis:
//!
//! - **Indexed counts**: `count(/*)`, `count(//*)` and
//!   `count(filter(/*|//*, p))` for a *pure* predicate `p` (any boolean
//!   combination of attribute/kind tests and child probes — no `Cmp`, whose
//!   operands may aggregate) compile to a single [`Op::CountIndexed`] that
//!   answers from the arena's postings lists (single atoms) or a tight
//!   arena scan (combinations) and bulk-charges the exact step total the
//!   interpreter would have charged.
//! - **Fused aggregates**: any aggregate whose filter predicates are all
//!   pure and whose body is a leaf (`Const`, `get-attr`, or an indexed
//!   `count`) compiles to a single [`Op::AggFused`] the VM runs as one
//!   tight arena loop — no per-element bytecode dispatch or frame traffic.
//! - **Common-subexpression numbering**: every aggregate evaluated at the
//!   *root* context is wrapped in [`Op::CacheBegin`]/[`Op::CacheEnd`] keyed
//!   by its structural [`Fingerprint`], so GP siblings sharing subtrees
//!   share per-loop results across the population (the cache itself lives
//!   in [`super::vm::EvalPool`]).

use super::ast::{ArithOp, BoolExpr, CmpOp, FeatureExpr, Fingerprint, SeqExpr};
use super::eval::bool_symbols;
use crate::ir::Symbol;

/// Compile-time classification of an `@flag == V` target so the VM compares
/// symbols, never strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BoolView {
    /// Target is neither `true` nor `false`: boolean attributes never match.
    NotBool,
    /// Target is the literal `true`.
    True,
    /// Target is the literal `false`.
    False,
}

impl BoolView {
    fn of(target: Symbol) -> BoolView {
        let (t, f) = bool_symbols();
        if target == t {
            BoolView::True
        } else if target == f {
            BoolView::False
        } else {
            BoolView::NotBool
        }
    }
}

/// One bytecode instruction. Stack discipline: numeric ops use the `f64`
/// stack, boolean ops the `bool` stack; every op that corresponds to an AST
/// node entry charges exactly one step (compound nodes via [`Op::Charge`]).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Op {
    /// Charge one step (entry of an `Arith`/`Neg`/`Cmp`/`Not`/`And`/`Or`
    /// node whose value is produced by a later op).
    Charge,
    /// Charge 1; push a literal (non-finite literals raise `NonFinite`,
    /// as in the interpreter).
    PushConst(f64),
    /// Charge 1; push the context node's numeric attribute view (missing or
    /// enum attributes push `0.0`).
    LoadAttr(Symbol),
    /// Pop `b`, `a`; push `a op b` (protected division); non-finite raises.
    Arith(ArithOp),
    /// Pop `v`; push `-v`.
    Neg,
    /// Charge 1; push whether the context node's kind equals the symbol.
    IsType(Symbol),
    /// Charge 1; push whether the context node carries the attribute.
    HasAttr(Symbol),
    /// Charge 1; push the `@a == V` test (enum by symbol, bool via the
    /// precomputed [`BoolView`]).
    AttrEqEnum(Symbol, Symbol, BoolView),
    /// Charge 1; push the `@a OP k` numeric test (false when missing or
    /// non-numeric).
    AttrCmpNum(Symbol, CmpOp, f64),
    /// Pop two numbers; push the comparison (the `Cmp` node's entry charge
    /// is a preceding [`Op::Charge`]).
    CmpNum(CmpOp),
    /// Pop a bool; push its negation.
    NotBool,
    /// Pop a bool; if `false`, push `false` and jump (short-circuit `&&`).
    AndJump(u32),
    /// Pop a bool; if `true`, push `true` and jump (short-circuit `||`).
    OrJump(u32),
    /// Charge 1; `/[idx][p]`: if the context node has an `idx`-th child,
    /// save the context and descend into it; otherwise push `false` and
    /// jump to `skip`.
    ChildCtx {
        /// Child position.
        idx: u32,
        /// Jump target when the child is missing (past the matching
        /// [`Op::PopCtx`]).
        skip: u32,
    },
    /// Restore the context saved by the matching [`Op::ChildCtx`].
    PopCtx,
    /// Charge 1 (the aggregate node's entry); push an aggregate frame and
    /// start iterating (operand indexes [`Program::aggs`]).
    AggStart(u32),
    /// Pop a predicate result; `true` falls through to the next predicate
    /// or the body, `false` advances the top frame to the next element.
    PredGate,
    /// Accumulate one element (pops the body value except for `count`) and
    /// advance the top frame.
    AggAccum,
    /// Indexed count with bulk charging (operand indexes
    /// [`Program::counts`]).
    CountIndexed(u32),
    /// Fused aggregate: pure predicates + leaf body run as one tight arena
    /// loop with bulk charging (operand indexes [`Program::fused`]).
    AggFused(u32),
    /// CSE cache probe (operand indexes [`Program::keys`]); on hit, charge
    /// the recorded steps and short-circuit to `end`.
    CacheBegin {
        /// Index into [`Program::keys`].
        key_idx: u32,
        /// Jump target on a cache hit (past the matching [`Op::CacheEnd`]).
        end: u32,
    },
    /// Record the enclosing region's `(steps, value)` into the cache.
    CacheEnd,
    /// End of program; the feature value is the top of the numeric stack.
    Return,
}

/// Aggregate discriminator shared by compiler and VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AggKind {
    /// `count(s)`
    Count,
    /// `sum(s, e)`
    Sum,
    /// `max(s, e)`
    Max,
    /// `min(s, e)`
    Min,
    /// `avg(s, e)`
    Avg,
}

/// Static description of one general aggregate site.
#[derive(Debug, Clone)]
pub(crate) struct AggMeta {
    pub kind: AggKind,
    /// `true` for `/*` (children), `false` for `//*` (descendants).
    pub children_base: bool,
    /// First op of the per-element code (predicates, body, `AggAccum`).
    pub body_pc: u32,
    /// First op after the aggregate (the `CacheEnd` when cached).
    pub end_pc: u32,
}

/// A pure (fixed-cost, side-effect-free) predicate atom usable by the
/// indexed-count fast path.
#[derive(Debug, Clone, Copy)]
pub(crate) enum PureAtom {
    IsType(Symbol),
    HasAttr(Symbol),
    AttrEq(Symbol, Symbol, BoolView),
    AttrCmp(Symbol, CmpOp, f64),
}

/// A pure predicate: side-effect-free, cannot raise `NonFinite`, and its
/// step cost is computable while scanning the arena.
#[derive(Debug, Clone)]
pub(crate) enum PurePred {
    /// A single atom under zero or more negations — answerable in closed
    /// form from the arena's postings lists.
    Atom {
        atom: PureAtom,
        /// Parity of the `Not` layers.
        negated: bool,
        /// Exact interpreter step cost of evaluating the predicate once
        /// (1 for the atom plus 1 per `Not` layer).
        cost: u64,
    },
    /// A boolean combination of atoms and fixed-position child probes —
    /// answered by a tight arena scan that accumulates the interpreter's
    /// exact short-circuit step cost per element. When every atom is an
    /// `is-type` test of the element itself, `kinds` carries a verdict
    /// table precomputed at compile time and the scan needs no per-element
    /// predicate evaluation at all.
    Tree {
        expr: PureExpr,
        kinds: Option<KindTable>,
    },
}

/// Per-kind verdict table for a kinds-only predicate tree: verdict and
/// exact short-circuit step cost are pure functions of the element's kind,
/// and every kind the tree does not mention follows the identical
/// all-atoms-false trace, collapsed into `default`.
#[derive(Debug, Clone)]
pub(crate) struct KindTable {
    /// `(kind, verdict, exact step cost)` for each kind the tree mentions.
    pub entries: Vec<(Symbol, bool, u64)>,
    /// Verdict and cost for every other kind.
    pub default: (bool, u64),
}

/// A pure predicate tree. Every node costs exactly one interpreter step at
/// entry; `&&`/`||` short-circuit and a missing child probe skips its inner
/// predicate, so the cost is data-dependent but exactly reproducible.
#[derive(Debug, Clone)]
pub(crate) enum PureExpr {
    Atom(PureAtom),
    Not(Box<PureExpr>),
    And(Box<PureExpr>, Box<PureExpr>),
    Or(Box<PureExpr>, Box<PureExpr>),
    /// `/[idx][p]`: probe the `idx`-th child; `false` when missing.
    Child(u32, Box<PureExpr>),
}

/// Static description of one indexed-count site.
#[derive(Debug, Clone)]
pub(crate) struct CountMeta {
    /// `true` for `/*`, `false` for `//*`.
    pub children_base: bool,
    /// The filter predicate, if any.
    pub pred: Option<PurePred>,
}

/// Static description of one fused aggregate: every filter predicate is
/// pure and the body is a leaf, so the VM runs the whole aggregate as one
/// tight arena loop with bulk step charging — no per-element dispatch.
#[derive(Debug, Clone)]
pub(crate) struct FusedAggMeta {
    pub kind: AggKind,
    /// `true` for `/*`, `false` for `//*`.
    pub children_base: bool,
    /// Filter predicates in interpreter evaluation order (innermost
    /// first); an element is accumulated when all hold, and evaluation
    /// (with its step charges) stops at the first that fails.
    pub preds: Vec<PurePred>,
    pub body: FusedBody,
}

/// Leaf bodies a fused aggregate can evaluate without bytecode.
#[derive(Debug, Clone)]
pub(crate) enum FusedBody {
    /// `count` aggregates have no body.
    None,
    /// A literal (cost 1 per element).
    Const(f64),
    /// `get-attr(@a)` at the element (cost 1 per element).
    Attr(Symbol),
    /// A nested indexed `count` evaluated at the element.
    Count(CountMeta),
}

/// A compiled feature: flat bytecode plus side tables. Compile once per
/// candidate, execute once per loop.
#[derive(Debug, Clone)]
pub struct Program {
    pub(crate) ops: Vec<Op>,
    pub(crate) aggs: Vec<AggMeta>,
    pub(crate) counts: Vec<CountMeta>,
    pub(crate) fused: Vec<FusedAggMeta>,
    /// Structural CSE keys for `CacheBegin` sites.
    pub(crate) keys: Vec<Fingerprint>,
}

impl Program {
    /// Compiles a feature expression. Pure function of the expression.
    pub fn compile(expr: &FeatureExpr) -> Program {
        let mut c = Compiler {
            prog: Program {
                ops: Vec::new(),
                aggs: Vec::new(),
                counts: Vec::new(),
                fused: Vec::new(),
                keys: Vec::new(),
            },
        };
        c.num(expr, true);
        c.prog.ops.push(Op::Return);
        c.prog
    }

    /// Number of bytecode ops (diagnostics / tests).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the program is empty (never after `compile`).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of CSE cache sites (root-context aggregates).
    pub fn cache_sites(&self) -> usize {
        self.keys.len()
    }
}

struct Compiler {
    prog: Program,
}

impl Compiler {
    fn pc(&self) -> u32 {
        self.prog.ops.len() as u32
    }

    /// Compiles a numeric expression. `root` is true while the context node
    /// is the evaluation root — only root-context aggregates are CSE-cached
    /// (aggregate bodies and filter predicates switch context to sequence
    /// elements, so cache regions never nest).
    fn num(&mut self, e: &FeatureExpr, root: bool) {
        use FeatureExpr::*;
        match e {
            Const(c) => self.prog.ops.push(Op::PushConst(*c)),
            GetAttr(a) => self.prog.ops.push(Op::LoadAttr(*a)),
            Arith(op, a, b) => {
                self.prog.ops.push(Op::Charge);
                self.num(a, root);
                self.num(b, root);
                self.prog.ops.push(Op::Arith(*op));
            }
            Neg(a) => {
                self.prog.ops.push(Op::Charge);
                self.num(a, root);
                self.prog.ops.push(Op::Neg);
            }
            Count(seq) => {
                if let Some(meta) = indexed_count(seq) {
                    let idx = self.prog.counts.len() as u32;
                    self.prog.counts.push(meta);
                    self.prog.ops.push(Op::CountIndexed(idx));
                } else {
                    self.aggregate(AggKind::Count, seq, None, e, root);
                }
            }
            Sum(seq, body) => self.aggregate(AggKind::Sum, seq, Some(body), e, root),
            Max(seq, body) => self.aggregate(AggKind::Max, seq, Some(body), e, root),
            Min(seq, body) => self.aggregate(AggKind::Min, seq, Some(body), e, root),
            Avg(seq, body) => self.aggregate(AggKind::Avg, seq, Some(body), e, root),
        }
    }

    fn aggregate(
        &mut self,
        kind: AggKind,
        seq: &SeqExpr,
        body: Option<&FeatureExpr>,
        whole: &FeatureExpr,
        root: bool,
    ) {
        // Unwrap nested filters; the interpreter evaluates predicates
        // innermost-first, so reverse the collection order.
        let mut preds: Vec<&BoolExpr> = Vec::new();
        let mut base = seq;
        while let SeqExpr::Filter(inner, p) = base {
            preds.push(p);
            base = inner;
        }
        preds.reverse();
        let children_base = matches!(base, SeqExpr::Children);

        let cache_at = root.then(|| {
            let key_idx = self.prog.keys.len() as u32;
            self.prog.keys.push(whole.fingerprint());
            let at = self.pc() as usize;
            self.prog.ops.push(Op::CacheBegin { key_idx, end: 0 });
            at
        });

        if let Some(fused) = fuse(kind, children_base, &preds, body) {
            let idx = self.prog.fused.len() as u32;
            self.prog.fused.push(fused);
            self.prog.ops.push(Op::AggFused(idx));
            if let Some(at) = cache_at {
                self.prog.ops.push(Op::CacheEnd);
                let after = self.pc();
                let Op::CacheBegin { end, .. } = &mut self.prog.ops[at] else {
                    unreachable!("cache_at points at CacheBegin")
                };
                *end = after;
            }
            return;
        }

        let agg_idx = self.prog.aggs.len() as u32;
        self.prog.aggs.push(AggMeta {
            kind,
            children_base,
            body_pc: 0,
            end_pc: 0,
        });
        self.prog.ops.push(Op::AggStart(agg_idx));
        let body_pc = self.pc();
        for p in preds {
            self.boolean(p);
            self.prog.ops.push(Op::PredGate);
        }
        if let Some(b) = body {
            self.num(b, false);
        }
        self.prog.ops.push(Op::AggAccum);
        // When cached, the frame finalizes onto the CacheEnd op.
        let end_pc = self.pc();
        if let Some(at) = cache_at {
            self.prog.ops.push(Op::CacheEnd);
            let after = self.pc();
            let Op::CacheBegin { end, .. } = &mut self.prog.ops[at] else {
                unreachable!("cache_at points at CacheBegin")
            };
            *end = after;
        }
        let meta = &mut self.prog.aggs[agg_idx as usize];
        meta.body_pc = body_pc;
        meta.end_pc = end_pc;
    }

    fn boolean(&mut self, e: &BoolExpr) {
        use BoolExpr::*;
        match e {
            IsType(k) => self.prog.ops.push(Op::IsType(*k)),
            HasAttr(a) => self.prog.ops.push(Op::HasAttr(*a)),
            AttrEqEnum(a, v) => self.prog.ops.push(Op::AttrEqEnum(*a, *v, BoolView::of(*v))),
            AttrCmpNum(a, op, k) => self.prog.ops.push(Op::AttrCmpNum(*a, *op, *k)),
            Cmp(op, a, b) => {
                self.prog.ops.push(Op::Charge);
                self.num(a, false);
                self.num(b, false);
                self.prog.ops.push(Op::CmpNum(*op));
            }
            ChildMatches(idx, p) => {
                let at = self.pc() as usize;
                self.prog.ops.push(Op::ChildCtx {
                    idx: *idx as u32,
                    skip: 0,
                });
                self.boolean(p);
                self.prog.ops.push(Op::PopCtx);
                let after = self.pc();
                let Op::ChildCtx { skip, .. } = &mut self.prog.ops[at] else {
                    unreachable!("at points at ChildCtx")
                };
                *skip = after;
            }
            Not(p) => {
                self.prog.ops.push(Op::Charge);
                self.boolean(p);
                self.prog.ops.push(Op::NotBool);
            }
            And(a, b) => {
                self.prog.ops.push(Op::Charge);
                self.boolean(a);
                let at = self.pc() as usize;
                self.prog.ops.push(Op::AndJump(0));
                self.boolean(b);
                let after = self.pc();
                let Op::AndJump(t) = &mut self.prog.ops[at] else {
                    unreachable!("at points at AndJump")
                };
                *t = after;
            }
            Or(a, b) => {
                self.prog.ops.push(Op::Charge);
                self.boolean(a);
                let at = self.pc() as usize;
                self.prog.ops.push(Op::OrJump(0));
                self.boolean(b);
                let after = self.pc();
                let Op::OrJump(t) = &mut self.prog.ops[at] else {
                    unreachable!("at points at OrJump")
                };
                *t = after;
            }
        }
    }
}

/// Attempts to fuse an aggregate: every filter predicate must be pure and
/// the body a leaf. Anything else keeps the general frame path.
fn fuse(
    kind: AggKind,
    children_base: bool,
    preds: &[&BoolExpr],
    body: Option<&FeatureExpr>,
) -> Option<FusedAggMeta> {
    let preds: Vec<PurePred> = preds.iter().map(|p| pure_pred(p)).collect::<Option<_>>()?;
    let body = match body {
        None => FusedBody::None,
        Some(FeatureExpr::Const(c)) => FusedBody::Const(*c),
        Some(FeatureExpr::GetAttr(a)) => FusedBody::Attr(*a),
        Some(FeatureExpr::Count(seq)) => FusedBody::Count(indexed_count(seq)?),
        Some(_) => return None,
    };
    Some(FusedAggMeta {
        kind,
        children_base,
        preds,
        body,
    })
}

/// Recognizes `count` sequences answerable from the arena indices.
fn indexed_count(seq: &SeqExpr) -> Option<CountMeta> {
    match seq {
        SeqExpr::Children => Some(CountMeta {
            children_base: true,
            pred: None,
        }),
        SeqExpr::Descendants => Some(CountMeta {
            children_base: false,
            pred: None,
        }),
        SeqExpr::Filter(inner, p) => {
            let children_base = match **inner {
                SeqExpr::Children => true,
                SeqExpr::Descendants => false,
                SeqExpr::Filter(..) => return None,
            };
            let pred = pure_pred(p)?;
            Some(CountMeta {
                children_base,
                pred: Some(pred),
            })
        }
    }
}

/// Classifies a predicate as pure (arena-computable, error-free): a single
/// atom under negations (postings-list counting), or failing that, any
/// boolean combination of atoms and child probes (scan counting).
fn pure_pred(p: &BoolExpr) -> Option<PurePred> {
    let mut negs = 0u64;
    let mut q = p;
    while let BoolExpr::Not(inner) = q {
        negs += 1;
        q = inner;
    }
    if let Some(atom) = pure_atom(q) {
        return Some(PurePred::Atom {
            atom,
            negated: negs % 2 == 1,
            cost: 1 + negs,
        });
    }
    let expr = pure_tree(p)?;
    let kinds = kind_table(&expr);
    Some(PurePred::Tree { expr, kinds })
}

/// Builds the per-kind verdict table for a kinds-only tree; `None` when the
/// tree reads attributes or probes children (verdict then depends on more
/// than the kind).
fn kind_table(e: &PureExpr) -> Option<KindTable> {
    let mut kinds = Vec::new();
    if !collect_kinds(e, &mut kinds) {
        return None;
    }
    let entries = kinds
        .iter()
        .map(|&k| {
            let mut steps = 0u64;
            let verdict = eval_at_kind(e, Some(k), &mut steps);
            (k, verdict, steps)
        })
        .collect();
    let mut steps = 0u64;
    let verdict = eval_at_kind(e, None, &mut steps);
    Some(KindTable {
        entries,
        default: (verdict, steps),
    })
}

/// Collects the distinct kind symbols an `is-type`-only tree mentions;
/// false when any other atom (or a child probe) appears.
fn collect_kinds(e: &PureExpr, out: &mut Vec<Symbol>) -> bool {
    match e {
        PureExpr::Atom(PureAtom::IsType(k)) => {
            if !out.contains(k) {
                out.push(*k);
            }
            true
        }
        PureExpr::Atom(_) | PureExpr::Child(..) => false,
        PureExpr::Not(inner) => collect_kinds(inner, out),
        PureExpr::And(a, b) | PureExpr::Or(a, b) => collect_kinds(a, out) && collect_kinds(b, out),
    }
}

/// Evaluates a kinds-only tree for an element of the given kind (`None`
/// stands for any kind the tree does not mention), accumulating the exact
/// interpreter step cost: one per node entered, short-circuit honoured.
fn eval_at_kind(e: &PureExpr, kind: Option<Symbol>, steps: &mut u64) -> bool {
    *steps += 1;
    match e {
        PureExpr::Atom(PureAtom::IsType(k)) => Some(*k) == kind,
        PureExpr::Not(inner) => !eval_at_kind(inner, kind, steps),
        PureExpr::And(a, b) => eval_at_kind(a, kind, steps) && eval_at_kind(b, kind, steps),
        PureExpr::Or(a, b) => eval_at_kind(a, kind, steps) || eval_at_kind(b, kind, steps),
        PureExpr::Atom(_) | PureExpr::Child(..) => {
            unreachable!("kind table is only built for kinds-only trees")
        }
    }
}

fn pure_atom(q: &BoolExpr) -> Option<PureAtom> {
    match q {
        BoolExpr::IsType(k) => Some(PureAtom::IsType(*k)),
        BoolExpr::HasAttr(a) => Some(PureAtom::HasAttr(*a)),
        BoolExpr::AttrEqEnum(a, v) => Some(PureAtom::AttrEq(*a, *v, BoolView::of(*v))),
        BoolExpr::AttrCmpNum(a, op, k) => Some(PureAtom::AttrCmp(*a, *op, *k)),
        _ => None,
    }
}

/// Recognizes boolean combinations that stay pure all the way down. `Cmp`
/// is excluded: its numeric operands can aggregate or raise `NonFinite`.
fn pure_tree(p: &BoolExpr) -> Option<PureExpr> {
    if let Some(atom) = pure_atom(p) {
        return Some(PureExpr::Atom(atom));
    }
    match p {
        BoolExpr::Not(inner) => Some(PureExpr::Not(Box::new(pure_tree(inner)?))),
        BoolExpr::And(a, b) => Some(PureExpr::And(
            Box::new(pure_tree(a)?),
            Box::new(pure_tree(b)?),
        )),
        BoolExpr::Or(a, b) => Some(PureExpr::Or(
            Box::new(pure_tree(a)?),
            Box::new(pure_tree(b)?),
        )),
        BoolExpr::ChildMatches(idx, inner) => {
            Some(PureExpr::Child(*idx as u32, Box::new(pure_tree(inner)?)))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parse::parse_feature;

    fn compile(src: &str) -> Program {
        Program::compile(&parse_feature(src).unwrap())
    }

    #[test]
    fn simple_counts_use_indexed_path() {
        for src in [
            "count(/*)",
            "count(//*)",
            "count(filter(//*, is-type(insn)))",
            "count(filter(/*, has-attr(@x)))",
            "count(filter(//*, !has-attr(@x)))",
            "count(filter(//*, @mode==SI))",
            "count(filter(//*, @num-iter > 4))",
            "count(filter(//*, is-type(a) && is-type(b)))",
            "count(filter(//*, !(is-type(a) || is-type(b))))",
            "count(filter(//*, is-type(a) && /[0][is-type(b) || has-attr(@x)]))",
        ] {
            let p = compile(src);
            assert_eq!(p.counts.len(), 1, "{src} should compile to CountIndexed");
            assert!(p.aggs.is_empty(), "{src} should not need a frame");
        }
    }

    #[test]
    fn pure_leaf_aggregates_fuse() {
        for src in [
            "sum(//*, 1)",
            "sum(//*, get-attr(@weight))",
            "sum(//*, count(/*))",
            "avg(filter(/*, is-type(basic-block)), count(filter(//*, is-type(insn))))",
            "max(filter(//*, !is-type(insn)), get-attr(@depth))",
            "min(//*, count(//*))",
            "count(filter(filter(//*, is-type(a)), is-type(b)))",
        ] {
            let p = compile(src);
            assert_eq!(p.fused.len(), 1, "{src} should compile to AggFused");
            assert!(p.aggs.is_empty(), "{src} should not need a frame");
        }
    }

    #[test]
    fn complex_counts_fall_back_to_frames() {
        for src in [
            "count(filter(//*, count(/*) > 1))",
            "count(filter(//*, is-type(a) && count(/*) > 0))",
            "sum(//*, 1 + get-attr(@x))",
            "sum(//*, sum(//*, 1))",
            "sum(filter(//*, count(/*) > 0), 1)",
        ] {
            let p = compile(src);
            assert!(!p.aggs.is_empty(), "{src} needs a general aggregate");
        }
    }

    #[test]
    fn root_aggregates_are_cache_sites() {
        // Two root-context aggregates, one nested (not cached).
        let p = compile("sum(//*, count(/*)) + max(//*, 1)");
        assert_eq!(p.cache_sites(), 2);
        // Indexed counts are not cache sites.
        let p = compile("count(//*) + 1");
        assert_eq!(p.cache_sites(), 0);
    }

    #[test]
    fn jump_targets_are_patched() {
        // The `count(/*) > 0` clause makes the predicate impure, keeping the
        // aggregate on the frame path (a fully pure pred would fuse and emit
        // no jumps at all) — so the jump ops below really are present.
        let p = compile(
            "sum(filter(//*, is-type(a) && (is-type(b) || /[0][is-type(c)]) && count(/*) > 0), 1)",
        );
        assert!(p.fused.is_empty());
        assert!(
            p.ops
                .iter()
                .any(|op| matches!(op, Op::AndJump(_) | Op::OrJump(_))),
            "expected the frame path with short-circuit jumps"
        );
        for op in &p.ops {
            match op {
                Op::AndJump(t) | Op::OrJump(t) => assert_ne!(*t, 0),
                Op::ChildCtx { skip, .. } => assert_ne!(*skip, 0),
                Op::CacheBegin { end, .. } => assert_ne!(*end, 0),
                _ => {}
            }
        }
    }
}
