//! `Display` implementations producing the paper's textual feature syntax.
//!
//! Printing then re-parsing yields an equal AST (verified by property tests).

use super::ast::*;
use std::fmt;

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArithOp::Add => write!(f, "+"),
            ArithOp::Sub => write!(f, "-"),
            ArithOp::Mul => write!(f, "*"),
            ArithOp::Div => write!(f, "/"),
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmpOp::Eq => write!(f, "=="),
            CmpOp::Ne => write!(f, "!="),
            CmpOp::Lt => write!(f, "<"),
            CmpOp::Le => write!(f, "<="),
            CmpOp::Gt => write!(f, ">"),
            CmpOp::Ge => write!(f, ">="),
        }
    }
}

fn arith_prec(op: ArithOp) -> u8 {
    match op {
        ArithOp::Add | ArithOp::Sub => 1,
        ArithOp::Mul | ArithOp::Div => 2,
    }
}

fn fmt_num(e: &FeatureExpr, f: &mut fmt::Formatter<'_>, min_prec: u8) -> fmt::Result {
    match e {
        FeatureExpr::Const(v) => {
            if *v < 0.0 {
                write!(f, "({v})")
            } else {
                write!(f, "{v}")
            }
        }
        FeatureExpr::GetAttr(a) => write!(f, "get-attr(@{a})"),
        FeatureExpr::Count(s) => write!(f, "count({s})"),
        FeatureExpr::Sum(s, e) => write!(f, "sum({s}, {e})"),
        FeatureExpr::Max(s, e) => write!(f, "max({s}, {e})"),
        FeatureExpr::Min(s, e) => write!(f, "min({s}, {e})"),
        FeatureExpr::Avg(s, e) => write!(f, "avg({s}, {e})"),
        FeatureExpr::Arith(op, a, b) => {
            let prec = arith_prec(*op);
            let need = prec < min_prec;
            if need {
                write!(f, "(")?;
            }
            fmt_num(a, f, prec)?;
            write!(f, " {op} ")?;
            // Left-associative: right operand needs one higher binding.
            fmt_num(b, f, prec + 1)?;
            if need {
                write!(f, ")")?;
            }
            Ok(())
        }
        FeatureExpr::Neg(a) => {
            write!(f, "-")?;
            // Highest precedence on the operand.
            fmt_num(a, f, 3)
        }
    }
}

impl fmt::Display for FeatureExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_num(self, f, 0)
    }
}

impl fmt::Display for SeqExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqExpr::Children => write!(f, "/*"),
            SeqExpr::Descendants => write!(f, "//*"),
            SeqExpr::Filter(s, p) => write!(f, "filter({s}, {p})"),
        }
    }
}

// Precedence: Or=1, And=2, Not=3, atoms=4.
fn fmt_bool(e: &BoolExpr, f: &mut fmt::Formatter<'_>, min_prec: u8) -> fmt::Result {
    match e {
        BoolExpr::IsType(t) => write!(f, "is-type({t})"),
        BoolExpr::HasAttr(a) => write!(f, "has-attr(@{a})"),
        BoolExpr::AttrEqEnum(a, v) => write!(f, "@{a}=={v}"),
        BoolExpr::AttrCmpNum(a, op, k) => {
            if *k < 0.0 {
                write!(f, "@{a} {op} -{}", -k)
            } else {
                write!(f, "@{a} {op} {k}")
            }
        }
        BoolExpr::Cmp(op, a, b) => write!(f, "{a} {op} {b}"),
        BoolExpr::ChildMatches(idx, p) => write!(f, "/[{idx}][{p}]"),
        BoolExpr::Not(p) => {
            write!(f, "!")?;
            fmt_bool(p, f, 3)
        }
        BoolExpr::And(a, b) => {
            let need = 2 < min_prec;
            if need {
                write!(f, "(")?;
            }
            fmt_bool(a, f, 2)?;
            write!(f, " && ")?;
            fmt_bool(b, f, 3)?;
            if need {
                write!(f, ")")?;
            }
            Ok(())
        }
        BoolExpr::Or(a, b) => {
            let need = 1 < min_prec;
            if need {
                write!(f, "(")?;
            }
            fmt_bool(a, f, 1)?;
            write!(f, " || ")?;
            fmt_bool(b, f, 2)?;
            if need {
                write!(f, ")")?;
            }
            Ok(())
        }
    }
}

impl fmt::Display for BoolExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Atoms like Cmp contain numeric expressions; when a Cmp or attr
        // comparison is negated or conjoined it needs parens, so atoms that
        // are structurally compound print parenthesised in tight contexts.
        fmt_bool(self, f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::super::parse::{parse_feature, parse_predicate};

    #[test]
    fn prints_canonical_syntax() {
        let f = parse_feature("count(filter(//*,is-type(reg)))").unwrap();
        assert_eq!(f.to_string(), "count(filter(//*, is-type(reg)))");
    }

    #[test]
    fn arith_parenthesisation_is_minimal() {
        let f = parse_feature("(1 + 2) * 3").unwrap();
        assert_eq!(f.to_string(), "(1 + 2) * 3");
        let g = parse_feature("1 + 2 * 3").unwrap();
        assert_eq!(g.to_string(), "1 + 2 * 3");
    }

    #[test]
    fn bool_parenthesisation_preserves_structure() {
        let p = parse_predicate("(is-type(a) || is-type(b)) && is-type(c)").unwrap();
        let printed = p.to_string();
        let reparsed = parse_predicate(&printed).unwrap();
        assert_eq!(p, reparsed, "printed as `{printed}`");
    }

    #[test]
    fn negation_roundtrips() {
        for src in [
            "!is-type(a)",
            "!(is-type(a) && is-type(b))",
            "!@loop-depth==2",
        ] {
            let p = parse_predicate(src).unwrap();
            let reparsed = parse_predicate(&p.to_string()).unwrap();
            assert_eq!(p, reparsed, "src `{src}` printed as `{p}`");
        }
    }

    #[test]
    fn negative_constants_parenthesised() {
        let f = parse_feature("0 - 5").unwrap();
        let printed = f.to_string();
        assert_eq!(parse_feature(&printed).unwrap(), f);
    }
}
