//! Uniform subtree addressing over feature expressions.
//!
//! The GP operators (mutation, crossover — paper Figures 9 and 10) need to
//! pick "a non-terminal at random from a parse tree" and swap or regrow the
//! subtree rooted there. Feature expressions have three sorts of
//! non-terminal (numeric, boolean, sequence); this module provides counting,
//! extraction and replacement of the `i`-th subtree of a given sort in a
//! fixed pre-order, so two parents can exchange *corresponding* (same-sort)
//! subtrees.

use super::ast::{BoolExpr, FeatureExpr, SeqExpr};

/// The sort of a feature sub-expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sort {
    /// Numeric expression.
    Num,
    /// Boolean predicate.
    Bool,
    /// Node sequence.
    Seq,
}

/// A sub-expression of any sort, as extracted by [`pick`].
#[derive(Debug, Clone, PartialEq)]
pub enum AnyExpr {
    /// A numeric sub-expression.
    Num(FeatureExpr),
    /// A boolean sub-expression.
    Bool(BoolExpr),
    /// A sequence sub-expression.
    Seq(SeqExpr),
}

impl AnyExpr {
    /// The sort of this sub-expression.
    pub fn sort(&self) -> Sort {
        match self {
            AnyExpr::Num(_) => Sort::Num,
            AnyExpr::Bool(_) => Sort::Bool,
            AnyExpr::Seq(_) => Sort::Seq,
        }
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            AnyExpr::Num(e) => e.size(),
            AnyExpr::Bool(e) => e.size(),
            AnyExpr::Seq(e) => e.size(),
        }
    }
}

/// Counts of subtrees per sort within a feature expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SortCounts {
    /// Numeric subtrees (the whole feature counts as one).
    pub num: usize,
    /// Boolean subtrees.
    pub bool_: usize,
    /// Sequence subtrees.
    pub seq: usize,
}

impl SortCounts {
    /// Count for one sort.
    pub fn get(&self, sort: Sort) -> usize {
        match sort {
            Sort::Num => self.num,
            Sort::Bool => self.bool_,
            Sort::Seq => self.seq,
        }
    }

    /// Total subtree count over all sorts.
    pub fn total(&self) -> usize {
        self.num + self.bool_ + self.seq
    }
}

/// Counts subtrees of each sort in pre-order (the root numeric expression is
/// `num` index 0).
pub fn counts(root: &FeatureExpr) -> SortCounts {
    let mut c = SortCounts::default();
    count_num(root, &mut c);
    c
}

fn count_num(e: &FeatureExpr, c: &mut SortCounts) {
    c.num += 1;
    match e {
        FeatureExpr::Const(_) | FeatureExpr::GetAttr(_) => {}
        FeatureExpr::Count(s) => count_seq(s, c),
        FeatureExpr::Sum(s, b)
        | FeatureExpr::Max(s, b)
        | FeatureExpr::Min(s, b)
        | FeatureExpr::Avg(s, b) => {
            count_seq(s, c);
            count_num(b, c);
        }
        FeatureExpr::Arith(_, a, b) => {
            count_num(a, c);
            count_num(b, c);
        }
        FeatureExpr::Neg(a) => count_num(a, c),
    }
}

fn count_bool(e: &BoolExpr, c: &mut SortCounts) {
    c.bool_ += 1;
    match e {
        BoolExpr::IsType(_)
        | BoolExpr::HasAttr(_)
        | BoolExpr::AttrEqEnum(..)
        | BoolExpr::AttrCmpNum(..) => {}
        BoolExpr::Cmp(_, a, b) => {
            count_num(a, c);
            count_num(b, c);
        }
        BoolExpr::ChildMatches(_, p) => count_bool(p, c),
        BoolExpr::Not(p) => count_bool(p, c),
        BoolExpr::And(a, b) | BoolExpr::Or(a, b) => {
            count_bool(a, c);
            count_bool(b, c);
        }
    }
}

fn count_seq(e: &SeqExpr, c: &mut SortCounts) {
    c.seq += 1;
    if let SeqExpr::Filter(s, p) = e {
        count_seq(s, c);
        count_bool(p, c);
    }
}

/// Walk state shared by pick and replace.
struct Walk<'a> {
    sort: Sort,
    target: usize,
    seen: usize,
    /// `Some` in replace mode; `None` in pick mode.
    replacement: Option<&'a AnyExpr>,
    /// Filled by pick mode when the target is reached.
    picked: Option<AnyExpr>,
}

impl<'a> Walk<'a> {
    fn hit(&mut self, sort: Sort) -> bool {
        if sort != self.sort {
            return false;
        }
        let idx = self.seen;
        self.seen += 1;
        idx == self.target
    }
}

/// Extracts (a clone of) the `idx`-th subtree of sort `sort`, pre-order.
///
/// Returns `None` when `idx` is out of range.
pub fn pick(root: &FeatureExpr, sort: Sort, idx: usize) -> Option<AnyExpr> {
    let mut w = Walk {
        sort,
        target: idx,
        seen: 0,
        replacement: None,
        picked: None,
    };
    let _ = walk_num(root, &mut w);
    w.picked
}

/// Returns `root` with its `idx`-th subtree of sort `sort` replaced by
/// `new` (whose sort must match).
///
/// Returns `None` when `idx` is out of range.
///
/// # Panics
///
/// Panics if `new.sort() != sort`.
pub fn replace(root: &FeatureExpr, sort: Sort, idx: usize, new: &AnyExpr) -> Option<FeatureExpr> {
    assert_eq!(new.sort(), sort, "replacement sort must match target sort");
    let mut w = Walk {
        sort,
        target: idx,
        seen: 0,
        replacement: Some(new),
        picked: None,
    };
    let out = walk_num(root, &mut w);
    if w.seen > w.target {
        Some(out)
    } else {
        None
    }
}

fn take_num(w: &mut Walk<'_>, original: &FeatureExpr) -> Option<FeatureExpr> {
    if w.hit(Sort::Num) {
        match w.replacement {
            Some(AnyExpr::Num(n)) => return Some(n.clone()),
            Some(_) => unreachable!("sort checked by replace()"),
            None => {
                w.picked = Some(AnyExpr::Num(original.clone()));
                return Some(original.clone());
            }
        }
    }
    None
}

fn walk_num(e: &FeatureExpr, w: &mut Walk<'_>) -> FeatureExpr {
    if let Some(replaced) = take_num(w, e) {
        return replaced;
    }
    match e {
        FeatureExpr::Const(_) | FeatureExpr::GetAttr(_) => e.clone(),
        FeatureExpr::Count(s) => FeatureExpr::Count(walk_seq(s, w)),
        FeatureExpr::Sum(s, b) => {
            FeatureExpr::Sum(walk_seq(s, w), Box::new(walk_num(b, w)))
        }
        FeatureExpr::Max(s, b) => {
            FeatureExpr::Max(walk_seq(s, w), Box::new(walk_num(b, w)))
        }
        FeatureExpr::Min(s, b) => {
            FeatureExpr::Min(walk_seq(s, w), Box::new(walk_num(b, w)))
        }
        FeatureExpr::Avg(s, b) => {
            FeatureExpr::Avg(walk_seq(s, w), Box::new(walk_num(b, w)))
        }
        FeatureExpr::Arith(op, a, b) => FeatureExpr::Arith(
            *op,
            Box::new(walk_num(a, w)),
            Box::new(walk_num(b, w)),
        ),
        FeatureExpr::Neg(a) => FeatureExpr::Neg(Box::new(walk_num(a, w))),
    }
}

fn walk_bool(e: &BoolExpr, w: &mut Walk<'_>) -> BoolExpr {
    if w.hit(Sort::Bool) {
        match w.replacement {
            Some(AnyExpr::Bool(b)) => return b.clone(),
            Some(_) => unreachable!("sort checked by replace()"),
            None => {
                w.picked = Some(AnyExpr::Bool(e.clone()));
                return e.clone();
            }
        }
    }
    match e {
        BoolExpr::IsType(_)
        | BoolExpr::HasAttr(_)
        | BoolExpr::AttrEqEnum(..)
        | BoolExpr::AttrCmpNum(..) => e.clone(),
        BoolExpr::Cmp(op, a, b) => BoolExpr::Cmp(
            *op,
            Box::new(walk_num(a, w)),
            Box::new(walk_num(b, w)),
        ),
        BoolExpr::ChildMatches(i, p) => {
            BoolExpr::ChildMatches(*i, Box::new(walk_bool(p, w)))
        }
        BoolExpr::Not(p) => BoolExpr::Not(Box::new(walk_bool(p, w))),
        BoolExpr::And(a, b) => {
            BoolExpr::And(Box::new(walk_bool(a, w)), Box::new(walk_bool(b, w)))
        }
        BoolExpr::Or(a, b) => {
            BoolExpr::Or(Box::new(walk_bool(a, w)), Box::new(walk_bool(b, w)))
        }
    }
}

fn walk_seq(e: &SeqExpr, w: &mut Walk<'_>) -> SeqExpr {
    if w.hit(Sort::Seq) {
        match w.replacement {
            Some(AnyExpr::Seq(s)) => return s.clone(),
            Some(_) => unreachable!("sort checked by replace()"),
            None => {
                w.picked = Some(AnyExpr::Seq(e.clone()));
                return e.clone();
            }
        }
    }
    match e {
        SeqExpr::Children | SeqExpr::Descendants => e.clone(),
        SeqExpr::Filter(s, p) => {
            SeqExpr::Filter(Box::new(walk_seq(s, w)), Box::new(walk_bool(p, w)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parse::parse_feature;

    fn sample() -> FeatureExpr {
        parse_feature("count(filter(//*, is-type(reg) && has-attr(@mode))) + get-attr(@n)")
            .unwrap()
    }

    #[test]
    fn counts_match_manual_enumeration() {
        let c = counts(&sample());
        // num: arith, count, get-attr            = 3
        // bool: and, is-type, has-attr           = 3
        // seq: filter, descendants               = 2
        assert_eq!(c, SortCounts { num: 3, bool_: 3, seq: 2 });
        assert_eq!(c.total(), 8);
    }

    #[test]
    fn pick_root_is_whole_expression() {
        let e = sample();
        assert_eq!(pick(&e, Sort::Num, 0), Some(AnyExpr::Num(e.clone())));
    }

    #[test]
    fn pick_out_of_range_is_none() {
        let e = sample();
        assert_eq!(pick(&e, Sort::Num, 3), None);
        assert_eq!(pick(&e, Sort::Seq, 2), None);
    }

    #[test]
    fn pick_preorder_indices() {
        let e = sample();
        // bool 0 = the And; bool 1 = is-type(reg); bool 2 = has-attr(@mode).
        assert_eq!(
            pick(&e, Sort::Bool, 1),
            Some(AnyExpr::Bool(BoolExpr::IsType(crate::ir::Symbol::intern(
                "reg"
            ))))
        );
        // seq 0 = filter(...); seq 1 = //*.
        assert_eq!(pick(&e, Sort::Seq, 1), Some(AnyExpr::Seq(SeqExpr::Descendants)));
    }

    #[test]
    fn replace_swaps_exact_subtree() {
        let e = sample();
        let new = AnyExpr::Seq(SeqExpr::Children);
        let out = replace(&e, Sort::Seq, 1, &new).unwrap();
        assert_eq!(
            out.to_string(),
            "count(filter(/*, is-type(reg) && has-attr(@mode))) + get-attr(@n)"
        );
    }

    #[test]
    fn replace_root_returns_replacement() {
        let e = sample();
        let new = AnyExpr::Num(FeatureExpr::Const(7.0));
        let out = replace(&e, Sort::Num, 0, &new).unwrap();
        assert_eq!(out, FeatureExpr::Const(7.0));
    }

    #[test]
    fn replace_out_of_range_is_none() {
        let e = sample();
        let new = AnyExpr::Bool(BoolExpr::IsType(crate::ir::Symbol::intern("x")));
        assert_eq!(replace(&e, Sort::Bool, 10, &new), None);
    }

    #[test]
    #[should_panic(expected = "replacement sort must match")]
    fn replace_with_wrong_sort_panics() {
        let e = sample();
        let new = AnyExpr::Num(FeatureExpr::Const(1.0));
        let _ = replace(&e, Sort::Bool, 0, &new);
    }

    #[test]
    fn every_picked_index_roundtrips_through_replace() {
        let e = sample();
        let c = counts(&e);
        for sort in [Sort::Num, Sort::Bool, Sort::Seq] {
            for i in 0..c.get(sort) {
                let sub = pick(&e, sort, i).expect("in range");
                let out = replace(&e, sort, i, &sub).expect("in range");
                assert_eq!(out, e, "identity replace at {sort:?}[{i}]");
            }
        }
    }
}
