//! Step-budgeted evaluation of feature expressions over IR trees.
//!
//! The paper gives each candidate feature "at most two seconds to evaluate
//! over all loops"; features that exceed the budget are discarded and cannot
//! contribute to the gene pool (§VI). Wall-clock timeouts are not
//! reproducible across machines, so this implementation charges a
//! deterministic **step cost** — one step per expression node visited per IR
//! node of context — and aborts with [`EvalError::BudgetExceeded`] when the
//! budget runs out. The selection pressure is identical: expensive features
//! (typically deeply nested aggregates over `//*`) are discarded.

use super::ast::{ArithOp, BoolExpr, FeatureExpr, SeqExpr};
use crate::ir::{AttrValue, IrNode, Symbol};
use std::fmt;
use std::sync::OnceLock;

/// Interned `true`/`false` symbols, resolved once so the `@flag == true`
/// comparison in the hot loop is a `u32` equality, not a string compare.
pub(crate) fn bool_symbols() -> (Symbol, Symbol) {
    static SYMS: OnceLock<(Symbol, Symbol)> = OnceLock::new();
    *SYMS.get_or_init(|| (Symbol::intern("true"), Symbol::intern("false")))
}

/// Error produced when evaluating a feature expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalError {
    /// The step budget was exhausted; the feature is considered too
    /// expensive (the paper's two-second timeout).
    BudgetExceeded,
    /// Evaluation produced a non-finite number (overflow or NaN).
    NonFinite,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::BudgetExceeded => write!(f, "feature evaluation budget exceeded"),
            EvalError::NonFinite => write!(f, "feature evaluated to a non-finite value"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluation context carrying the remaining step budget.
#[derive(Debug)]
pub struct Evaluator {
    remaining: u64,
}

/// Default per-evaluation step budget, generous enough for any reasonable
/// feature over the exported loops while still bounding runaway expressions.
pub const DEFAULT_BUDGET: u64 = 2_000_000;

impl Evaluator {
    /// Creates an evaluator with the given step budget.
    pub fn new(budget: u64) -> Self {
        Evaluator { remaining: budget }
    }

    /// Steps still available.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    fn step(&mut self, cost: u64) -> Result<(), EvalError> {
        if self.remaining < cost {
            self.remaining = 0;
            return Err(EvalError::BudgetExceeded);
        }
        self.remaining -= cost;
        Ok(())
    }

    /// Evaluates a numeric feature expression at `node`.
    ///
    /// # Errors
    ///
    /// [`EvalError::BudgetExceeded`] when the step budget runs out,
    /// [`EvalError::NonFinite`] when arithmetic overflows to ±∞ or NaN.
    pub fn eval(&mut self, expr: &FeatureExpr, node: &IrNode) -> Result<f64, EvalError> {
        self.step(1)?;
        let v = match expr {
            FeatureExpr::Const(c) => *c,
            FeatureExpr::GetAttr(name) => node
                .attr(*name)
                .and_then(|a| a.as_num())
                .unwrap_or(0.0),
            FeatureExpr::Count(seq) => {
                let mut n = 0usize;
                self.for_each(seq, node, &mut |_, _| {
                    n += 1;
                    Ok(())
                })?;
                n as f64
            }
            FeatureExpr::Sum(seq, body) => {
                let mut acc = 0.0;
                self.for_each(seq, node, &mut |ev, elem| {
                    acc += ev.eval(body, elem)?;
                    Ok(())
                })?;
                acc
            }
            FeatureExpr::Max(seq, body) => {
                let mut acc: Option<f64> = None;
                self.for_each(seq, node, &mut |ev, elem| {
                    let v = ev.eval(body, elem)?;
                    acc = Some(match acc {
                        Some(a) => a.max(v),
                        None => v,
                    });
                    Ok(())
                })?;
                acc.unwrap_or(0.0)
            }
            FeatureExpr::Min(seq, body) => {
                let mut acc: Option<f64> = None;
                self.for_each(seq, node, &mut |ev, elem| {
                    let v = ev.eval(body, elem)?;
                    acc = Some(match acc {
                        Some(a) => a.min(v),
                        None => v,
                    });
                    Ok(())
                })?;
                acc.unwrap_or(0.0)
            }
            FeatureExpr::Avg(seq, body) => {
                let mut acc = 0.0;
                let mut n = 0usize;
                self.for_each(seq, node, &mut |ev, elem| {
                    acc += ev.eval(body, elem)?;
                    n += 1;
                    Ok(())
                })?;
                if n == 0 {
                    0.0
                } else {
                    acc / n as f64
                }
            }
            FeatureExpr::Arith(op, a, b) => {
                let a = self.eval(a, node)?;
                let b = self.eval(b, node)?;
                match op {
                    ArithOp::Add => a + b,
                    ArithOp::Sub => a - b,
                    ArithOp::Mul => a * b,
                    // Protected division (see ArithOp::Div docs).
                    ArithOp::Div => {
                        if b.abs() < 1e-12 {
                            0.0
                        } else {
                            a / b
                        }
                    }
                }
            }
            FeatureExpr::Neg(a) => -self.eval(a, node)?,
        };
        if v.is_finite() {
            Ok(v)
        } else {
            Err(EvalError::NonFinite)
        }
    }

    /// Evaluates a boolean predicate at `node`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Evaluator::eval`].
    pub fn eval_bool(&mut self, expr: &BoolExpr, node: &IrNode) -> Result<bool, EvalError> {
        self.step(1)?;
        Ok(match expr {
            BoolExpr::IsType(kind) => node.kind() == *kind,
            BoolExpr::HasAttr(name) => node.attr(*name).is_some(),
            BoolExpr::AttrEqEnum(name, value) => match node.attr(*name) {
                Some(AttrValue::Enum(v)) => v == *value,
                Some(AttrValue::Bool(b)) => {
                    // `@flag == true` / `@flag == false`
                    let (t, f) = bool_symbols();
                    (*value == t && b) || (*value == f && !b)
                }
                _ => false,
            },
            BoolExpr::AttrCmpNum(name, op, k) => match node.attr(*name).and_then(|a| a.as_num())
            {
                Some(v) => op.apply(v, *k),
                None => false,
            },
            BoolExpr::Cmp(op, a, b) => {
                let a = self.eval(a, node)?;
                let b = self.eval(b, node)?;
                op.apply(a, b)
            }
            BoolExpr::ChildMatches(idx, p) => match node.children().get(*idx) {
                Some(child) => self.eval_bool(p, child)?,
                None => false,
            },
            BoolExpr::Not(p) => !self.eval_bool(p, node)?,
            BoolExpr::And(a, b) => self.eval_bool(a, node)? && self.eval_bool(b, node)?,
            BoolExpr::Or(a, b) => self.eval_bool(a, node)? || self.eval_bool(b, node)?,
        })
    }

    /// Drives `f` over every node of the sequence `seq` relative to `node`.
    fn for_each(
        &mut self,
        seq: &SeqExpr,
        node: &IrNode,
        f: &mut dyn FnMut(&mut Evaluator, &IrNode) -> Result<(), EvalError>,
    ) -> Result<(), EvalError> {
        match seq {
            SeqExpr::Children => {
                for c in node.children() {
                    self.step(1)?;
                    f(self, c)?;
                }
                Ok(())
            }
            SeqExpr::Descendants => self.for_each_descendant(node, f),
            SeqExpr::Filter(inner, pred) => self.for_each(inner, node, &mut |ev, elem| {
                if ev.eval_bool(pred, elem)? {
                    f(ev, elem)?;
                }
                Ok(())
            }),
        }
    }

    fn for_each_descendant(
        &mut self,
        node: &IrNode,
        f: &mut dyn FnMut(&mut Evaluator, &IrNode) -> Result<(), EvalError>,
    ) -> Result<(), EvalError> {
        for c in node.children() {
            self.step(1)?;
            f(self, c)?;
            self.for_each_descendant(c, f)?;
        }
        Ok(())
    }
}

impl FeatureExpr {
    /// Evaluates the feature at `node` with the [`DEFAULT_BUDGET`].
    ///
    /// # Errors
    ///
    /// See [`Evaluator::eval`].
    ///
    /// ```
    /// use fegen_core::ir::IrNode;
    /// use fegen_core::lang::parse_feature;
    /// let ir = IrNode::build("loop", |l| {
    ///     l.child("insn", |_| {});
    ///     l.child("insn", |_| {});
    /// });
    /// let f = parse_feature("count(/*) * 10")?;
    /// assert_eq!(f.eval_default(&ir)?, 20.0);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn eval_default(&self, node: &IrNode) -> Result<f64, EvalError> {
        Evaluator::new(DEFAULT_BUDGET).eval(self, node)
    }

    /// Evaluates the feature at `node` with an explicit step budget.
    ///
    /// # Errors
    ///
    /// See [`Evaluator::eval`].
    pub fn eval_with_budget(&self, node: &IrNode, budget: u64) -> Result<f64, EvalError> {
        Evaluator::new(budget).eval(self, node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{IrNode, Symbol};
    use crate::lang::parse::parse_feature;

    fn sample_ir() -> IrNode {
        IrNode::build("loop", |l| {
            l.attr_num("num-iter", 49.0);
            l.child("basic-block", |b| {
                b.attr_num("loop-depth", 1.0);
                b.attr_bool("may-be-hot", true);
                b.child("insn", |i| {
                    i.attr_enum("mode", "SI");
                    i.child("set", |s| {
                        s.child("reg", |r| {
                            r.attr_enum("mode", "SI");
                        });
                        s.child("plus", |p| {
                            p.child("reg", |r| {
                                r.attr_enum("mode", "SI");
                            });
                            p.child("const_int", |c| {
                                c.attr_num("value", 4.0);
                            });
                        });
                    });
                });
                b.child("jump_insn", |_| {});
            });
        })
    }

    fn eval(src: &str) -> f64 {
        parse_feature(src).unwrap().eval_default(&sample_ir()).unwrap()
    }

    #[test]
    fn get_attr_reads_numeric_attr() {
        assert_eq!(eval("get-attr(@num-iter)"), 49.0);
    }

    #[test]
    fn get_attr_missing_is_zero() {
        assert_eq!(eval("get-attr(@no-such-attr)"), 0.0);
    }

    #[test]
    fn count_children_and_descendants() {
        assert_eq!(eval("count(/*)"), 1.0);
        assert_eq!(eval("count(//*)"), 8.0);
    }

    #[test]
    fn filter_by_type() {
        assert_eq!(eval("count(filter(//*, is-type(reg)))"), 2.0);
        assert_eq!(eval("count(filter(//*, is-type(insn)))"), 1.0);
    }

    #[test]
    fn filter_by_attr_equality() {
        assert_eq!(eval("count(filter(//*, @mode==SI))"), 3.0);
        assert_eq!(eval("count(filter(//*, @may-be-hot==true))"), 1.0);
        assert_eq!(eval("count(filter(//*, @loop-depth==1))"), 1.0);
    }

    #[test]
    fn has_attr_and_negation() {
        assert_eq!(eval("count(filter(//*, has-attr(@mode)))"), 3.0);
        assert_eq!(eval("count(filter(//*, !has-attr(@mode)))"), 5.0);
    }

    #[test]
    fn logical_connectives() {
        assert_eq!(
            eval("count(filter(//*, is-type(reg) || is-type(const_int)))"),
            3.0
        );
        assert_eq!(
            eval("count(filter(//*, is-type(reg) && @mode==SI))"),
            2.0
        );
    }

    #[test]
    fn child_matches_pattern() {
        // insn whose child 0 is a `set` whose child 0 is a reg.
        assert_eq!(
            eval("count(filter(//*, is-type(insn) && /[0][is-type(set) && /[0][is-type(reg)]]))"),
            1.0
        );
        // No node has a 7th child.
        assert_eq!(eval("count(filter(//*, /[7][is-type(reg)]))"), 0.0);
    }

    #[test]
    fn aggregates() {
        assert_eq!(
            eval("sum(filter(//*, is-type(const_int)), get-attr(@value))"),
            4.0
        );
        assert_eq!(eval("max(//*, count(/*))"), 2.0);
        assert_eq!(eval("min(//*, count(/*))"), 0.0);
        assert_eq!(eval("avg(filter(//*, is-type(basic-block)), count(/*))"), 2.0);
    }

    #[test]
    fn empty_aggregates_are_zero() {
        assert_eq!(eval("sum(filter(//*, is-type(nonexistent-kind)), 1)"), 0.0);
        assert_eq!(eval("max(filter(//*, is-type(nonexistent-kind)), 1)"), 0.0);
    }

    #[test]
    fn arithmetic_and_protected_division() {
        assert_eq!(eval("2 + 3 * 4"), 14.0);
        assert_eq!(eval("count(//*) / 2"), 4.0);
        // Division by zero is protected.
        assert_eq!(eval("5 / 0"), 0.0);
        assert_eq!(eval("-count(/*)"), -1.0);
    }

    #[test]
    fn numeric_comparison_in_filter() {
        // basic-block (2 children), set (2) and plus (2).
        assert_eq!(eval("count(filter(//*, count(/*) > 1))"), 3.0);
        assert_eq!(eval("count(filter(//*, 0.0 > count(/*)))"), 0.0);
    }

    #[test]
    fn budget_exhaustion_is_detected() {
        let ir = sample_ir();
        let f = parse_feature("sum(//*, sum(//*, count(//*)))").unwrap();
        // Tiny budget: must abort, not hang or return a partial value.
        assert_eq!(
            f.eval_with_budget(&ir, 10),
            Err(EvalError::BudgetExceeded)
        );
        // Large budget: fine.
        assert!(f.eval_with_budget(&ir, 1_000_000).is_ok());
    }

    #[test]
    fn enum_attr_has_no_numeric_view() {
        // get-attr on an enum attribute yields 0, not garbage.
        let ir = sample_ir();
        let f = FeatureExpr::GetAttr(Symbol::intern("mode"));
        let insn = &ir.children()[0].children()[0];
        assert_eq!(Evaluator::new(1000).eval(&f, insn).unwrap(), 0.0);
    }
}
