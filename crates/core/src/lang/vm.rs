//! The bytecode VM and the pooled evaluation engine.
//!
//! [`Vm`] executes a compiled [`Program`] over one [`IrArena`] with an
//! explicit frame stack for aggregates — no recursion, no pointer chasing,
//! no per-node allocation. It reproduces the interpreter in
//! [`super::eval`] **bit-for-bit**: same values (floating-point operations
//! in the same order), same [`EvalError`] outcomes, and the same
//! `BudgetExceeded` decision for every budget. The interpreter stays the
//! reference oracle; `tests/vm_differential.rs` enforces the equivalence on
//! generated features × generated trees.
//!
//! [`EvalPool`] is the engine the GP search uses: it flattens every
//! training loop into an arena **once**, compiles each candidate **once**
//! (memoised by structural fingerprint), and shares a CSE result cache of
//! `(steps, outcome)` pairs across candidates, loops and worker threads.
//! Cached entries are pure functions of their key, so racing inserts are
//! idempotent and results are invariant under thread count — the
//! determinism argument is spelled out in DESIGN.md §11.

use super::ast::{ArithOp, FeatureExpr, Fingerprint};
use super::compile::{
    AggKind, BoolView, CountMeta, FusedBody, Op, Program, PureAtom, PureExpr, PurePred,
};
use super::eval::EvalError;
use crate::faults::CancelToken;
use crate::ir::{AttrValue, IrArena, IrNode, Symbol};
use crate::telemetry::Telemetry;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One cached CSE result: the exact step cost of evaluating the subtree at
/// this loop, and its outcome. `BudgetExceeded` outcomes are **never**
/// cached — their step totals are truncated by the failing budget, so they
/// are not transferable to other budgets.
#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    steps: u64,
    /// `Ok(value)` or `Err(())` for `NonFinite`.
    outcome: Result<f64, ()>,
}

/// Shared CSE result cache keyed by `(subtree fingerprint, loop index)`.
///
/// Replaying a hit charges the recorded `steps` against the current budget
/// (failing with `BudgetExceeded` exactly when the interpreter would have
/// run out mid-subtree, since every interpreter charge is one unit and the
/// decision depends only on the running total), then yields the recorded
/// outcome.
#[derive(Debug, Default)]
struct EvalCache {
    map: RwLock<HashMap<(Fingerprint, u32), CacheEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Epoch-flush capacity bound: inserting past this clears the map. Entries
/// are pure functions of their key, so flushing only costs recomputation.
const RESULT_CACHE_CAP: usize = 1 << 20;

impl EvalCache {
    fn get(&self, key: Fingerprint, loop_idx: u32) -> Option<CacheEntry> {
        let entry = self.map.read().get(&(key, loop_idx)).copied();
        // Relaxed counters: observability only, never a decision input.
        match entry {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        entry
    }

    fn insert(&self, key: Fingerprint, loop_idx: u32, entry: CacheEntry) {
        let mut map = self.map.write();
        if map.len() >= RESULT_CACHE_CAP {
            map.clear();
        }
        map.insert((key, loop_idx), entry);
    }
}

/// An in-flight aggregate: iterator state plus the accumulator. The static
/// aggregate description is copied in at [`Op::AggStart`] so the
/// per-element hot path (`advance`, `AggAccum`) touches only this struct —
/// no side-table lookups.
#[derive(Debug, Clone, Copy)]
struct AggFrame {
    kind: AggKind,
    body_pc: u32,
    end_pc: u32,
    /// Next arena index to consider (children advance by sibling jump,
    /// descendants by `+1`).
    next: u32,
    /// Exclusive end of the iteration span.
    end: u32,
    children: bool,
    acc: f64,
    n: u64,
    started: bool,
    saved_ctx: u32,
}

/// An open CSE region (root-context aggregate being computed on a miss).
#[derive(Debug, Clone, Copy)]
struct CacheFrame {
    key: Fingerprint,
    entry_remaining: u64,
}

/// The bytecode interpreter. One instance per (program, loop) execution;
/// stacks are tiny (bounded by expression depth).
struct Vm<'a> {
    arena: &'a IrArena,
    remaining: u64,
    nums: Vec<f64>,
    bools: Vec<bool>,
    frames: Vec<AggFrame>,
    cache_frames: Vec<CacheFrame>,
    ctx_saves: Vec<u32>,
    ctx: u32,
}

impl<'a> Vm<'a> {
    /// Runs `prog` over `arena` with the given step budget, using `cache`
    /// (when provided) for CSE regions.
    fn run(
        prog: &Program,
        arena: &'a IrArena,
        loop_idx: u32,
        budget: u64,
        cache: Option<&EvalCache>,
    ) -> Result<f64, EvalError> {
        // Stacks start empty and allocate lazily on first push: most
        // programs touch only the numeric stack, and evals run once per
        // (feature, loop) pair, so avoided mallocs are a measurable share
        // of small-loop evaluation cost.
        let mut vm = Vm {
            arena,
            remaining: budget,
            nums: Vec::new(),
            bools: Vec::new(),
            frames: Vec::new(),
            cache_frames: Vec::new(),
            ctx_saves: Vec::new(),
            ctx: 0,
        };
        let result = vm.exec(prog, loop_idx, cache);
        // A NonFinite error inside an open CSE region is itself cacheable:
        // the steps burned up to the error are deterministic, and a replay
        // charges them before re-raising (matching the interpreter, which
        // does not zero the budget on NonFinite).
        if let (Err(EvalError::NonFinite), Some(c)) = (&result, cache) {
            for fr in &vm.cache_frames {
                let steps = fr.entry_remaining - vm.remaining;
                c.insert(
                    fr.key,
                    loop_idx,
                    CacheEntry {
                        steps,
                        outcome: Err(()),
                    },
                );
            }
        }
        result
    }

    /// Charges `cost` steps, mirroring `Evaluator::step` (including zeroing
    /// the remaining budget on failure).
    #[inline]
    fn charge(&mut self, cost: u64) -> Result<(), EvalError> {
        if self.remaining < cost {
            self.remaining = 0;
            return Err(EvalError::BudgetExceeded);
        }
        self.remaining -= cost;
        Ok(())
    }

    #[inline]
    fn push_num(&mut self, v: f64) -> Result<(), EvalError> {
        if !v.is_finite() {
            return Err(EvalError::NonFinite);
        }
        self.nums.push(v);
        Ok(())
    }

    #[inline]
    fn pop_num(&mut self) -> f64 {
        self.nums.pop().expect("numeric stack underflow")
    }

    #[inline]
    fn pop_bool(&mut self) -> bool {
        self.bools.pop().expect("boolean stack underflow")
    }

    fn exec(
        &mut self,
        prog: &Program,
        loop_idx: u32,
        cache: Option<&EvalCache>,
    ) -> Result<f64, EvalError> {
        let mut pc = 0usize;
        loop {
            match prog.ops[pc] {
                Op::Charge => {
                    self.charge(1)?;
                    pc += 1;
                }
                Op::PushConst(c) => {
                    self.charge(1)?;
                    self.push_num(c)?;
                    pc += 1;
                }
                Op::LoadAttr(name) => {
                    self.charge(1)?;
                    let v = self
                        .arena
                        .attr(self.ctx, name)
                        .and_then(|a| a.as_num())
                        .unwrap_or(0.0);
                    self.push_num(v)?;
                    pc += 1;
                }
                Op::Arith(op) => {
                    let b = self.pop_num();
                    let a = self.pop_num();
                    let v = match op {
                        ArithOp::Add => a + b,
                        ArithOp::Sub => a - b,
                        ArithOp::Mul => a * b,
                        ArithOp::Div => {
                            if b.abs() < 1e-12 {
                                0.0
                            } else {
                                a / b
                            }
                        }
                    };
                    self.push_num(v)?;
                    pc += 1;
                }
                Op::Neg => {
                    let v = -self.pop_num();
                    self.push_num(v)?;
                    pc += 1;
                }
                Op::IsType(kind) => {
                    self.charge(1)?;
                    self.bools.push(self.arena.kind(self.ctx) == kind);
                    pc += 1;
                }
                Op::HasAttr(name) => {
                    self.charge(1)?;
                    self.bools.push(self.arena.attr(self.ctx, name).is_some());
                    pc += 1;
                }
                Op::AttrEqEnum(name, target, view) => {
                    self.charge(1)?;
                    let b = attr_eq(self.arena, self.ctx, name, target, view);
                    self.bools.push(b);
                    pc += 1;
                }
                Op::AttrCmpNum(name, op, k) => {
                    self.charge(1)?;
                    let b = match self.arena.attr(self.ctx, name).and_then(|a| a.as_num()) {
                        Some(v) => op.apply(v, k),
                        None => false,
                    };
                    self.bools.push(b);
                    pc += 1;
                }
                Op::CmpNum(op) => {
                    let b = self.pop_num();
                    let a = self.pop_num();
                    self.bools.push(op.apply(a, b));
                    pc += 1;
                }
                Op::NotBool => {
                    let b = !self.pop_bool();
                    self.bools.push(b);
                    pc += 1;
                }
                Op::AndJump(target) => {
                    let b = self.pop_bool();
                    if b {
                        pc += 1;
                    } else {
                        self.bools.push(false);
                        pc = target as usize;
                    }
                }
                Op::OrJump(target) => {
                    let b = self.pop_bool();
                    if b {
                        self.bools.push(true);
                        pc = target as usize;
                    } else {
                        pc += 1;
                    }
                }
                Op::ChildCtx { idx, skip } => {
                    self.charge(1)?;
                    match self.arena.nth_child(self.ctx, idx as usize) {
                        Some(child) => {
                            self.ctx_saves.push(self.ctx);
                            self.ctx = child;
                            pc += 1;
                        }
                        None => {
                            self.bools.push(false);
                            pc = skip as usize;
                        }
                    }
                }
                Op::PopCtx => {
                    self.ctx = self.ctx_saves.pop().expect("context stack underflow");
                    pc += 1;
                }
                Op::AggStart(meta_idx) => {
                    self.charge(1)?;
                    let meta = &prog.aggs[meta_idx as usize];
                    self.frames.push(AggFrame {
                        kind: meta.kind,
                        body_pc: meta.body_pc,
                        end_pc: meta.end_pc,
                        next: self.ctx + 1,
                        end: self.arena.subtree_end(self.ctx),
                        children: meta.children_base,
                        acc: 0.0,
                        n: 0,
                        started: false,
                        saved_ctx: self.ctx,
                    });
                    self.advance(&mut pc)?;
                }
                Op::PredGate => {
                    if self.pop_bool() {
                        pc += 1;
                    } else {
                        self.advance(&mut pc)?;
                    }
                }
                Op::AggAccum => {
                    let kind = self.frames.last().expect("aggregate frame underflow").kind;
                    match kind {
                        AggKind::Count => {
                            self.frames.last_mut().expect("frame").n += 1;
                        }
                        AggKind::Sum => {
                            let v = self.pop_num();
                            self.frames.last_mut().expect("frame").acc += v;
                        }
                        AggKind::Max => {
                            let v = self.pop_num();
                            let f = self.frames.last_mut().expect("frame");
                            f.acc = if f.started { f.acc.max(v) } else { v };
                            f.started = true;
                        }
                        AggKind::Min => {
                            let v = self.pop_num();
                            let f = self.frames.last_mut().expect("frame");
                            f.acc = if f.started { f.acc.min(v) } else { v };
                            f.started = true;
                        }
                        AggKind::Avg => {
                            let v = self.pop_num();
                            let f = self.frames.last_mut().expect("frame");
                            f.acc += v;
                            f.n += 1;
                        }
                    }
                    self.advance(&mut pc)?;
                }
                Op::CountIndexed(meta_idx) => {
                    self.count_indexed(prog, meta_idx)?;
                    pc += 1;
                }
                Op::AggFused(meta_idx) => {
                    self.agg_fused(prog, meta_idx)?;
                    pc += 1;
                }
                Op::CacheBegin { key_idx, end } => match cache {
                    Some(c) => {
                        let key = prog.keys[key_idx as usize];
                        match c.get(key, loop_idx) {
                            Some(entry) => {
                                self.charge(entry.steps)?;
                                match entry.outcome {
                                    Ok(v) => {
                                        self.nums.push(v);
                                        pc = end as usize;
                                    }
                                    Err(()) => return Err(EvalError::NonFinite),
                                }
                            }
                            None => {
                                self.cache_frames.push(CacheFrame {
                                    key,
                                    entry_remaining: self.remaining,
                                });
                                pc += 1;
                            }
                        }
                    }
                    None => pc += 1,
                },
                Op::CacheEnd => {
                    if let Some(c) = cache {
                        let fr = self
                            .cache_frames
                            .pop()
                            .expect("CacheEnd without open region");
                        let steps = fr.entry_remaining - self.remaining;
                        let v = *self.nums.last().expect("cached region left no value");
                        c.insert(
                            fr.key,
                            loop_idx,
                            CacheEntry {
                                steps,
                                outcome: Ok(v),
                            },
                        );
                    }
                    pc += 1;
                }
                Op::Return => return Ok(self.pop_num()),
            }
        }
    }

    /// Yields the next element of the top aggregate frame (charging one
    /// step per element, as the interpreter's `for_each` does) or, when the
    /// iteration is exhausted, finalizes the aggregate value.
    fn advance(&mut self, pc: &mut usize) -> Result<(), EvalError> {
        let arena = self.arena;
        let f = self.frames.last_mut().expect("aggregate frame underflow");
        if f.next < f.end {
            let cur = f.next;
            f.next = if f.children {
                arena.subtree_end(cur)
            } else {
                cur + 1
            };
            let body_pc = f.body_pc;
            self.charge(1)?;
            self.ctx = cur;
            *pc = body_pc as usize;
            Ok(())
        } else {
            let f = self.frames.pop().expect("aggregate frame underflow");
            let v = match f.kind {
                AggKind::Count => f.n as f64,
                AggKind::Sum => f.acc,
                AggKind::Max | AggKind::Min => {
                    if f.started {
                        f.acc
                    } else {
                        0.0
                    }
                }
                AggKind::Avg => {
                    if f.n == 0 {
                        0.0
                    } else {
                        f.acc / f.n as f64
                    }
                }
            };
            self.ctx = f.saved_ctx;
            self.push_num(v)?;
            *pc = f.end_pc as usize;
            Ok(())
        }
    }

    /// Indexed `count`: computes the exact step total the interpreter would
    /// charge (every interpreter charge is one unit, so the `BudgetExceeded`
    /// decision depends only on the total) plus the count — from the arena's
    /// postings lists for single atoms, or a scan with short-circuit step
    /// accounting for predicate trees — then charges in bulk. Pure
    /// predicates cannot raise `NonFinite`, so no error-ordering concern
    /// arises.
    fn count_indexed(&mut self, prog: &Program, meta_idx: u32) -> Result<(), EvalError> {
        let meta = &prog.counts[meta_idx as usize];
        let (total_cost, value) = indexed_count_at(self.arena, self.ctx, meta);
        self.charge(total_cost)?;
        // Counts are always finite; push directly.
        self.nums.push(value as f64);
        Ok(())
    }

    /// Fused aggregate: iterates the elements in one tight loop, evaluating
    /// pure predicates and the leaf body directly while accumulating the
    /// exact step total, then charges in bulk. The only mid-iteration error
    /// the interpreter could raise is `NonFinite` from a body value; at
    /// that point the steps charged so far decide between `BudgetExceeded`
    /// (if they already exhaust the budget) and `NonFinite` — identical to
    /// the interpreter's charge-then-check order.
    fn agg_fused(&mut self, prog: &Program, meta_idx: u32) -> Result<(), EvalError> {
        let meta = &prog.fused[meta_idx as usize];
        let arena = self.arena;
        let ctx = self.ctx;
        // The aggregate node's own entry charge.
        let mut steps = 1u64;
        let mut acc = 0.0f64;
        let mut n = 0u64;
        let mut started = false;
        // Block-scoped so the closure's borrows of the accumulators end
        // before the finalisation below reads them.
        let result = {
            let mut element = |j: u32, steps: &mut u64| -> Result<(), EvalError> {
                *steps += 1; // the per-element `for_each` charge
                for p in &meta.preds {
                    let holds = match p {
                        PurePred::Atom {
                            atom,
                            negated,
                            cost,
                        } => {
                            *steps += cost;
                            pure_atom_matches(arena, j, atom) != *negated
                        }
                        PurePred::Tree { expr, kinds } => match kinds {
                            Some(table) => {
                                let k = arena.kind(j);
                                let (matched, cost) = table
                                    .entries
                                    .iter()
                                    .find(|&&(s, ..)| s == k)
                                    .map_or(table.default, |&(_, m, c)| (m, c));
                                *steps += cost;
                                matched
                            }
                            None => eval_pure(arena, j, expr, steps),
                        },
                    };
                    if !holds {
                        return Ok(());
                    }
                }
                let v = match &meta.body {
                    FusedBody::None => {
                        n += 1;
                        return Ok(());
                    }
                    FusedBody::Const(c) => {
                        *steps += 1;
                        *c
                    }
                    FusedBody::Attr(a) => {
                        *steps += 1;
                        arena.attr(j, *a).and_then(|x| x.as_num()).unwrap_or(0.0)
                    }
                    FusedBody::Count(cm) => {
                        let (cost, m) = indexed_count_at(arena, j, cm);
                        *steps += cost;
                        m as f64
                    }
                };
                if !v.is_finite() {
                    return Err(EvalError::NonFinite);
                }
                match meta.kind {
                    AggKind::Count => n += 1,
                    AggKind::Sum => acc += v,
                    AggKind::Max => {
                        acc = if started { acc.max(v) } else { v };
                        started = true;
                    }
                    AggKind::Min => {
                        acc = if started { acc.min(v) } else { v };
                        started = true;
                    }
                    AggKind::Avg => {
                        acc += v;
                        n += 1;
                    }
                }
                Ok(())
            };
            if meta.children_base {
                arena.children(ctx).try_for_each(|j| element(j, &mut steps))
            } else {
                (ctx + 1..arena.subtree_end(ctx)).try_for_each(|j| element(j, &mut steps))
            }
        };
        if let Err(e) = result {
            // Charge what the interpreter would have charged before the
            // error; running out first wins, exactly as `charge` encodes.
            self.charge(steps)?;
            return Err(e);
        }
        self.charge(steps)?;
        let v = match meta.kind {
            AggKind::Count => n as f64,
            AggKind::Sum => acc,
            AggKind::Max | AggKind::Min => {
                if started {
                    acc
                } else {
                    0.0
                }
            }
            AggKind::Avg => {
                if n == 0 {
                    0.0
                } else {
                    acc / n as f64
                }
            }
        };
        self.push_num(v)?;
        Ok(())
    }
}

/// Computes one indexed-count site at context node `ctx`: the exact step
/// total the interpreter would charge and the matching-element count.
fn indexed_count_at(arena: &IrArena, ctx: u32, meta: &CountMeta) -> (u64, u64) {
    if meta.children_base {
        let c = u64::from(arena.child_count(ctx));
        match &meta.pred {
            None => (1 + c, c),
            Some(PurePred::Atom {
                atom,
                negated,
                cost,
            }) => {
                let mut m = 0u64;
                for j in arena.children(ctx) {
                    if pure_atom_matches(arena, j, atom) {
                        m += 1;
                    }
                }
                let m = if *negated { c - m } else { m };
                (1 + c * (1 + cost), m)
            }
            Some(PurePred::Tree { expr, .. }) => {
                let mut steps = 0u64;
                let mut m = 0u64;
                for j in arena.children(ctx) {
                    steps += 1; // the per-element `for_each` charge
                    if eval_pure(arena, j, expr, &mut steps) {
                        m += 1;
                    }
                }
                (1 + steps, m)
            }
        }
    } else {
        let d = u64::from(arena.descendant_count(ctx));
        let (lo, hi) = (ctx + 1, arena.subtree_end(ctx));
        match &meta.pred {
            None => (1 + d, d),
            Some(PurePred::Atom {
                atom,
                negated,
                cost,
            }) => {
                let m = match *atom {
                    PureAtom::IsType(k) => u64::from(arena.count_kind_in(k, lo, hi)),
                    PureAtom::HasAttr(a) => u64::from(arena.count_attr_in(a, lo, hi)),
                    PureAtom::AttrEq(a, v, view) => arena
                        .attr_nodes_in(a, lo, hi)
                        .iter()
                        .filter(|&&j| attr_eq(arena, j, a, v, view))
                        .count() as u64,
                    PureAtom::AttrCmp(a, op, k) => arena
                        .attr_nodes_in(a, lo, hi)
                        .iter()
                        .filter(|&&j| {
                            matches!(
                                arena.attr(j, a).and_then(|x| x.as_num()),
                                Some(v) if op.apply(v, k)
                            )
                        })
                        .count() as u64,
                };
                let m = if *negated { d - m } else { m };
                (1 + d * (1 + cost), m)
            }
            Some(PurePred::Tree { expr, kinds }) => {
                let mut steps = 0u64;
                let mut m = 0u64;
                if let Some(table) = kinds {
                    // Kinds-only tree: verdict and cost were tabled at
                    // compile time, so the scan is one kind load and a
                    // probe of a few mentioned kinds per element.
                    for j in lo..hi {
                        let k = arena.kind(j);
                        let (matched, cost) = table
                            .entries
                            .iter()
                            .find(|&&(s, ..)| s == k)
                            .map_or(table.default, |&(_, matched, cost)| (matched, cost));
                        steps += 1 + cost;
                        if matched {
                            m += 1;
                        }
                    }
                } else {
                    for j in lo..hi {
                        steps += 1; // the per-element `for_each` charge
                        if eval_pure(arena, j, expr, &mut steps) {
                            m += 1;
                        }
                    }
                }
                (1 + steps, m)
            }
        }
    }
}

/// The `@a == V` test over arena node `j` (enum by symbol; bool via the
/// compile-time [`BoolView`]; numeric or missing attributes never match).
fn attr_eq(arena: &IrArena, j: u32, name: Symbol, target: Symbol, view: BoolView) -> bool {
    match arena.attr(j, name) {
        Some(AttrValue::Enum(v)) => v == target,
        Some(AttrValue::Bool(b)) => match view {
            BoolView::True => b,
            BoolView::False => !b,
            BoolView::NotBool => false,
        },
        _ => false,
    }
}

/// Evaluates a pure predicate tree at arena node `j`, accumulating into
/// `steps` exactly the unit charges the interpreter would make: one per
/// predicate node entered, with `&&`/`||` short-circuiting and a missing
/// child probe skipping its inner predicate.
fn eval_pure(arena: &IrArena, j: u32, e: &PureExpr, steps: &mut u64) -> bool {
    *steps += 1;
    match e {
        PureExpr::Atom(a) => pure_atom_matches(arena, j, a),
        PureExpr::Not(inner) => !eval_pure(arena, j, inner, steps),
        PureExpr::And(a, b) => eval_pure(arena, j, a, steps) && eval_pure(arena, j, b, steps),
        PureExpr::Or(a, b) => eval_pure(arena, j, a, steps) || eval_pure(arena, j, b, steps),
        PureExpr::Child(idx, inner) => match arena.nth_child(j, *idx as usize) {
            Some(child) => eval_pure(arena, child, inner, steps),
            None => false,
        },
    }
}

fn pure_atom_matches(arena: &IrArena, j: u32, atom: &PureAtom) -> bool {
    match *atom {
        PureAtom::IsType(k) => arena.kind(j) == k,
        PureAtom::HasAttr(a) => arena.attr(j, a).is_some(),
        PureAtom::AttrEq(a, v, view) => attr_eq(arena, j, a, v, view),
        PureAtom::AttrCmp(a, op, k) => {
            matches!(arena.attr(j, a).and_then(|x| x.as_num()), Some(v) if op.apply(v, k))
        }
    }
}

impl Program {
    /// Executes the compiled feature over one arena with the given step
    /// budget, without a CSE cache.
    ///
    /// # Errors
    ///
    /// Same conditions as [`super::Evaluator::eval`].
    pub fn eval(&self, arena: &IrArena, budget: u64) -> Result<f64, EvalError> {
        Vm::run(self, arena, 0, budget, None)
    }
}

/// Which engine an [`EvalPool`] (and the search built on it) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalEngine {
    /// The compiled bytecode VM over arena-flattened loops (default).
    #[default]
    Compiled,
    /// The recursive reference interpreter in [`super::eval`].
    Interpreter,
}

/// Epoch-flush bound for the compiled-program cache.
const PROGRAM_CACHE_CAP: usize = 1 << 16;

/// A batch evaluation engine over a fixed set of loops.
///
/// Construction flattens every loop into an [`IrArena`] once; evaluation
/// compiles each distinct feature once (memoised by structural fingerprint)
/// and shares CSE results across features, loops and threads. With
/// [`EvalEngine::Interpreter`] the pool delegates to the reference
/// interpreter instead — byte-identical results, just slower; the GP search
/// exposes this as a runtime choice precisely so the equivalence is
/// testable end-to-end.
pub struct EvalPool<'a> {
    trees: Vec<&'a IrNode>,
    arenas: Vec<IrArena>,
    engine: EvalEngine,
    cache: EvalCache,
    programs: RwLock<HashMap<Fingerprint, Arc<Program>>>,
    cancel: Option<CancelToken>,
    vm_evals: AtomicU64,
    interp_evals: AtomicU64,
    program_hits: AtomicU64,
    program_misses: AtomicU64,
}

/// A point-in-time snapshot of an [`EvalPool`]'s cumulative activity
/// counters (observability only; counting never affects evaluation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Per-loop evaluations dispatched to the bytecode VM.
    pub vm_evals: u64,
    /// Per-loop evaluations dispatched to the reference interpreter.
    pub interp_evals: u64,
    /// Compiled-program cache hits.
    pub program_hits: u64,
    /// Compiled-program cache misses (compilations).
    pub program_misses: u64,
    /// CSE result-cache hits.
    pub result_hits: u64,
    /// CSE result-cache misses.
    pub result_misses: u64,
    /// Live CSE cache entries at snapshot time.
    pub cache_entries: u64,
}

impl<'a> EvalPool<'a> {
    /// Builds a pool over `trees` using the given engine.
    pub fn new(trees: impl IntoIterator<Item = &'a IrNode>, engine: EvalEngine) -> EvalPool<'a> {
        let trees: Vec<&IrNode> = trees.into_iter().collect();
        let arenas = match engine {
            EvalEngine::Compiled => trees.iter().map(|t| IrArena::from_tree(t)).collect(),
            EvalEngine::Interpreter => Vec::new(),
        };
        EvalPool {
            trees,
            arenas,
            engine,
            cache: EvalCache::default(),
            programs: RwLock::new(HashMap::new()),
            cancel: None,
            vm_evals: AtomicU64::new(0),
            interp_evals: AtomicU64::new(0),
            program_hits: AtomicU64::new(0),
            program_misses: AtomicU64::new(0),
        }
    }

    /// The engine this pool evaluates with.
    pub fn engine(&self) -> EvalEngine {
        self.engine
    }

    /// Number of loops in the pool.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// True when the pool holds no loops.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Returns the compiled program for `expr`, compiling at most once per
    /// distinct structure.
    fn program(&self, expr: &FeatureExpr) -> Arc<Program> {
        let key = expr.fingerprint();
        if let Some(p) = self.programs.read().get(&key) {
            self.program_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(p);
        }
        self.program_misses.fetch_add(1, Ordering::Relaxed);
        let compiled = Arc::new(Program::compile(expr));
        let mut programs = self.programs.write();
        if programs.len() >= PROGRAM_CACHE_CAP {
            programs.clear();
        }
        Arc::clone(programs.entry(key).or_insert(compiled))
    }

    /// Evaluates `expr` on loop `idx` with the given budget.
    ///
    /// # Errors
    ///
    /// Same conditions as [`super::Evaluator::eval`]; identical outcomes
    /// for both engines.
    pub fn eval(&self, expr: &FeatureExpr, idx: usize, budget: u64) -> Result<f64, EvalError> {
        match self.engine {
            EvalEngine::Interpreter => {
                self.interp_evals.fetch_add(1, Ordering::Relaxed);
                expr.eval_with_budget(self.trees[idx], budget)
            }
            EvalEngine::Compiled => {
                self.vm_evals.fetch_add(1, Ordering::Relaxed);
                let prog = self.program(expr);
                Vm::run(
                    &prog,
                    &self.arenas[idx],
                    idx as u32,
                    budget,
                    Some(&self.cache),
                )
            }
        }
    }

    /// Installs a cancellation token consulted by
    /// [`EvalPool::column_cancellable`]: a coordinator-initiated shutdown
    /// then interrupts an in-flight column between loops instead of
    /// waiting it out. Plain [`EvalPool::column`] is deliberately *not*
    /// affected — resume-time column recomputation and accept-path
    /// re-derivation must never be perturbed by cancellation timing.
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = Some(cancel);
    }

    /// Evaluates `expr` over every loop, applying the paper's discard rule:
    /// `None` as soon as any loop fails (budget exhaustion or non-finite
    /// value), otherwise the per-loop feature column.
    pub fn column(&self, expr: &FeatureExpr, budget: u64) -> Option<Vec<f64>> {
        self.column_inner(expr, budget, false)
    }

    /// [`EvalPool::column`], but bails out (returning `None`) between
    /// loops once the installed cancellation token flips. Only safe where
    /// a spurious `None` is discarded wholesale — the GP fitness path
    /// gates commits on the token, so a cancelled column can never be
    /// memoised as a genuine failure.
    pub fn column_cancellable(&self, expr: &FeatureExpr, budget: u64) -> Option<Vec<f64>> {
        self.column_inner(expr, budget, true)
    }

    fn column_inner(&self, expr: &FeatureExpr, budget: u64, cancellable: bool) -> Option<Vec<f64>> {
        let cancelled = || {
            cancellable && self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
        };
        match self.engine {
            EvalEngine::Interpreter => {
                self.interp_evals
                    .fetch_add(self.trees.len() as u64, Ordering::Relaxed);
                let mut out = Vec::with_capacity(self.trees.len());
                for t in &self.trees {
                    if cancelled() {
                        return None;
                    }
                    out.push(expr.eval_with_budget(t, budget).ok()?);
                }
                Some(out)
            }
            EvalEngine::Compiled => {
                let prog = self.program(expr);
                let mut out = Vec::with_capacity(self.arenas.len());
                for (i, arena) in self.arenas.iter().enumerate() {
                    if cancelled() {
                        return None;
                    }
                    self.vm_evals.fetch_add(1, Ordering::Relaxed);
                    match Vm::run(&prog, arena, i as u32, budget, Some(&self.cache)) {
                        Ok(v) => out.push(v),
                        Err(_) => return None,
                    }
                }
                Some(out)
            }
        }
    }

    /// Number of live CSE cache entries (diagnostics).
    pub fn cache_entries(&self) -> usize {
        self.cache.map.read().len()
    }

    /// Snapshot of the pool's cumulative activity counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            vm_evals: self.vm_evals.load(Ordering::Relaxed),
            interp_evals: self.interp_evals.load(Ordering::Relaxed),
            program_hits: self.program_hits.load(Ordering::Relaxed),
            program_misses: self.program_misses.load(Ordering::Relaxed),
            result_hits: self.cache.hits.load(Ordering::Relaxed),
            result_misses: self.cache.misses.load(Ordering::Relaxed),
            cache_entries: self.cache_entries() as u64,
        }
    }

    /// Publishes the pool's counters as `eval.*` telemetry gauges (the
    /// caller decides when to [`Telemetry::emit_metrics`]).
    pub fn record_telemetry(&self, telemetry: &Telemetry) {
        if !telemetry.is_enabled() {
            return;
        }
        let s = self.stats();
        telemetry.gauge_set("eval.vm_evals", s.vm_evals as f64);
        telemetry.gauge_set("eval.interp_evals", s.interp_evals as f64);
        telemetry.gauge_set("eval.program_hits", s.program_hits as f64);
        telemetry.gauge_set("eval.program_misses", s.program_misses as f64);
        telemetry.gauge_set("eval.result_hits", s.result_hits as f64);
        telemetry.gauge_set("eval.result_misses", s.result_misses as f64);
        telemetry.gauge_set("eval.cache_entries", s.cache_entries as f64);
    }
}

impl std::fmt::Debug for EvalPool<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalPool")
            .field("loops", &self.trees.len())
            .field("engine", &self.engine)
            .field("cache_entries", &self.cache_entries())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::IrNode;
    use crate::lang::eval::DEFAULT_BUDGET;
    use crate::lang::parse::parse_feature;

    fn sample_ir() -> IrNode {
        IrNode::build("loop", |l| {
            l.attr_num("num-iter", 49.0);
            l.child("basic-block", |b| {
                b.attr_num("loop-depth", 1.0);
                b.attr_bool("may-be-hot", true);
                b.child("insn", |i| {
                    i.attr_enum("mode", "SI");
                    i.child("set", |s| {
                        s.child("reg", |r| {
                            r.attr_enum("mode", "SI");
                        });
                        s.child("plus", |p| {
                            p.child("reg", |r| {
                                r.attr_enum("mode", "SI");
                            });
                            p.child("const_int", |c| {
                                c.attr_num("value", 4.0);
                            });
                        });
                    });
                });
                b.child("jump_insn", |_| {});
            });
        })
    }

    /// Every expression the interpreter's test battery exercises must agree
    /// between VM and interpreter — value, error and remaining-budget
    /// decisions alike.
    const BATTERY: &[&str] = &[
        "get-attr(@num-iter)",
        "get-attr(@no-such-attr)",
        "count(/*)",
        "count(//*)",
        "count(filter(//*, is-type(reg)))",
        "count(filter(//*, is-type(insn)))",
        "count(filter(//*, @mode==SI))",
        "count(filter(//*, @may-be-hot==true))",
        "count(filter(//*, @loop-depth==1))",
        "count(filter(//*, has-attr(@mode)))",
        "count(filter(//*, !has-attr(@mode)))",
        "count(filter(//*, is-type(reg) || is-type(const_int)))",
        "count(filter(//*, is-type(reg) && @mode==SI))",
        "count(filter(//*, is-type(insn) && /[0][is-type(set) && /[0][is-type(reg)]]))",
        "count(filter(//*, /[7][is-type(reg)]))",
        "sum(filter(//*, is-type(const_int)), get-attr(@value))",
        "max(//*, count(/*))",
        "min(//*, count(/*))",
        "avg(filter(//*, is-type(basic-block)), count(/*))",
        "sum(filter(//*, is-type(nonexistent-kind)), 1)",
        "max(filter(//*, is-type(nonexistent-kind)), 1)",
        "2 + 3 * 4",
        "count(//*) / 2",
        "5 / 0",
        "-count(/*)",
        "count(filter(//*, count(/*) > 1))",
        "count(filter(//*, 0.0 > count(/*)))",
        "sum(//*, sum(//*, count(//*)))",
        "avg(//*, get-attr(@value) * 2 - 1)",
        "min(filter(/*, has-attr(@loop-depth)), get-attr(@loop-depth))",
    ];

    #[test]
    fn vm_matches_interpreter_on_battery() {
        let ir = sample_ir();
        let arena = IrArena::from_tree(&ir);
        for src in BATTERY {
            let f = parse_feature(src).unwrap();
            let prog = Program::compile(&f);
            let want = f.eval_with_budget(&ir, DEFAULT_BUDGET);
            let got = prog.eval(&arena, DEFAULT_BUDGET);
            assert_eq!(got, want, "mismatch on {src}");
        }
    }

    #[test]
    fn vm_matches_interpreter_at_every_budget_boundary() {
        let ir = sample_ir();
        let arena = IrArena::from_tree(&ir);
        for src in BATTERY {
            let f = parse_feature(src).unwrap();
            let prog = Program::compile(&f);
            // Find the exact step cost with a generous budget, then probe
            // every interesting boundary.
            let spent = {
                let mut ev = crate::lang::Evaluator::new(DEFAULT_BUDGET);
                let _ = ev.eval(&f, &ir);
                DEFAULT_BUDGET - ev.remaining()
            };
            for budget in [0, 1, spent.saturating_sub(1), spent, spent + 1] {
                let want = f.eval_with_budget(&ir, budget);
                let got = prog.eval(&arena, budget);
                assert_eq!(got, want, "mismatch on {src} at budget {budget}");
            }
        }
    }

    #[test]
    fn pool_column_matches_interpreter_and_caches() {
        let irs: Vec<IrNode> = (0..4)
            .map(|i| {
                let mut ir = sample_ir();
                ir.attr_num("num-iter", 10.0 + i as f64);
                ir
            })
            .collect();
        let pool = EvalPool::new(irs.iter(), EvalEngine::Compiled);
        let oracle = EvalPool::new(irs.iter(), EvalEngine::Interpreter);
        for src in BATTERY {
            let f = parse_feature(src).unwrap();
            assert_eq!(
                pool.column(&f, DEFAULT_BUDGET),
                oracle.column(&f, DEFAULT_BUDGET),
                "column mismatch on {src}"
            );
        }
        // Root aggregates of the battery populated the CSE cache; replaying
        // the battery must hit it and still agree.
        assert!(pool.cache_entries() > 0);
        for src in BATTERY {
            let f = parse_feature(src).unwrap();
            assert_eq!(
                pool.column(&f, DEFAULT_BUDGET),
                oracle.column(&f, DEFAULT_BUDGET),
                "cached column mismatch on {src}"
            );
        }
    }

    #[test]
    fn non_finite_results_are_detected_and_cached() {
        let ir = sample_ir();
        let huge = format!("sum(//*, {0} * {0})", f64::MAX);
        let f = parse_feature(&huge).unwrap();
        let pool = EvalPool::new([&ir], EvalEngine::Compiled);
        assert_eq!(pool.eval(&f, 0, DEFAULT_BUDGET), Err(EvalError::NonFinite));
        // The failing aggregate is cached as NonFinite with its step cost;
        // a replay must agree with the interpreter at tight budgets too.
        for budget in [0, 1, 5, 10, DEFAULT_BUDGET] {
            assert_eq!(
                pool.eval(&f, 0, budget),
                f.eval_with_budget(&ir, budget),
                "budget {budget}"
            );
        }
    }

    #[test]
    fn cache_reuse_preserves_budget_decisions() {
        let ir = sample_ir();
        let f = parse_feature("sum(//*, count(//*))").unwrap();
        let pool = EvalPool::new([&ir], EvalEngine::Compiled);
        // Warm the cache with a generous budget.
        let spent = {
            let mut ev = crate::lang::Evaluator::new(DEFAULT_BUDGET);
            let _ = ev.eval(&f, &ir);
            DEFAULT_BUDGET - ev.remaining()
        };
        assert!(pool.eval(&f, 0, DEFAULT_BUDGET).is_ok());
        // Replays at boundary budgets must match the interpreter exactly:
        // below the recorded cost the cache hit must fail with
        // BudgetExceeded, at or above it must succeed.
        for budget in [0, spent - 1, spent, spent + 1] {
            assert_eq!(
                pool.eval(&f, 0, budget),
                f.eval_with_budget(&ir, budget),
                "budget {budget}"
            );
        }
    }
}
