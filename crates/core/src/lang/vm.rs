//! The bytecode VM and the pooled evaluation engine.
//!
//! [`Vm`] executes a compiled [`Program`] over one [`IrArena`] with an
//! explicit frame stack for aggregates — no recursion, no pointer chasing,
//! no per-node allocation. It reproduces the interpreter in
//! [`super::eval`] **bit-for-bit**: same values (floating-point operations
//! in the same order), same [`EvalError`] outcomes, and the same
//! `BudgetExceeded` decision for every budget. The interpreter stays the
//! reference oracle; `tests/vm_differential.rs` enforces the equivalence on
//! generated features × generated trees.
//!
//! [`EvalPool`] is the engine the GP search uses: it flattens every
//! training loop into an arena **once**, compiles each candidate **once**
//! (memoised by structural fingerprint), and shares a CSE result cache of
//! `(steps, outcome)` pairs across candidates, loops and worker threads.
//! Cached entries are pure functions of their key, so racing inserts are
//! idempotent and results are invariant under thread count — the
//! determinism argument is spelled out in DESIGN.md §11.

use super::ast::{ArithOp, CmpOp, FeatureExpr, Fingerprint};
use super::compile::{
    AggKind, BoolView, CountMeta, CoverSrc, FusedAggMeta, FusedBody, LeafArg, Op, PlanAgg,
    PlanBool, PlanExpr, PlanPred, Program, ProgramPath, PureAtom, PureExpr, PurePred,
};
use super::eval::EvalError;
use crate::faults::CancelToken;
use crate::ir::{AttrValue, IrArena, IrNode, Symbol};
use crate::lru::LruCache;
use crate::telemetry::Telemetry;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One cached CSE result: the exact step cost of evaluating the subtree at
/// this loop, and its outcome. `BudgetExceeded` outcomes are **never**
/// cached — their step totals are truncated by the failing budget, so they
/// are not transferable to other budgets.
#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    steps: u64,
    /// `Ok(value)` or `Err(())` for `NonFinite`.
    outcome: Result<f64, ()>,
}

/// Shared CSE result cache keyed by `(subtree fingerprint, loop index)`.
///
/// Replaying a hit charges the recorded `steps` against the current budget
/// (failing with `BudgetExceeded` exactly when the interpreter would have
/// run out mid-subtree, since every interpreter charge is one unit and the
/// decision depends only on the running total), then yields the recorded
/// outcome.
#[derive(Debug, Default)]
struct EvalCache {
    map: RwLock<HashMap<(Fingerprint, u32), CacheEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Epoch-flush capacity bound: inserting past this clears the map. Entries
/// are pure functions of their key, so flushing only costs recomputation.
const RESULT_CACHE_CAP: usize = 1 << 20;

impl EvalCache {
    fn get(&self, key: Fingerprint, loop_idx: u32) -> Option<CacheEntry> {
        let entry = self.map.read().get(&(key, loop_idx)).copied();
        // Relaxed counters: observability only, never a decision input.
        match entry {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        entry
    }

    fn insert(&self, key: Fingerprint, loop_idx: u32, entry: CacheEntry) {
        let mut map = self.map.write();
        if map.len() >= RESULT_CACHE_CAP {
            map.clear();
        }
        map.insert((key, loop_idx), entry);
    }
}

/// An in-flight aggregate: iterator state plus the accumulator. The static
/// aggregate description is copied in at [`Op::AggStart`] so the
/// per-element hot path (`advance`, `AggAccum`) touches only this struct —
/// no side-table lookups.
#[derive(Debug, Clone, Copy)]
struct AggFrame {
    kind: AggKind,
    body_pc: u32,
    end_pc: u32,
    /// Next arena index to consider (children advance by sibling jump,
    /// descendants by `+1`).
    next: u32,
    /// Exclusive end of the iteration span.
    end: u32,
    children: bool,
    acc: f64,
    n: u64,
    started: bool,
    saved_ctx: u32,
}

/// An open CSE region (root-context aggregate being computed on a miss).
#[derive(Debug, Clone, Copy)]
struct CacheFrame {
    key: Fingerprint,
    entry_remaining: u64,
}

/// Reusable VM stack storage. One run leaves its vectors allocated; a
/// columnar sweep hands the same scratch to every cell of the column, so
/// the per-cell cost is five `clear()`s instead of five fresh allocations.
#[derive(Debug, Default)]
struct VmScratch {
    nums: Vec<f64>,
    bools: Vec<bool>,
    frames: Vec<AggFrame>,
    cache_frames: Vec<CacheFrame>,
    ctx_saves: Vec<u32>,
}

impl VmScratch {
    fn clear(&mut self) {
        self.nums.clear();
        self.bools.clear();
        self.frames.clear();
        self.cache_frames.clear();
        self.ctx_saves.clear();
    }
}

/// The bytecode interpreter. One instance per (program, loop) execution;
/// stacks are tiny (bounded by expression depth).
struct Vm<'a> {
    arena: &'a IrArena,
    remaining: u64,
    nums: Vec<f64>,
    bools: Vec<bool>,
    frames: Vec<AggFrame>,
    cache_frames: Vec<CacheFrame>,
    ctx_saves: Vec<u32>,
    ctx: u32,
}

impl<'a> Vm<'a> {
    /// Runs `prog` over `arena` with the given step budget, using `cache`
    /// (when provided) for CSE regions.
    fn run(
        prog: &Program,
        arena: &'a IrArena,
        loop_idx: u32,
        budget: u64,
        cache: Option<&EvalCache>,
    ) -> Result<f64, EvalError> {
        // One-instruction programs (most of a GP population) skip the
        // dispatch loop and the stack machinery entirely.
        if cache.is_none() {
            if let Some(r) = Self::run_simple(prog, arena, budget) {
                return r;
            }
        }
        // Standalone evals reuse one thread-local stack set: allocating
        // fresh stacks per call costs more than evaluating a small feature.
        thread_local! {
            static SCRATCH: std::cell::RefCell<VmScratch> =
                std::cell::RefCell::new(VmScratch::default());
        }
        SCRATCH.with(|s| match s.try_borrow_mut() {
            Ok(mut scratch) => {
                Self::run_scratch(prog, arena, loop_idx, budget, cache, &mut scratch)
            }
            // Re-entrant use (an attr-value callback evaluating a feature
            // mid-eval cannot happen today, but stay total regardless).
            Err(_) => {
                let mut scratch = VmScratch::default();
                Self::run_scratch(prog, arena, loop_idx, budget, cache, &mut scratch)
            }
        })
    }

    /// Stackless dispatch for one-instruction programs — a literal, an
    /// attribute read, one indexed count, one fused or planned aggregate,
    /// optionally wrapped in (cache-less) CSE markers. Semantically
    /// identical to `exec`: the single op computes a value and an exact
    /// step total; budget is checked first (`charge` order), then the
    /// final finiteness check that `push_num` would apply.
    fn run_simple(prog: &Program, arena: &IrArena, budget: u64) -> Option<Result<f64, EvalError>> {
        if prog.ops.len() > 4 {
            return None;
        }
        let mut core = None;
        for op in &prog.ops {
            match op {
                Op::CacheBegin { .. } | Op::CacheEnd | Op::Return => {}
                o => {
                    if core.replace(o).is_some() {
                        return None;
                    }
                }
            }
        }
        let finish = |steps: u64, v: f64| {
            if budget < steps {
                Err(EvalError::BudgetExceeded)
            } else if !v.is_finite() {
                Err(EvalError::NonFinite)
            } else {
                Ok(v)
            }
        };
        Some(match core? {
            Op::PushConst(c) => finish(1, *c),
            Op::LoadAttr(name) => finish(
                1,
                arena.attr(0, *name).and_then(|a| a.as_num()).unwrap_or(0.0),
            ),
            Op::CountIndexed(i) => {
                let (cost, m) = indexed_count_at(arena, 0, &prog.counts[*i as usize]);
                finish(cost, m as f64)
            }
            Op::AggFused(i) => {
                let (steps, r) = fused_eval(arena, &prog.fused[*i as usize], 0);
                match r {
                    Ok(v) => finish(steps, v),
                    Err(e) if budget < steps => {
                        debug_assert!(matches!(e, EvalError::NonFinite));
                        Err(EvalError::BudgetExceeded)
                    }
                    Err(e) => Err(e),
                }
            }
            Op::AggPlan(i) => {
                let pe = PlanEval {
                    arena,
                    limit: budget,
                };
                let mut steps = 0u64;
                match pe.agg(0, &prog.plans[*i as usize], &mut steps) {
                    Ok(v) => finish(steps, v),
                    Err(_) if budget < steps => Err(EvalError::BudgetExceeded),
                    Err(e) => Err(e),
                }
            }
            _ => return None,
        })
    }

    /// [`Vm::run`] with caller-provided stack storage, so a columnar sweep
    /// reuses one allocation set across every cell of the column.
    fn run_scratch(
        prog: &Program,
        arena: &'a IrArena,
        loop_idx: u32,
        budget: u64,
        cache: Option<&EvalCache>,
        scratch: &mut VmScratch,
    ) -> Result<f64, EvalError> {
        scratch.clear();
        let mut vm = Vm {
            arena,
            remaining: budget,
            nums: std::mem::take(&mut scratch.nums),
            bools: std::mem::take(&mut scratch.bools),
            frames: std::mem::take(&mut scratch.frames),
            cache_frames: std::mem::take(&mut scratch.cache_frames),
            ctx_saves: std::mem::take(&mut scratch.ctx_saves),
            ctx: 0,
        };
        let result = vm.exec(prog, loop_idx, cache);
        // A NonFinite error inside an open CSE region is itself cacheable:
        // the steps burned up to the error are deterministic, and a replay
        // charges them before re-raising (matching the interpreter, which
        // does not zero the budget on NonFinite).
        if let (Err(EvalError::NonFinite), Some(c)) = (&result, cache) {
            for fr in &vm.cache_frames {
                let steps = fr.entry_remaining - vm.remaining;
                c.insert(
                    fr.key,
                    loop_idx,
                    CacheEntry {
                        steps,
                        outcome: Err(()),
                    },
                );
            }
        }
        scratch.nums = vm.nums;
        scratch.bools = vm.bools;
        scratch.frames = vm.frames;
        scratch.cache_frames = vm.cache_frames;
        scratch.ctx_saves = vm.ctx_saves;
        result
    }

    /// Charges `cost` steps, mirroring `Evaluator::step` (including zeroing
    /// the remaining budget on failure).
    #[inline]
    fn charge(&mut self, cost: u64) -> Result<(), EvalError> {
        if self.remaining < cost {
            self.remaining = 0;
            return Err(EvalError::BudgetExceeded);
        }
        self.remaining -= cost;
        Ok(())
    }

    #[inline]
    fn push_num(&mut self, v: f64) -> Result<(), EvalError> {
        if !v.is_finite() {
            return Err(EvalError::NonFinite);
        }
        self.nums.push(v);
        Ok(())
    }

    #[inline]
    fn pop_num(&mut self) -> f64 {
        self.nums.pop().expect("numeric stack underflow")
    }

    #[inline]
    fn pop_bool(&mut self) -> bool {
        self.bools.pop().expect("boolean stack underflow")
    }

    fn exec(
        &mut self,
        prog: &Program,
        loop_idx: u32,
        cache: Option<&EvalCache>,
    ) -> Result<f64, EvalError> {
        let mut pc = 0usize;
        loop {
            match prog.ops[pc] {
                Op::Charge => {
                    self.charge(1)?;
                    pc += 1;
                }
                Op::PushConst(c) => {
                    self.charge(1)?;
                    self.push_num(c)?;
                    pc += 1;
                }
                Op::LoadAttr(name) => {
                    self.charge(1)?;
                    let v = self
                        .arena
                        .attr(self.ctx, name)
                        .and_then(|a| a.as_num())
                        .unwrap_or(0.0);
                    self.push_num(v)?;
                    pc += 1;
                }
                Op::Arith(op) => {
                    let b = self.pop_num();
                    let a = self.pop_num();
                    let v = match op {
                        ArithOp::Add => a + b,
                        ArithOp::Sub => a - b,
                        ArithOp::Mul => a * b,
                        ArithOp::Div => {
                            if b.abs() < 1e-12 {
                                0.0
                            } else {
                                a / b
                            }
                        }
                    };
                    self.push_num(v)?;
                    pc += 1;
                }
                Op::Neg => {
                    let v = -self.pop_num();
                    self.push_num(v)?;
                    pc += 1;
                }
                Op::IsType(kind) => {
                    self.charge(1)?;
                    self.bools.push(self.arena.kind(self.ctx) == kind);
                    pc += 1;
                }
                Op::HasAttr(name) => {
                    self.charge(1)?;
                    self.bools.push(self.arena.attr(self.ctx, name).is_some());
                    pc += 1;
                }
                Op::AttrEqEnum(name, target, view) => {
                    self.charge(1)?;
                    let b = attr_eq(self.arena, self.ctx, name, target, view);
                    self.bools.push(b);
                    pc += 1;
                }
                Op::AttrCmpNum(name, op, k) => {
                    self.charge(1)?;
                    let b = match self.arena.attr(self.ctx, name).and_then(|a| a.as_num()) {
                        Some(v) => op.apply(v, k),
                        None => false,
                    };
                    self.bools.push(b);
                    pc += 1;
                }
                Op::CmpNum(op) => {
                    let b = self.pop_num();
                    let a = self.pop_num();
                    self.bools.push(op.apply(a, b));
                    pc += 1;
                }
                Op::NotBool => {
                    let b = !self.pop_bool();
                    self.bools.push(b);
                    pc += 1;
                }
                Op::AndJump(target) => {
                    let b = self.pop_bool();
                    if b {
                        pc += 1;
                    } else {
                        self.bools.push(false);
                        pc = target as usize;
                    }
                }
                Op::OrJump(target) => {
                    let b = self.pop_bool();
                    if b {
                        self.bools.push(true);
                        pc = target as usize;
                    } else {
                        pc += 1;
                    }
                }
                Op::ChildCtx { idx, skip } => {
                    self.charge(1)?;
                    match self.arena.nth_child(self.ctx, idx as usize) {
                        Some(child) => {
                            self.ctx_saves.push(self.ctx);
                            self.ctx = child;
                            pc += 1;
                        }
                        None => {
                            self.bools.push(false);
                            pc = skip as usize;
                        }
                    }
                }
                Op::PopCtx => {
                    self.ctx = self.ctx_saves.pop().expect("context stack underflow");
                    pc += 1;
                }
                Op::AggStart(meta_idx) => {
                    self.charge(1)?;
                    let meta = &prog.aggs[meta_idx as usize];
                    self.frames.push(AggFrame {
                        kind: meta.kind,
                        body_pc: meta.body_pc,
                        end_pc: meta.end_pc,
                        next: self.ctx + 1,
                        end: self.arena.subtree_end(self.ctx),
                        children: meta.children_base,
                        acc: 0.0,
                        n: 0,
                        started: false,
                        saved_ctx: self.ctx,
                    });
                    self.advance(&mut pc)?;
                }
                Op::PredGate => {
                    if self.pop_bool() {
                        pc += 1;
                    } else {
                        self.advance(&mut pc)?;
                    }
                }
                Op::AggAccum => {
                    let kind = self.frames.last().expect("aggregate frame underflow").kind;
                    let v = match kind {
                        AggKind::Count => 0.0, // count pops no body value
                        _ => self.pop_num(),
                    };
                    self.accum_frame(v);
                    self.advance(&mut pc)?;
                }
                Op::IsTypeGate(kind) => {
                    self.charge(1)?;
                    if self.arena.kind(self.ctx) == kind {
                        pc += 1;
                    } else {
                        self.advance(&mut pc)?;
                    }
                }
                Op::HasAttrGate(name) => {
                    self.charge(1)?;
                    if self.arena.attr(self.ctx, name).is_some() {
                        pc += 1;
                    } else {
                        self.advance(&mut pc)?;
                    }
                }
                Op::AttrEqEnumGate(name, target, view) => {
                    self.charge(1)?;
                    if attr_eq(self.arena, self.ctx, name, target, view) {
                        pc += 1;
                    } else {
                        self.advance(&mut pc)?;
                    }
                }
                Op::AttrCmpNumGate(name, op, k) => {
                    self.charge(1)?;
                    let b = match self.arena.attr(self.ctx, name).and_then(|a| a.as_num()) {
                        Some(v) => op.apply(v, k),
                        None => false,
                    };
                    if b {
                        pc += 1;
                    } else {
                        self.advance(&mut pc)?;
                    }
                }
                Op::ConstAccum(c) => {
                    self.charge(1)?;
                    if !c.is_finite() {
                        return Err(EvalError::NonFinite);
                    }
                    self.accum_frame(c);
                    self.advance(&mut pc)?;
                }
                Op::AttrAccum(name) => {
                    self.charge(1)?;
                    let v = self
                        .arena
                        .attr(self.ctx, name)
                        .and_then(|a| a.as_num())
                        .unwrap_or(0.0);
                    if !v.is_finite() {
                        return Err(EvalError::NonFinite);
                    }
                    self.accum_frame(v);
                    self.advance(&mut pc)?;
                }
                Op::CountIndexed(meta_idx) => {
                    self.count_indexed(prog, meta_idx)?;
                    pc += 1;
                }
                Op::AggFused(meta_idx) => {
                    self.agg_fused(prog, meta_idx)?;
                    pc += 1;
                }
                Op::AggPlan(meta_idx) => {
                    let meta = &prog.plans[meta_idx as usize];
                    let pe = PlanEval {
                        arena: self.arena,
                        limit: self.remaining,
                    };
                    let mut steps = 0u64;
                    match pe.agg(self.ctx, meta, &mut steps) {
                        Ok(v) => {
                            self.charge(steps)?;
                            self.push_num(v)?;
                            pc += 1;
                        }
                        Err(e) => {
                            // Charge what the interpreter would have
                            // charged before the error; running out first
                            // wins, exactly as `charge` encodes (a
                            // plan-level BudgetExceeded always carries
                            // `steps > remaining`, so `charge` fails and
                            // zeroes the budget).
                            self.charge(steps)?;
                            return Err(e);
                        }
                    }
                }
                Op::CacheBegin { key_idx, end } => match cache {
                    Some(c) => {
                        let key = prog.keys[key_idx as usize];
                        match c.get(key, loop_idx) {
                            Some(entry) => {
                                self.charge(entry.steps)?;
                                match entry.outcome {
                                    Ok(v) => {
                                        self.nums.push(v);
                                        pc = end as usize;
                                    }
                                    Err(()) => return Err(EvalError::NonFinite),
                                }
                            }
                            None => {
                                self.cache_frames.push(CacheFrame {
                                    key,
                                    entry_remaining: self.remaining,
                                });
                                pc += 1;
                            }
                        }
                    }
                    None => pc += 1,
                },
                Op::CacheEnd => {
                    if let Some(c) = cache {
                        let fr = self
                            .cache_frames
                            .pop()
                            .expect("CacheEnd without open region");
                        let steps = fr.entry_remaining - self.remaining;
                        let v = *self.nums.last().expect("cached region left no value");
                        c.insert(
                            fr.key,
                            loop_idx,
                            CacheEntry {
                                steps,
                                outcome: Ok(v),
                            },
                        );
                    }
                    pc += 1;
                }
                Op::Return => return Ok(self.pop_num()),
            }
        }
    }

    /// Folds one element value into the top aggregate frame (the shared
    /// tail of `AggAccum` and the accumulate superinstructions).
    #[inline]
    fn accum_frame(&mut self, v: f64) {
        let f = self.frames.last_mut().expect("aggregate frame underflow");
        match f.kind {
            AggKind::Count => f.n += 1,
            AggKind::Sum => f.acc += v,
            AggKind::Max => {
                f.acc = if f.started { f.acc.max(v) } else { v };
                f.started = true;
            }
            AggKind::Min => {
                f.acc = if f.started { f.acc.min(v) } else { v };
                f.started = true;
            }
            AggKind::Avg => {
                f.acc += v;
                f.n += 1;
            }
        }
    }

    /// Yields the next element of the top aggregate frame (charging one
    /// step per element, as the interpreter's `for_each` does) or, when the
    /// iteration is exhausted, finalizes the aggregate value.
    fn advance(&mut self, pc: &mut usize) -> Result<(), EvalError> {
        let arena = self.arena;
        let f = self.frames.last_mut().expect("aggregate frame underflow");
        if f.next < f.end {
            let cur = f.next;
            f.next = if f.children {
                arena.subtree_end(cur)
            } else {
                cur + 1
            };
            let body_pc = f.body_pc;
            self.charge(1)?;
            self.ctx = cur;
            *pc = body_pc as usize;
            Ok(())
        } else {
            let f = self.frames.pop().expect("aggregate frame underflow");
            let v = match f.kind {
                AggKind::Count => f.n as f64,
                AggKind::Sum => f.acc,
                AggKind::Max | AggKind::Min => {
                    if f.started {
                        f.acc
                    } else {
                        0.0
                    }
                }
                AggKind::Avg => {
                    if f.n == 0 {
                        0.0
                    } else {
                        f.acc / f.n as f64
                    }
                }
            };
            self.ctx = f.saved_ctx;
            self.push_num(v)?;
            *pc = f.end_pc as usize;
            Ok(())
        }
    }

    /// Indexed `count`: computes the exact step total the interpreter would
    /// charge (every interpreter charge is one unit, so the `BudgetExceeded`
    /// decision depends only on the total) plus the count — from the arena's
    /// postings lists for single atoms, or a scan with short-circuit step
    /// accounting for predicate trees — then charges in bulk. Pure
    /// predicates cannot raise `NonFinite`, so no error-ordering concern
    /// arises.
    fn count_indexed(&mut self, prog: &Program, meta_idx: u32) -> Result<(), EvalError> {
        let meta = &prog.counts[meta_idx as usize];
        let (total_cost, value) = indexed_count_at(self.arena, self.ctx, meta);
        self.charge(total_cost)?;
        // Counts are always finite; push directly.
        self.nums.push(value as f64);
        Ok(())
    }

    /// Fused aggregate: evaluated out-of-line by [`fused_eval`], then the
    /// exact step total is charged in bulk. The only mid-iteration error
    /// the interpreter could raise is `NonFinite` from a body value; at
    /// that point the steps charged so far decide between `BudgetExceeded`
    /// (if they already exhaust the budget) and `NonFinite` — identical to
    /// the interpreter's charge-then-check order.
    fn agg_fused(&mut self, prog: &Program, meta_idx: u32) -> Result<(), EvalError> {
        let (steps, r) = fused_eval(self.arena, &prog.fused[meta_idx as usize], self.ctx);
        // Charge what the interpreter would have charged up to the result
        // or the error; running out first wins, exactly as `charge` encodes.
        self.charge(steps)?;
        self.push_num(r?)
    }
}

/// Evaluates one fused aggregate at `ctx`: one tight loop over the
/// elements, evaluating pure predicates and the leaf body directly while
/// accumulating the exact step total the interpreter would charge. The
/// `Ok` value has not yet had the final finiteness check applied.
fn fused_eval(arena: &IrArena, meta: &FusedAggMeta, ctx: u32) -> (u64, Result<f64, EvalError>) {
    // The aggregate node's own entry charge.
    let mut steps = 1u64;
    let mut acc = 0.0f64;
    let mut n = 0u64;
    let mut started = false;
    // Block-scoped so the closure's borrows of the accumulators end
    // before the finalisation below reads them.
    let result = {
        let mut element = |j: u32, steps: &mut u64| -> Result<(), EvalError> {
            *steps += 1; // the per-element `for_each` charge
            for p in &meta.preds {
                if !pure_pred_matches(arena, j, p, steps) {
                    return Ok(());
                }
            }
            let v = match &meta.body {
                FusedBody::None => {
                    n += 1;
                    return Ok(());
                }
                FusedBody::Const(c) => {
                    *steps += 1;
                    *c
                }
                FusedBody::Attr(a) => {
                    *steps += 1;
                    arena.attr(j, *a).and_then(|x| x.as_num()).unwrap_or(0.0)
                }
                FusedBody::Count(cm) => {
                    let (cost, m) = indexed_count_at(arena, j, cm);
                    *steps += cost;
                    m as f64
                }
            };
            if !v.is_finite() {
                return Err(EvalError::NonFinite);
            }
            match meta.kind {
                AggKind::Count => n += 1,
                AggKind::Sum => acc += v,
                AggKind::Max => {
                    acc = if started { acc.max(v) } else { v };
                    started = true;
                }
                AggKind::Min => {
                    acc = if started { acc.min(v) } else { v };
                    started = true;
                }
                AggKind::Avg => {
                    acc += v;
                    n += 1;
                }
            }
            Ok(())
        };
        if meta.children_base {
            arena.children(ctx).try_for_each(|j| element(j, &mut steps))
        } else {
            (ctx + 1..arena.subtree_end(ctx)).try_for_each(|j| element(j, &mut steps))
        }
    };
    if let Err(e) = result {
        return (steps, Err(e));
    }
    let v = match meta.kind {
        AggKind::Count => n as f64,
        AggKind::Sum => acc,
        AggKind::Max | AggKind::Min => {
            if started {
                acc
            } else {
                0.0
            }
        }
        AggKind::Avg => {
            if n == 0 {
                0.0
            } else {
                acc / n as f64
            }
        }
    };
    (steps, Ok(v))
}

/// Computes one indexed-count site at context node `ctx`: the exact step
/// total the interpreter would charge and the matching-element count.
fn indexed_count_at(arena: &IrArena, ctx: u32, meta: &CountMeta) -> (u64, u64) {
    if meta.children_base {
        let c = u64::from(arena.child_count(ctx));
        match &meta.pred {
            None => (1 + c, c),
            Some(PurePred::Atom {
                atom,
                negated,
                cost,
            }) => {
                let mut m = 0u64;
                for j in arena.children(ctx) {
                    if pure_atom_matches(arena, j, atom) {
                        m += 1;
                    }
                }
                let m = if *negated { c - m } else { m };
                (1 + c * (1 + cost), m)
            }
            Some(PurePred::Tree { expr, .. }) => {
                let mut steps = 0u64;
                let mut m = 0u64;
                for j in arena.children(ctx) {
                    steps += 1; // the per-element `for_each` charge
                    if eval_pure(arena, j, expr, &mut steps) {
                        m += 1;
                    }
                }
                (1 + steps, m)
            }
        }
    } else {
        let d = u64::from(arena.descendant_count(ctx));
        let (lo, hi) = (ctx + 1, arena.subtree_end(ctx));
        match &meta.pred {
            None => (1 + d, d),
            Some(PurePred::Atom {
                atom,
                negated,
                cost,
            }) => {
                let m = match *atom {
                    PureAtom::IsType(k) => u64::from(arena.count_kind_in(k, lo, hi)),
                    PureAtom::HasAttr(a) => u64::from(arena.count_attr_in(a, lo, hi)),
                    PureAtom::AttrEq(a, v, view) => arena
                        .attr_nodes_in(a, lo, hi)
                        .iter()
                        .filter(|&&j| attr_eq(arena, j, a, v, view))
                        .count() as u64,
                    PureAtom::AttrCmp(a, op, k) => arena
                        .attr_nodes_in(a, lo, hi)
                        .iter()
                        .filter(|&&j| {
                            matches!(
                                arena.attr(j, a).and_then(|x| x.as_num()),
                                Some(v) if op.apply(v, k)
                            )
                        })
                        .count() as u64,
                };
                let m = if *negated { d - m } else { m };
                (1 + d * (1 + cost), m)
            }
            Some(PurePred::Tree { expr, kinds }) => {
                if kinds.is_none() {
                    if let PureExpr::Child(idx, inner) = expr {
                        if let PureExpr::Atom(atom) = &**inner {
                            return child_probe_count(arena, lo, hi, *idx, atom, d);
                        }
                    }
                }
                let mut steps = 0u64;
                let mut m = 0u64;
                if let Some(table) = kinds {
                    // Kinds-only tree: verdict and cost were tabled at
                    // compile time, so the scan is one kind load and a
                    // probe of a few mentioned kinds per element.
                    for j in lo..hi {
                        let k = arena.kind(j);
                        let (matched, cost) = table
                            .entries
                            .iter()
                            .find(|&&(s, ..)| s == k)
                            .map_or(table.default, |&(_, matched, cost)| (matched, cost));
                        steps += 1 + cost;
                        if matched {
                            m += 1;
                        }
                    }
                } else {
                    for j in lo..hi {
                        steps += 1; // the per-element `for_each` charge
                        if eval_pure(arena, j, expr, &mut steps) {
                            m += 1;
                        }
                    }
                }
                (1 + steps, m)
            }
        }
    }
}

/// Counts `filter(//*, /[idx][atom])` without probing every element.
///
/// Matches are found backwards: instead of walking to every element's
/// `idx`-th child, iterate the atom's postings list and keep the nodes
/// that sit in child position `idx` under an in-range parent. The step
/// total is closed-form — the interpreter charges each element one
/// `for_each` step, one `Child` probe step, and one atom step only when
/// the probed child exists (`child_count > idx`).
fn child_probe_count(
    arena: &IrArena,
    lo: u32,
    hi: u32,
    idx: u32,
    atom: &PureAtom,
    d: u64,
) -> (u64, u64) {
    let mut probed = 0u64;
    for j in lo..hi {
        if arena.child_count(j) > idx {
            probed += 1;
        }
    }
    let in_position = |&&k: &&u32| {
        let p = arena.parent(k);
        p >= lo && arena.nth_child(p, idx as usize) == Some(k)
    };
    let m = match *atom {
        PureAtom::IsType(kind) => arena.kind_nodes_in(kind, lo, hi).iter().filter(in_position),
        PureAtom::HasAttr(a) => arena.attr_nodes_in(a, lo, hi).iter().filter(in_position),
        PureAtom::AttrEq(a, v, view) => {
            let m = arena
                .attr_nodes_in(a, lo, hi)
                .iter()
                .filter(|&&k| attr_eq(arena, k, a, v, view))
                .filter(in_position)
                .count() as u64;
            return (1 + 2 * d + probed, m);
        }
        PureAtom::AttrCmp(a, op, cmp_k) => {
            let m = arena
                .attr_nodes_in(a, lo, hi)
                .iter()
                .filter(|&&k| {
                    matches!(arena.attr(k, a).and_then(|x| x.as_num()), Some(v) if op.apply(v, cmp_k))
                })
                .filter(in_position)
                .count() as u64;
            return (1 + 2 * d + probed, m);
        }
    }
    .count() as u64;
    (1 + 2 * d + probed, m)
}

/// Evaluates one loop-nest plan ([`Op::AggPlan`]) with exact interpreter
/// step accounting.
///
/// All charges accumulate into one running `steps` total and are
/// bulk-charged by the op handler; since every interpreter charge is one
/// unit, the `BudgetExceeded` decision depends only on the cumulative
/// total (DESIGN.md §11). Two orderings need explicit care:
///
/// - The element loops abort with `BudgetExceeded` as soon as the running
///   total exceeds `limit`, so a deep nest stops scanning near the
///   interpreter's stopping point instead of walking the whole arena.
/// - At every `NonFinite` detection point the running total decides the
///   error: if it already exceeds `limit`, the interpreter would have run
///   out *before* computing the offending value, so `BudgetExceeded` wins.
struct PlanEval<'a> {
    arena: &'a IrArena,
    /// Budget remaining when the plan started (`Vm::remaining`).
    limit: u64,
}

impl PlanEval<'_> {
    /// Budget-vs-NonFinite decision for a non-finite value whose
    /// computation ended at step total `steps`.
    #[inline]
    fn non_finite(&self, steps: u64) -> EvalError {
        if steps > self.limit {
            EvalError::BudgetExceeded
        } else {
            EvalError::NonFinite
        }
    }

    #[inline]
    fn finite(&self, v: f64, steps: u64) -> Result<f64, EvalError> {
        if v.is_finite() {
            Ok(v)
        } else {
            Err(self.non_finite(steps))
        }
    }

    /// One aggregate level: iterates the base elements (postings slice,
    /// sibling jumps, or a preorder range scan), filters, accumulates.
    fn agg(&self, ctx: u32, plan: &PlanAgg, steps: &mut u64) -> Result<f64, EvalError> {
        if let Some(body) = plan.leaf {
            return self.leaf_agg(ctx, plan.kind, plan.children_base, body, steps);
        }
        *steps += 1; // the aggregate node's entry charge
        if let (AggKind::Count, false, None, [PlanPred::Dyn(PlanBool::LeafCmp(op, a, b))]) = (
            plan.kind,
            plan.children_base,
            &plan.body,
            plan.preds.as_slice(),
        ) {
            return self.count_leaf_cmp(ctx, *op, *a, *b, steps);
        }
        let mut acc = 0.0f64;
        let mut n = 0u64;
        let mut started = false;
        if let Some(cov) = &plan.cover {
            let (lo, hi) = (ctx + 1, self.arena.subtree_end(ctx));
            // Merge the cover postings slices (each sorted, deduplicated
            // across slices): only cover elements can match, and every
            // skipped element follows the constant all-atoms-false trace.
            let mut slices = [&[] as &[u32]; 4];
            let k = cov.srcs.len().min(slices.len());
            for (slot, src) in slices.iter_mut().zip(&cov.srcs) {
                *slot = match src {
                    CoverSrc::Kind(sym) => self.arena.kind_nodes_in(*sym, lo, hi),
                    CoverSrc::Attr(sym) => self.arena.attr_nodes_in(*sym, lo, hi),
                };
            }
            let mut prev = lo;
            loop {
                let mut j = u32::MAX;
                for s in &slices[..k] {
                    if let Some(&h) = s.first() {
                        j = j.min(h);
                    }
                }
                if j == u32::MAX {
                    break;
                }
                for s in &mut slices[..k] {
                    if s.first() == Some(&j) {
                        *s = &s[1..];
                    }
                }
                // Bulk-charge the skipped run (`for_each` + false-trace
                // cost each; pure predicates cannot raise, so no error
                // point is jumped over), then this element's `for_each`;
                // the predicates themselves charge exactly during eval.
                *steps += u64::from(j - prev) * cov.skip_per + 1;
                prev = j + 1;
                if *steps > self.limit {
                    return Err(EvalError::BudgetExceeded);
                }
                self.element(j, &plan.preds, plan, steps, &mut acc, &mut n, &mut started)?;
            }
            *steps += u64::from(hi - prev) * cov.skip_per;
        } else if plan.children_base {
            let end = self.arena.subtree_end(ctx);
            let mut j = ctx + 1;
            while j < end {
                *steps += 1; // the per-element `for_each` charge
                if *steps > self.limit {
                    return Err(EvalError::BudgetExceeded);
                }
                self.element(j, &plan.preds, plan, steps, &mut acc, &mut n, &mut started)?;
                j = self.arena.subtree_end(j);
            }
        } else {
            if plan.preds.is_empty() {
                if let Some(body) = &plan.body {
                    if let Some(r) = self.column_agg(ctx, plan.kind, body, steps) {
                        return r;
                    }
                }
            }
            for j in ctx + 1..self.arena.subtree_end(ctx) {
                *steps += 1;
                if *steps > self.limit {
                    return Err(EvalError::BudgetExceeded);
                }
                self.element(j, &plan.preds, plan, steps, &mut acc, &mut n, &mut started)?;
            }
        }
        let v = match plan.kind {
            AggKind::Count => n as f64,
            AggKind::Sum => acc,
            AggKind::Max | AggKind::Min => {
                if started {
                    acc
                } else {
                    0.0
                }
            }
            AggKind::Avg => {
                if n == 0 {
                    0.0
                } else {
                    acc / n as f64
                }
            }
        };
        self.finite(v, *steps)
    }

    /// One element: remaining predicates, then body accumulation.
    #[allow(clippy::too_many_arguments)]
    fn element(
        &self,
        j: u32,
        preds: &[PlanPred],
        plan: &PlanAgg,
        steps: &mut u64,
        acc: &mut f64,
        n: &mut u64,
        started: &mut bool,
    ) -> Result<(), EvalError> {
        for p in preds {
            let holds = match p {
                PlanPred::Pure(pp) => pure_pred_matches(self.arena, j, pp, steps),
                PlanPred::Dyn(pb) => self.boolean(j, pb, steps)?,
            };
            if !holds {
                return Ok(());
            }
        }
        let v = match &plan.body {
            None => {
                *n += 1; // `count` has no body
                return Ok(());
            }
            Some(b) => self.expr(j, b, steps)?,
        };
        match plan.kind {
            AggKind::Count => *n += 1,
            AggKind::Sum => *acc += v,
            AggKind::Max => {
                *acc = if *started { acc.max(v) } else { v };
                *started = true;
            }
            AggKind::Min => {
                *acc = if *started { acc.min(v) } else { v };
                *started = true;
            }
            AggKind::Avg => {
                *acc += v;
                *n += 1;
            }
        }
        Ok(())
    }

    /// A predicate node: one entry charge, then the interpreter's
    /// short-circuit/child-probe semantics.
    fn boolean(&self, j: u32, e: &PlanBool, steps: &mut u64) -> Result<bool, EvalError> {
        *steps += 1;
        match e {
            PlanBool::Atom(a) => Ok(pure_atom_matches(self.arena, j, a)),
            PlanBool::Cmp(op, a, b) => {
                let x = self.expr(j, a, steps)?;
                let y = self.expr(j, b, steps)?;
                Ok(op.apply(x, y))
            }
            PlanBool::LeafCmp(op, a, b) => {
                let (ca, x) = self.leaf_arg_at(j, *a);
                *steps += ca;
                if !x.is_finite() {
                    return Err(self.non_finite(*steps));
                }
                let (cb, y) = self.leaf_arg_at(j, *b);
                *steps += cb;
                if !y.is_finite() {
                    return Err(self.non_finite(*steps));
                }
                Ok(op.apply(x, y))
            }
            PlanBool::Not(inner) => Ok(!self.boolean(j, inner, steps)?),
            PlanBool::And(a, b) => Ok(self.boolean(j, a, steps)? && self.boolean(j, b, steps)?),
            PlanBool::Or(a, b) => Ok(self.boolean(j, a, steps)? || self.boolean(j, b, steps)?),
            PlanBool::Child(idx, inner) => match self.arena.nth_child(j, *idx as usize) {
                Some(child) => self.boolean(child, inner, steps),
                None => Ok(false),
            },
        }
    }

    /// A numeric node: one entry charge, value computed, finiteness checked
    /// — exactly the interpreter's per-node protocol.
    fn expr(&self, j: u32, e: &PlanExpr, steps: &mut u64) -> Result<f64, EvalError> {
        match e {
            PlanExpr::Const(c) => {
                *steps += 1;
                self.finite(*c, *steps)
            }
            PlanExpr::Attr(a) => {
                *steps += 1;
                let v = self
                    .arena
                    .attr(j, *a)
                    .and_then(|x| x.as_num())
                    .unwrap_or(0.0);
                self.finite(v, *steps)
            }
            PlanExpr::Count(cm) => {
                let (cost, m) = indexed_count_at(self.arena, j, cm);
                *steps += cost;
                Ok(m as f64) // counts are always finite
            }
            PlanExpr::Agg(inner) => self.agg(j, inner, steps),
            PlanExpr::LeafAgg {
                kind,
                children_base,
                body,
            } => self.leaf_agg(j, *kind, *children_base, *body, steps),
            PlanExpr::Arith(op, a, b) => {
                *steps += 1;
                let x = self.expr(j, a, steps)?;
                let y = self.expr(j, b, steps)?;
                let v = match op {
                    ArithOp::Add => x + y,
                    ArithOp::Sub => x - y,
                    ArithOp::Mul => x * y,
                    ArithOp::Div => {
                        if y.abs() < 1e-12 {
                            0.0
                        } else {
                            x / y
                        }
                    }
                };
                self.finite(v, *steps)
            }
            PlanExpr::Neg(a) => {
                *steps += 1;
                let v = -self.expr(j, a, steps)?;
                self.finite(v, *steps)
            }
        }
    }

    /// Evaluates a leaf operand at element `j`: `(exact step cost, value)`.
    #[inline]
    fn leaf_arg_at(&self, j: u32, a: LeafArg) -> (u64, f64) {
        match a {
            LeafArg::Const(c) => (1, c),
            LeafArg::Attr(s) => (1, self.attr_num(j, s)),
            LeafArg::ChildCount => {
                let c = self.arena.child_count(j);
                (1 + u64::from(c), f64::from(c))
            }
            LeafArg::DescCount => {
                let d = self.arena.descendant_count(j);
                (1 + u64::from(d), f64::from(d))
            }
        }
    }

    #[inline]
    fn attr_num(&self, j: u32, name: Symbol) -> f64 {
        self.arena
            .attr(j, name)
            .and_then(|x| x.as_num())
            .unwrap_or(0.0)
    }

    /// A predicate-free aggregate with a leaf body: one bulk-charged arena
    /// loop. Over `//*` the charge total is closed-form per body kind and
    /// only genuine error points (non-finite attribute values) are visited
    /// individually; over `/*` the sibling-jump loop is short enough that
    /// per-element charging is already cheap.
    fn leaf_agg(
        &self,
        ctx: u32,
        kind: AggKind,
        children_base: bool,
        body: LeafArg,
        steps: &mut u64,
    ) -> Result<f64, EvalError> {
        *steps += 1; // the aggregate node's entry charge
        if children_base {
            let end = self.arena.subtree_end(ctx);
            let (mut acc, mut n, mut started) = (0.0f64, 0u64, false);
            let mut j = ctx + 1;
            while j < end {
                let (c, v) = self.leaf_arg_at(j, body);
                *steps += 1 + c; // `for_each` + the body's charge
                if !v.is_finite() {
                    return Err(self.non_finite(*steps));
                }
                n += 1;
                match kind {
                    AggKind::Sum | AggKind::Avg => acc += v,
                    AggKind::Max => acc = if started { acc.max(v) } else { v },
                    AggKind::Min => acc = if started { acc.min(v) } else { v },
                    AggKind::Count => unreachable!("count aggregates have no body"),
                }
                started = true;
                j = self.arena.subtree_end(j);
            }
            let v = match kind {
                AggKind::Avg => {
                    if n == 0 {
                        0.0
                    } else {
                        acc / n as f64
                    }
                }
                _ => {
                    if started {
                        acc
                    } else {
                        0.0
                    }
                }
            };
            return self.finite(v, *steps);
        }
        let (lo, hi) = (ctx + 1, self.arena.subtree_end(ctx));
        let n = u64::from(hi - lo);
        let v = match body {
            LeafArg::Const(c) => {
                if n > 0 && !c.is_finite() {
                    // The first element's body raises at exactly this
                    // prefix (`for_each` + the literal's entry charge).
                    *steps += 2;
                    return Err(self.non_finite(*steps));
                }
                *steps += 2 * n;
                match kind {
                    AggKind::Sum | AggKind::Avg => {
                        // Repeated addition, not multiplication: identical
                        // rounding to the interpreter's fold.
                        let mut acc = 0.0;
                        for _ in 0..n {
                            acc += c;
                        }
                        if matches!(kind, AggKind::Avg) && n > 0 {
                            acc / n as f64
                        } else {
                            acc
                        }
                    }
                    AggKind::Max | AggKind::Min => {
                        if n > 0 {
                            c
                        } else {
                            0.0
                        }
                    }
                    AggKind::Count => unreachable!("count aggregates have no body"),
                }
            }
            LeafArg::Attr(name) => match kind {
                AggKind::Sum | AggKind::Avg => {
                    // Only elements carrying the attribute can contribute a
                    // non-zero (or non-finite) value; the rest add +0.0,
                    // an exact identity here (the accumulator starts at
                    // +0.0 and IEEE round-to-nearest addition never
                    // produces -0.0 from a +0.0 start).
                    let mut acc = 0.0;
                    for &j in self.arena.attr_nodes_in(name, lo, hi) {
                        let v = self.attr_num(j, name);
                        if !v.is_finite() {
                            // Every element up to and including `j` costs
                            // exactly 2 (`for_each` + attribute read).
                            *steps += 2 * u64::from(j - lo + 1);
                            return Err(self.non_finite(*steps));
                        }
                        acc += v;
                    }
                    *steps += 2 * n;
                    if matches!(kind, AggKind::Avg) && n > 0 {
                        acc / n as f64
                    } else {
                        acc
                    }
                }
                AggKind::Max | AggKind::Min => {
                    // Missing attributes contribute 0.0 to the fold, so
                    // every element participates; keep the fold order.
                    let (mut acc, mut started) = (0.0f64, false);
                    for j in lo..hi {
                        *steps += 2;
                        let v = self.attr_num(j, name);
                        if !v.is_finite() {
                            return Err(self.non_finite(*steps));
                        }
                        acc = match (started, kind) {
                            (false, _) => v,
                            (true, AggKind::Max) => acc.max(v),
                            _ => acc.min(v),
                        };
                        started = true;
                    }
                    if started {
                        acc
                    } else {
                        0.0
                    }
                }
                AggKind::Count => unreachable!("count aggregates have no body"),
            },
            LeafArg::ChildCount => {
                // Σ child-count over `lo..hi` is the subtree's inner edge
                // count: every descendant's parent edge except those from
                // `ctx` itself. All values are small integers, so the
                // interpreter's f64 fold is exact and order-free.
                let edges = n - u64::from(self.arena.child_count(ctx));
                *steps += 2 * n + edges;
                match kind {
                    AggKind::Sum => edges as f64,
                    AggKind::Avg => {
                        if n == 0 {
                            0.0
                        } else {
                            edges as f64 / n as f64
                        }
                    }
                    AggKind::Max | AggKind::Min => {
                        let it = (lo..hi).map(|j| self.arena.child_count(j));
                        let m = match kind {
                            AggKind::Max => it.max(),
                            _ => it.min(),
                        };
                        m.map_or(0.0, f64::from)
                    }
                    AggKind::Count => unreachable!("count aggregates have no body"),
                }
            }
            LeafArg::DescCount => {
                // Charge per element is 2 + its descendant count; the f64
                // fold mirrors the interpreter's exactly (all integers).
                let mut charged = 2 * n;
                let (mut acc, mut started) = (0.0f64, false);
                for j in lo..hi {
                    let d = self.arena.descendant_count(j);
                    charged += u64::from(d);
                    let v = f64::from(d);
                    acc = match (started, kind) {
                        (false, _) => v,
                        (true, AggKind::Sum) | (true, AggKind::Avg) => acc + v,
                        (true, AggKind::Max) => acc.max(v),
                        (true, AggKind::Min) => acc.min(v),
                        (true, AggKind::Count) => {
                            unreachable!("count aggregates have no body")
                        }
                    };
                    started = true;
                }
                *steps += charged;
                match kind {
                    AggKind::Avg => {
                        if n == 0 {
                            0.0
                        } else {
                            acc / n as f64
                        }
                    }
                    _ => {
                        if started {
                            acc
                        } else {
                            0.0
                        }
                    }
                }
            }
        };
        self.finite(v, *steps)
    }

    /// `count(filter(//*, <leaf> OP <leaf>))`: one flat pass over the
    /// subtree range with no per-element dispatch. When neither operand
    /// reads an attribute the loop is error-free (counts and literals are
    /// always finite), so only the cumulative step total matters and the
    /// charge is applied in bulk after the scan.
    fn count_leaf_cmp(
        &self,
        ctx: u32,
        op: CmpOp,
        a: LeafArg,
        b: LeafArg,
        steps: &mut u64,
    ) -> Result<f64, EvalError> {
        let (lo, hi) = (ctx + 1, self.arena.subtree_end(ctx));
        let attr_free = !matches!(a, LeafArg::Attr(_)) && !matches!(b, LeafArg::Attr(_));
        let mut n = 0u64;
        if attr_free {
            let mut total = 0u64;
            for j in lo..hi {
                let (ca, x) = self.leaf_arg_at(j, a);
                let (cb, y) = self.leaf_arg_at(j, b);
                total += 2 + ca + cb; // `for_each` + the Cmp node's entry
                n += u64::from(op.apply(x, y));
            }
            *steps += total;
        } else {
            for j in lo..hi {
                *steps += 2; // `for_each` + the Cmp node's entry
                let (ca, x) = self.leaf_arg_at(j, a);
                *steps += ca;
                if !x.is_finite() {
                    return Err(self.non_finite(*steps));
                }
                let (cb, y) = self.leaf_arg_at(j, b);
                *steps += cb;
                if !y.is_finite() {
                    return Err(self.non_finite(*steps));
                }
                n += u64::from(op.apply(x, y));
            }
        }
        self.finite(n as f64, *steps)
    }

    /// Columnar evaluation of a predicate-free descendants aggregate with
    /// a column-supported body: bottom-up passes produce the body's value
    /// column and exact per-element step-cost column for every element at
    /// once (children-base sub-aggregates scatter child values to their
    /// parents through the arena's parent array), then a single in-order
    /// fold finishes the aggregate.
    ///
    /// Exactness: every per-parent accumulation visits children in
    /// increasing preorder — the interpreter's iteration order — so each
    /// floating-point fold performs the identical operation sequence. The
    /// fast path is *optimistic*: it returns `None` (and the scalar loop
    /// reproduces the interpreter's exact error point) when the range is
    /// small, any intermediate value the interpreter would finite-check is
    /// non-finite, or the bulk charge would exceed the budget.
    fn column_agg(
        &self,
        ctx: u32,
        kind: AggKind,
        body: &PlanExpr,
        steps: &mut u64,
    ) -> Option<Result<f64, EvalError>> {
        let (lo, hi) = (ctx + 1, self.arena.subtree_end(ctx));
        if hi - lo < COLUMN_MIN || matches!(kind, AggKind::Count) || !column_supported(body) {
            return None;
        }
        COL_POOL.with(|p| {
            let mut pool = p.try_borrow_mut().ok()?;
            let mut ok = true;
            let col = self.col_expr(body, lo, hi, &mut pool, &mut ok);
            let result = self.column_fold(kind, &col, steps, ok);
            pool.push(col);
            result
        })
    }

    /// Final fold of the top-level column: bulk budget check first, then
    /// the aggregate's in-order value fold and the final finiteness check.
    fn column_fold(
        &self,
        kind: AggKind,
        col: &ColBuf,
        steps: &mut u64,
        ok: bool,
    ) -> Option<Result<f64, EvalError>> {
        if !ok {
            return None;
        }
        let n = col.val.len() as u64;
        // One `for_each` charge per element plus the body's exact cost.
        let mut total = n;
        for c in &col.cost {
            total += c;
        }
        if *steps + total > self.limit {
            return None;
        }
        *steps += total;
        let v = match kind {
            AggKind::Sum | AggKind::Avg => {
                let mut acc = 0.0f64;
                for &v in &col.val {
                    acc += v;
                }
                if matches!(kind, AggKind::Avg) && n > 0 {
                    acc / n as f64
                } else {
                    acc
                }
            }
            AggKind::Max => col.val.iter().copied().reduce(f64::max).unwrap_or(0.0),
            AggKind::Min => col.val.iter().copied().reduce(f64::min).unwrap_or(0.0),
            AggKind::Count => unreachable!("count aggregates never take the columnar path"),
        };
        Some(self.finite(v, *steps))
    }

    /// Evaluates `e` for **every** node in `lo..hi` at once, returning the
    /// value column and the exact per-node interpreter step cost column.
    /// Non-finiteness of any value the interpreter would check clears
    /// `ok` (conservatively — including values no element consumes).
    fn col_expr(
        &self,
        e: &PlanExpr,
        lo: u32,
        hi: u32,
        pool: &mut Vec<ColBuf>,
        ok: &mut bool,
    ) -> ColBuf {
        let n = (hi - lo) as usize;
        match e {
            PlanExpr::Const(c) => {
                *ok &= c.is_finite();
                acquire(pool, n, *c, 1)
            }
            PlanExpr::Attr(name) => {
                let mut b = acquire(pool, n, 0.0, 1);
                let mut fin = true;
                for &j in self.arena.attr_nodes_in(*name, lo, hi) {
                    let v = self.attr_num(j, *name);
                    fin &= v.is_finite();
                    b.val[(j - lo) as usize] = v;
                }
                *ok &= fin;
                b
            }
            PlanExpr::Arith(op, x, y) => {
                let mut a = self.col_expr(x, lo, hi, pool, ok);
                let b = self.col_expr(y, lo, hi, pool, ok);
                let mut fin = true;
                for (i, (va, ca)) in a.val.iter_mut().zip(&mut a.cost).enumerate() {
                    let vb = b.val[i];
                    let v = match op {
                        ArithOp::Add => *va + vb,
                        ArithOp::Sub => *va - vb,
                        ArithOp::Mul => *va * vb,
                        ArithOp::Div => {
                            if vb.abs() < 1e-12 {
                                0.0
                            } else {
                                *va / vb
                            }
                        }
                    };
                    fin &= v.is_finite();
                    *va = v;
                    *ca += 1 + b.cost[i];
                }
                *ok &= fin;
                pool.push(b);
                a
            }
            PlanExpr::Neg(x) => {
                let mut a = self.col_expr(x, lo, hi, pool, ok);
                let mut fin = true;
                for (v, c) in a.val.iter_mut().zip(&mut a.cost) {
                    *v = -*v;
                    fin &= v.is_finite();
                    *c += 1;
                }
                *ok &= fin;
                a
            }
            // `column_supported` guarantees `children_base` here.
            PlanExpr::LeafAgg { kind, body, .. } => {
                if matches!(kind, AggKind::Sum | AggKind::Avg) {
                    if let LeafArg::Attr(name) = body {
                        return self.col_leaf_attr_sum(*kind, *name, lo, hi, pool, ok);
                    }
                }
                let mut out = acquire(pool, n, 0.0, 1);
                if let LeafArg::Const(c) = body {
                    *ok &= c.is_finite();
                }
                let check_leaf = matches!(body, LeafArg::Attr(_));
                let mut fin = true;
                for i in lo..hi {
                    let mut acc = 0.0f64;
                    let mut cost = 1u64;
                    let mut count = 0u32;
                    let end = self.arena.subtree_end(i);
                    let mut k = i + 1;
                    while k < end {
                        let (lc, lv) = self.leaf_arg_at(k, *body);
                        if check_leaf {
                            fin &= lv.is_finite();
                        }
                        cost += 1 + lc;
                        acc = scatter_accum(*kind, acc, lv, count == 0);
                        count += 1;
                        k = self.arena.subtree_end(k);
                    }
                    let v = finish_agg(*kind, acc, count);
                    fin &= v.is_finite();
                    let idx = (i - lo) as usize;
                    out.val[idx] = v;
                    out.cost[idx] = cost;
                }
                *ok &= fin;
                out
            }
            PlanExpr::Agg(inner) => {
                let body = inner
                    .body
                    .as_ref()
                    .expect("column_supported requires a body");
                let b = self.col_expr(body, lo, hi, pool, ok);
                let mut out = acquire(pool, n, 0.0, 1);
                let mut fin = true;
                for i in lo..hi {
                    let mut acc = 0.0f64;
                    let mut cost = 1u64;
                    let mut count = 0u32;
                    let end = self.arena.subtree_end(i);
                    let mut k = i + 1;
                    while k < end {
                        let ki = (k - lo) as usize;
                        cost += 1 + b.cost[ki];
                        acc = scatter_accum(inner.kind, acc, b.val[ki], count == 0);
                        count += 1;
                        k = self.arena.subtree_end(k);
                    }
                    let v = finish_agg(inner.kind, acc, count);
                    fin &= v.is_finite();
                    let idx = (i - lo) as usize;
                    out.val[idx] = v;
                    out.cost[idx] = cost;
                }
                *ok &= fin;
                pool.push(b);
                out
            }
            PlanExpr::Count(_) => unreachable!("column_supported rejects Count"),
        }
    }

    /// Sparse column for `sum`/`avg` over a children-base attribute leaf.
    /// Missing attributes contribute `+0.0`, which is an exact identity on
    /// the running sum (a sum of non-`-0.0` addends is never `-0.0`), so
    /// only the attribute-carrying children — found through the postings
    /// list — are scattered to their parents. The step cost per element is
    /// closed-form: one aggregate entry plus `for_each` + leaf for each
    /// child.
    fn col_leaf_attr_sum(
        &self,
        kind: AggKind,
        name: Symbol,
        lo: u32,
        hi: u32,
        pool: &mut Vec<ColBuf>,
        ok: &mut bool,
    ) -> ColBuf {
        let n = (hi - lo) as usize;
        let mut out = acquire(pool, n, 0.0, 1);
        for i in lo..hi {
            out.cost[(i - lo) as usize] = 1 + 2 * u64::from(self.arena.child_count(i));
        }
        let mut fin = true;
        for &j in self.arena.attr_nodes_in(name, lo, hi) {
            let p = self.arena.parent(j);
            if p < lo {
                continue;
            }
            let v = self.attr_num(j, name);
            fin &= v.is_finite();
            out.val[(p - lo) as usize] += v;
        }
        for (idx, v) in out.val.iter_mut().enumerate() {
            let c = self.arena.child_count(lo + idx as u32);
            if c == 0 {
                *v = 0.0;
            } else if matches!(kind, AggKind::Avg) {
                *v /= f64::from(c);
            }
            fin &= v.is_finite();
        }
        *ok &= fin;
        out
    }
}

/// Minimum element count for the columnar aggregate sweep; below this the
/// scalar loop's smaller constant factor wins.
const COLUMN_MIN: u32 = 8;

/// One reusable column pair: per-element body value and the exact
/// interpreter step cost of producing it.
#[derive(Debug, Default)]
struct ColBuf {
    val: Vec<f64>,
    cost: Vec<u64>,
}

thread_local! {
    /// Reused column buffers for [`PlanEval::column_agg`] (one columnar
    /// evaluation is active at a time; `col_expr` never re-enters it).
    static COL_POOL: std::cell::RefCell<Vec<ColBuf>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Takes a buffer from the pool sized to `n` with the given initial value
/// and step cost.
fn acquire(pool: &mut Vec<ColBuf>, n: usize, v0: f64, c0: u64) -> ColBuf {
    let mut b = pool.pop().unwrap_or_default();
    b.val.clear();
    b.val.resize(n, v0);
    b.cost.clear();
    b.cost.resize(n, c0);
    b
}

/// Finishes one gathered children-base aggregate: empty aggregates yield
/// `0.0` and `Avg` divides by the child count, exactly as the interpreter
/// does at aggregate exit.
#[inline]
fn finish_agg(kind: AggKind, acc: f64, count: u32) -> f64 {
    if count == 0 {
        0.0
    } else if matches!(kind, AggKind::Avg) {
        acc / f64::from(count)
    } else {
        acc
    }
}

/// One child value arriving at its parent's accumulator. `first` is true
/// for the parent's first child (preorder index `parent + 1`), which seeds
/// `Max`/`Min` exactly like the interpreter's `started` flag.
#[inline]
fn scatter_accum(kind: AggKind, acc: f64, v: f64, first: bool) -> f64 {
    match kind {
        AggKind::Sum | AggKind::Avg => acc + v,
        AggKind::Max => {
            if first {
                v
            } else {
                acc.max(v)
            }
        }
        AggKind::Min => {
            if first {
                v
            } else {
                acc.min(v)
            }
        }
        AggKind::Count => unreachable!("count sub-aggregates never take the columnar path"),
    }
}

/// Whether `e` can be evaluated as a column over a preorder range:
/// per-node leaves, arithmetic, and predicate-free children-base
/// aggregates (which scatter child values to parents in one pass).
/// Descendants-base sub-aggregates are excluded — their range folds
/// cannot reuse prefix sums without changing floating-point rounding.
fn column_supported(e: &PlanExpr) -> bool {
    match e {
        PlanExpr::Const(_) | PlanExpr::Attr(_) => true,
        PlanExpr::LeafAgg { children_base, .. } => *children_base,
        PlanExpr::Agg(inner) => {
            inner.children_base
                && inner.preds.is_empty()
                && !matches!(inner.kind, AggKind::Count)
                && inner.body.as_ref().is_some_and(column_supported)
        }
        PlanExpr::Arith(_, a, b) => column_supported(a) && column_supported(b),
        PlanExpr::Neg(a) => column_supported(a),
        PlanExpr::Count(_) => false,
    }
}

/// Evaluates one pure predicate at arena node `j`, accumulating the exact
/// interpreter step cost. Shared by the fused-aggregate loop and the
/// loop-nest plan evaluator.
#[inline]
fn pure_pred_matches(arena: &IrArena, j: u32, p: &PurePred, steps: &mut u64) -> bool {
    match p {
        PurePred::Atom {
            atom,
            negated,
            cost,
        } => {
            *steps += cost;
            pure_atom_matches(arena, j, atom) != *negated
        }
        PurePred::Tree { expr, kinds } => match kinds {
            Some(table) => {
                let k = arena.kind(j);
                let (matched, cost) = table
                    .entries
                    .iter()
                    .find(|&&(s, ..)| s == k)
                    .map_or(table.default, |&(_, m, c)| (m, c));
                *steps += cost;
                matched
            }
            None => eval_pure(arena, j, expr, steps),
        },
    }
}

/// The `@a == V` test over arena node `j` (enum by symbol; bool via the
/// compile-time [`BoolView`]; numeric or missing attributes never match).
fn attr_eq(arena: &IrArena, j: u32, name: Symbol, target: Symbol, view: BoolView) -> bool {
    match arena.attr(j, name) {
        Some(AttrValue::Enum(v)) => v == target,
        Some(AttrValue::Bool(b)) => match view {
            BoolView::True => b,
            BoolView::False => !b,
            BoolView::NotBool => false,
        },
        _ => false,
    }
}

/// Evaluates a pure predicate tree at arena node `j`, accumulating into
/// `steps` exactly the unit charges the interpreter would make: one per
/// predicate node entered, with `&&`/`||` short-circuiting and a missing
/// child probe skipping its inner predicate.
fn eval_pure(arena: &IrArena, j: u32, e: &PureExpr, steps: &mut u64) -> bool {
    *steps += 1;
    match e {
        PureExpr::Atom(a) => pure_atom_matches(arena, j, a),
        PureExpr::Not(inner) => !eval_pure(arena, j, inner, steps),
        PureExpr::And(a, b) => eval_pure(arena, j, a, steps) && eval_pure(arena, j, b, steps),
        PureExpr::Or(a, b) => eval_pure(arena, j, a, steps) || eval_pure(arena, j, b, steps),
        PureExpr::Child(idx, inner) => match arena.nth_child(j, *idx as usize) {
            Some(child) => eval_pure(arena, child, inner, steps),
            None => false,
        },
    }
}

fn pure_atom_matches(arena: &IrArena, j: u32, atom: &PureAtom) -> bool {
    match *atom {
        PureAtom::IsType(k) => arena.kind(j) == k,
        PureAtom::HasAttr(a) => arena.attr(j, a).is_some(),
        PureAtom::AttrEq(a, v, view) => attr_eq(arena, j, a, v, view),
        PureAtom::AttrCmp(a, op, k) => {
            matches!(arena.attr(j, a).and_then(|x| x.as_num()), Some(v) if op.apply(v, k))
        }
    }
}

impl Program {
    /// Executes the compiled feature over one arena with the given step
    /// budget, without a CSE cache.
    ///
    /// # Errors
    ///
    /// Same conditions as [`super::Evaluator::eval`].
    pub fn eval(&self, arena: &IrArena, budget: u64) -> Result<f64, EvalError> {
        Vm::run(self, arena, 0, budget, None)
    }
}

/// Which engine an [`EvalPool`] (and the search built on it) uses.
/// Serializable so a process-level island worker can be told which engine
/// to rebuild (both engines are bit-identical, so this is a speed knob,
/// not a correctness one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum EvalEngine {
    /// The compiled bytecode VM over arena-flattened loops (default).
    #[default]
    Compiled,
    /// The recursive reference interpreter in [`super::eval`].
    Interpreter,
}

/// Default capacity bound for the compiled-program LRU cache.
pub const PROGRAM_CACHE_CAP: usize = 1 << 16;

/// A batch evaluation engine over a fixed set of loops.
///
/// Construction flattens every loop into an [`IrArena`] once; evaluation
/// compiles each distinct feature once (memoised by structural fingerprint)
/// and shares CSE results across features, loops and threads. With
/// [`EvalEngine::Interpreter`] the pool delegates to the reference
/// interpreter instead — byte-identical results, just slower; the GP search
/// exposes this as a runtime choice precisely so the equivalence is
/// testable end-to-end.
pub struct EvalPool<'a> {
    trees: Vec<&'a IrNode>,
    arenas: Vec<Arc<IrArena>>,
    engine: EvalEngine,
    cache: EvalCache,
    /// Compiled programs, bounded: a long-lived pool (the `fegen serve`
    /// daemon's warm path) must not grow without limit under a stream of
    /// distinct features. Strict LRU replaces the old epoch flush, which
    /// dumped all 65k entries at once and leaked unboundedly below the
    /// flush threshold in any long-lived process. Behind an `Arc` so the
    /// serve daemon's per-batch pools can share one warm cache
    /// ([`EvalPool::adopt_program_cache`]); programs are keyed by
    /// structural fingerprint only, never by loop, so sharing across
    /// batches is always sound (unlike the CSE result cache, which is
    /// loop-indexed and stays per-pool).
    programs: Arc<Mutex<LruCache<Fingerprint, Arc<Program>>>>,
    cancel: Option<CancelToken>,
    vm_evals: AtomicU64,
    interp_evals: AtomicU64,
    fast_evals: AtomicU64,
    plan_evals: AtomicU64,
    frame_evals: AtomicU64,
    program_hits: AtomicU64,
    program_misses: AtomicU64,
}

/// A point-in-time snapshot of an [`EvalPool`]'s cumulative activity
/// counters (observability only; counting never affects evaluation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Per-loop evaluations dispatched to the bytecode VM.
    pub vm_evals: u64,
    /// Per-loop evaluations dispatched to the reference interpreter.
    pub interp_evals: u64,
    /// VM evaluations of straight-line fast-path programs (leaves, indexed
    /// counts, fused aggregates — no plan or frame aggregates).
    pub fast_evals: u64,
    /// VM evaluations of programs containing loop-nest plans (and no frame
    /// aggregates).
    pub plan_evals: u64,
    /// VM evaluations of programs containing frame-path fallback
    /// aggregates (per-element bytecode dispatch).
    pub frame_evals: u64,
    /// Compiled-program cache hits.
    pub program_hits: u64,
    /// Compiled-program cache misses (compilations).
    pub program_misses: u64,
    /// Compiled programs evicted by the bounded LRU cache.
    pub program_evictions: u64,
    /// CSE result-cache hits.
    pub result_hits: u64,
    /// CSE result-cache misses.
    pub result_misses: u64,
    /// Live CSE cache entries at snapshot time.
    pub cache_entries: u64,
}

impl<'a> EvalPool<'a> {
    /// Builds a pool over `trees` using the given engine.
    pub fn new(trees: impl IntoIterator<Item = &'a IrNode>, engine: EvalEngine) -> EvalPool<'a> {
        let trees: Vec<&IrNode> = trees.into_iter().collect();
        let arenas = match engine {
            EvalEngine::Compiled => trees
                .iter()
                .map(|t| Arc::new(IrArena::from_tree(t)))
                .collect(),
            EvalEngine::Interpreter => Vec::new(),
        };
        EvalPool::from_parts(trees, arenas, engine)
    }

    /// Builds a compiled-engine pool directly over pre-flattened arenas —
    /// the `fegen serve` warm path, where arenas come out of the daemon's
    /// digest-keyed LRU cache and a batch must never re-flatten a loop it
    /// has already seen.
    pub fn from_arenas(arenas: Vec<Arc<IrArena>>) -> EvalPool<'static> {
        EvalPool::from_parts(Vec::new(), arenas, EvalEngine::Compiled)
    }

    fn from_parts(
        trees: Vec<&'a IrNode>,
        arenas: Vec<Arc<IrArena>>,
        engine: EvalEngine,
    ) -> EvalPool<'a> {
        EvalPool {
            trees,
            arenas,
            engine,
            cache: EvalCache::default(),
            programs: Arc::new(Mutex::new(LruCache::new(PROGRAM_CACHE_CAP))),
            cancel: None,
            vm_evals: AtomicU64::new(0),
            interp_evals: AtomicU64::new(0),
            fast_evals: AtomicU64::new(0),
            plan_evals: AtomicU64::new(0),
            frame_evals: AtomicU64::new(0),
            program_hits: AtomicU64::new(0),
            program_misses: AtomicU64::new(0),
        }
    }

    /// Rebounds the compiled-program LRU to `cap` entries (clamped to at
    /// least 1). Existing entries are discarded — callers set this before
    /// the first evaluation. Capacity never changes results, only how
    /// often a program is recompiled; the differential suite pins this.
    pub fn set_program_cache_capacity(&mut self, cap: usize) {
        *self.programs.lock() = LruCache::new(cap);
    }

    /// Shares `donor`'s compiled-program cache with this pool. The serve
    /// daemon builds a short-lived pool per batch over LRU-cached arenas;
    /// adopting the long-lived pool's cache keeps programs warm across
    /// batches. Sound because programs are keyed by structural fingerprint
    /// alone — the loop-indexed CSE cache is deliberately *not* shared.
    pub fn adopt_program_cache(&mut self, donor: &EvalPool<'_>) {
        self.programs = Arc::clone(&donor.programs);
    }

    /// The engine this pool evaluates with.
    pub fn engine(&self) -> EvalEngine {
        self.engine
    }

    /// Number of loops in the pool.
    pub fn len(&self) -> usize {
        match self.engine {
            EvalEngine::Interpreter => self.trees.len(),
            EvalEngine::Compiled => self.arenas.len(),
        }
    }

    /// True when the pool holds no loops.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the compiled program for `expr`, compiling at most once per
    /// distinct structure.
    fn program(&self, expr: &FeatureExpr) -> Arc<Program> {
        let key = expr.fingerprint();
        if let Some(p) = self.programs.lock().get(&key) {
            self.program_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(p);
        }
        // Compile outside the lock: a slow compile must not stall other
        // threads' cache hits. A racing thread may compile the same
        // program; compilation is pure, so adopting either copy is fine.
        self.program_misses.fetch_add(1, Ordering::Relaxed);
        let compiled = Arc::new(Program::compile(expr));
        let mut programs = self.programs.lock();
        if let Some(p) = programs.get(&key) {
            return Arc::clone(p);
        }
        programs.insert(key, Arc::clone(&compiled));
        compiled
    }

    /// Evaluates `expr` on loop `idx` with the given budget.
    ///
    /// # Errors
    ///
    /// Same conditions as [`super::Evaluator::eval`]; identical outcomes
    /// for both engines.
    pub fn eval(&self, expr: &FeatureExpr, idx: usize, budget: u64) -> Result<f64, EvalError> {
        match self.engine {
            EvalEngine::Interpreter => {
                self.interp_evals.fetch_add(1, Ordering::Relaxed);
                expr.eval_with_budget(self.trees[idx], budget)
            }
            EvalEngine::Compiled => {
                let prog = self.program(expr);
                self.note_vm_evals(&prog, 1);
                Vm::run(
                    &prog,
                    self.arenas[idx].as_ref(),
                    idx as u32,
                    budget,
                    Some(&self.cache),
                )
            }
        }
    }

    /// Batches the VM-dispatch counters: `n` evaluations of `prog`,
    /// attributed to its execution tier (observability only).
    fn note_vm_evals(&self, prog: &Program, n: u64) {
        self.vm_evals.fetch_add(n, Ordering::Relaxed);
        let tier = match prog.path() {
            ProgramPath::Fast => &self.fast_evals,
            ProgramPath::LoopNest => &self.plan_evals,
            ProgramPath::Frame => &self.frame_evals,
        };
        tier.fetch_add(n, Ordering::Relaxed);
    }

    /// Installs a cancellation token consulted by
    /// [`EvalPool::column_cancellable`]: a coordinator-initiated shutdown
    /// then interrupts an in-flight column between loops instead of
    /// waiting it out. Plain [`EvalPool::column`] is deliberately *not*
    /// affected — resume-time column recomputation and accept-path
    /// re-derivation must never be perturbed by cancellation timing.
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = Some(cancel);
    }

    /// Evaluates `expr` over every loop, applying the paper's discard rule:
    /// `None` as soon as any loop fails (budget exhaustion or non-finite
    /// value), otherwise the per-loop feature column.
    pub fn column(&self, expr: &FeatureExpr, budget: u64) -> Option<Vec<f64>> {
        self.column_inner(expr, budget, false)
    }

    /// [`EvalPool::column`], but bails out (returning `None`) between
    /// loops once the installed cancellation token flips. Only safe where
    /// a spurious `None` is discarded wholesale — the GP fitness path
    /// gates commits on the token, so a cancelled column can never be
    /// memoised as a genuine failure.
    pub fn column_cancellable(&self, expr: &FeatureExpr, budget: u64) -> Option<Vec<f64>> {
        self.column_inner(expr, budget, true)
    }

    fn column_inner(&self, expr: &FeatureExpr, budget: u64, cancellable: bool) -> Option<Vec<f64>> {
        let cancelled =
            || cancellable && self.cancel.as_ref().is_some_and(CancelToken::is_cancelled);
        match self.engine {
            EvalEngine::Interpreter => {
                self.interp_evals
                    .fetch_add(self.trees.len() as u64, Ordering::Relaxed);
                let mut out = Vec::with_capacity(self.trees.len());
                for t in &self.trees {
                    if cancelled() {
                        return None;
                    }
                    out.push(expr.eval_with_budget(t, budget).ok()?);
                }
                Some(out)
            }
            EvalEngine::Compiled => {
                // Columnar sweep: one program fetch, one scratch allocation
                // set, and one counter flush for the whole column; the
                // cancellation token is still consulted at every cell
                // boundary so shutdown latency is unchanged.
                let prog = self.program(expr);
                let mut scratch = VmScratch::default();
                let mut out = Vec::with_capacity(self.arenas.len());
                for (i, arena) in self.arenas.iter().enumerate() {
                    if cancelled() {
                        self.note_vm_evals(&prog, out.len() as u64);
                        return None;
                    }
                    match Vm::run_scratch(
                        &prog,
                        arena.as_ref(),
                        i as u32,
                        budget,
                        Some(&self.cache),
                        &mut scratch,
                    ) {
                        Ok(v) => out.push(v),
                        Err(_) => {
                            self.note_vm_evals(&prog, out.len() as u64 + 1);
                            return None;
                        }
                    }
                }
                self.note_vm_evals(&prog, out.len() as u64);
                Some(out)
            }
        }
    }

    /// Number of live CSE cache entries (diagnostics).
    pub fn cache_entries(&self) -> usize {
        self.cache.map.read().len()
    }

    /// Snapshot of the pool's cumulative activity counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            vm_evals: self.vm_evals.load(Ordering::Relaxed),
            interp_evals: self.interp_evals.load(Ordering::Relaxed),
            fast_evals: self.fast_evals.load(Ordering::Relaxed),
            plan_evals: self.plan_evals.load(Ordering::Relaxed),
            frame_evals: self.frame_evals.load(Ordering::Relaxed),
            program_hits: self.program_hits.load(Ordering::Relaxed),
            program_misses: self.program_misses.load(Ordering::Relaxed),
            program_evictions: self.programs.lock().evictions(),
            result_hits: self.cache.hits.load(Ordering::Relaxed),
            result_misses: self.cache.misses.load(Ordering::Relaxed),
            cache_entries: self.cache_entries() as u64,
        }
    }

    /// Publishes the pool's counters as `eval.*` telemetry gauges (the
    /// caller decides when to [`Telemetry::emit_metrics`]).
    pub fn record_telemetry(&self, telemetry: &Telemetry) {
        if !telemetry.is_enabled() {
            return;
        }
        let s = self.stats();
        telemetry.gauge_set("eval.vm_evals", s.vm_evals as f64);
        telemetry.gauge_set("eval.interp_evals", s.interp_evals as f64);
        telemetry.gauge_set("eval.path_fast", s.fast_evals as f64);
        telemetry.gauge_set("eval.path_plan", s.plan_evals as f64);
        telemetry.gauge_set("eval.path_frame", s.frame_evals as f64);
        telemetry.gauge_set("eval.program_hits", s.program_hits as f64);
        telemetry.gauge_set("eval.program_misses", s.program_misses as f64);
        telemetry.gauge_set("eval.program_evictions", s.program_evictions as f64);
        telemetry.gauge_set("eval.result_hits", s.result_hits as f64);
        telemetry.gauge_set("eval.result_misses", s.result_misses as f64);
        telemetry.gauge_set("eval.cache_entries", s.cache_entries as f64);
    }
}

impl std::fmt::Debug for EvalPool<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalPool")
            .field("loops", &self.trees.len())
            .field("engine", &self.engine)
            .field("cache_entries", &self.cache_entries())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::IrNode;
    use crate::lang::eval::DEFAULT_BUDGET;
    use crate::lang::parse::parse_feature;

    fn sample_ir() -> IrNode {
        IrNode::build("loop", |l| {
            l.attr_num("num-iter", 49.0);
            l.child("basic-block", |b| {
                b.attr_num("loop-depth", 1.0);
                b.attr_bool("may-be-hot", true);
                b.child("insn", |i| {
                    i.attr_enum("mode", "SI");
                    i.child("set", |s| {
                        s.child("reg", |r| {
                            r.attr_enum("mode", "SI");
                        });
                        s.child("plus", |p| {
                            p.child("reg", |r| {
                                r.attr_enum("mode", "SI");
                            });
                            p.child("const_int", |c| {
                                c.attr_num("value", 4.0);
                            });
                        });
                    });
                });
                b.child("jump_insn", |_| {});
            });
        })
    }

    /// Every expression the interpreter's test battery exercises must agree
    /// between VM and interpreter — value, error and remaining-budget
    /// decisions alike.
    const BATTERY: &[&str] = &[
        "get-attr(@num-iter)",
        "get-attr(@no-such-attr)",
        "count(/*)",
        "count(//*)",
        "count(filter(//*, is-type(reg)))",
        "count(filter(//*, is-type(insn)))",
        "count(filter(//*, @mode==SI))",
        "count(filter(//*, @may-be-hot==true))",
        "count(filter(//*, @loop-depth==1))",
        "count(filter(//*, has-attr(@mode)))",
        "count(filter(//*, !has-attr(@mode)))",
        "count(filter(//*, is-type(reg) || is-type(const_int)))",
        "count(filter(//*, is-type(reg) && @mode==SI))",
        "count(filter(//*, is-type(insn) && /[0][is-type(set) && /[0][is-type(reg)]]))",
        "count(filter(//*, /[7][is-type(reg)]))",
        "sum(filter(//*, is-type(const_int)), get-attr(@value))",
        "max(//*, count(/*))",
        "min(//*, count(/*))",
        "avg(filter(//*, is-type(basic-block)), count(/*))",
        "sum(filter(//*, is-type(nonexistent-kind)), 1)",
        "max(filter(//*, is-type(nonexistent-kind)), 1)",
        "2 + 3 * 4",
        "count(//*) / 2",
        "5 / 0",
        "-count(/*)",
        "count(filter(//*, count(/*) > 1))",
        "count(filter(//*, 0.0 > count(/*)))",
        "sum(//*, sum(//*, count(//*)))",
        "avg(//*, get-attr(@value) * 2 - 1)",
        "min(filter(/*, has-attr(@loop-depth)), get-attr(@loop-depth))",
        // Loop-nest plan shapes: postings-driven outer loops, dynamic
        // predicates, nested aggregates in bodies and comparisons.
        "sum(filter(//*, is-type(reg)), count(/*) + 1)",
        "sum(filter(//*, has-attr(@mode)), get-attr(@value) + count(//*))",
        "avg(filter(//*, is-type(insn) && count(/*) > 0), sum(/*, count(/*)))",
        "max(filter(/*, count(/*) > 0), min(//*, get-attr(@value) * 2))",
        "count(filter(filter(//*, is-type(set)), count(//*) > 1))",
        "sum(filter(//*, is-type(reg) || /[0][count(/*) > 0]), 1)",
        "min(filter(//*, !(count(/*) > 2)), max(/*, get-attr(@value)) - 1)",
    ];

    #[test]
    fn vm_matches_interpreter_on_battery() {
        let ir = sample_ir();
        let arena = IrArena::from_tree(&ir);
        for src in BATTERY {
            let f = parse_feature(src).unwrap();
            let prog = Program::compile(&f);
            let want = f.eval_with_budget(&ir, DEFAULT_BUDGET);
            let got = prog.eval(&arena, DEFAULT_BUDGET);
            assert_eq!(got, want, "mismatch on {src}");
        }
    }

    #[test]
    fn vm_matches_interpreter_at_every_budget_boundary() {
        let ir = sample_ir();
        let arena = IrArena::from_tree(&ir);
        for src in BATTERY {
            let f = parse_feature(src).unwrap();
            let prog = Program::compile(&f);
            // Find the exact step cost with a generous budget, then probe
            // every interesting boundary.
            let spent = {
                let mut ev = crate::lang::Evaluator::new(DEFAULT_BUDGET);
                let _ = ev.eval(&f, &ir);
                DEFAULT_BUDGET - ev.remaining()
            };
            for budget in [0, 1, spent.saturating_sub(1), spent, spent + 1] {
                let want = f.eval_with_budget(&ir, budget);
                let got = prog.eval(&arena, budget);
                assert_eq!(got, want, "mismatch on {src} at budget {budget}");
            }
        }
    }

    #[test]
    fn pool_column_matches_interpreter_and_caches() {
        let irs: Vec<IrNode> = (0..4)
            .map(|i| {
                let mut ir = sample_ir();
                ir.attr_num("num-iter", 10.0 + i as f64);
                ir
            })
            .collect();
        let pool = EvalPool::new(irs.iter(), EvalEngine::Compiled);
        let oracle = EvalPool::new(irs.iter(), EvalEngine::Interpreter);
        for src in BATTERY {
            let f = parse_feature(src).unwrap();
            assert_eq!(
                pool.column(&f, DEFAULT_BUDGET),
                oracle.column(&f, DEFAULT_BUDGET),
                "column mismatch on {src}"
            );
        }
        // Root aggregates of the battery populated the CSE cache; replaying
        // the battery must hit it and still agree.
        assert!(pool.cache_entries() > 0);
        for src in BATTERY {
            let f = parse_feature(src).unwrap();
            assert_eq!(
                pool.column(&f, DEFAULT_BUDGET),
                oracle.column(&f, DEFAULT_BUDGET),
                "cached column mismatch on {src}"
            );
        }
    }

    #[test]
    fn non_finite_results_are_detected_and_cached() {
        let ir = sample_ir();
        let huge = format!("sum(//*, {0} * {0})", f64::MAX);
        let f = parse_feature(&huge).unwrap();
        let pool = EvalPool::new([&ir], EvalEngine::Compiled);
        assert_eq!(pool.eval(&f, 0, DEFAULT_BUDGET), Err(EvalError::NonFinite));
        // The failing aggregate is cached as NonFinite with its step cost;
        // a replay must agree with the interpreter at tight budgets too.
        for budget in [0, 1, 5, 10, DEFAULT_BUDGET] {
            assert_eq!(
                pool.eval(&f, 0, budget),
                f.eval_with_budget(&ir, budget),
                "budget {budget}"
            );
        }
    }

    #[test]
    fn cache_reuse_preserves_budget_decisions() {
        let ir = sample_ir();
        let f = parse_feature("sum(//*, count(//*))").unwrap();
        let pool = EvalPool::new([&ir], EvalEngine::Compiled);
        // Warm the cache with a generous budget.
        let spent = {
            let mut ev = crate::lang::Evaluator::new(DEFAULT_BUDGET);
            let _ = ev.eval(&f, &ir);
            DEFAULT_BUDGET - ev.remaining()
        };
        assert!(pool.eval(&f, 0, DEFAULT_BUDGET).is_ok());
        // Replays at boundary budgets must match the interpreter exactly:
        // below the recorded cost the cache hit must fail with
        // BudgetExceeded, at or above it must succeed.
        for budget in [0, spent - 1, spent, spent + 1] {
            assert_eq!(
                pool.eval(&f, 0, budget),
                f.eval_with_budget(&ir, budget),
                "budget {budget}"
            );
        }
    }

    /// `levels` nested `sum(//*, ... + 0)` — beyond the plan depth bound,
    /// so the outer levels stay on the frame path.
    fn deep_src(levels: usize) -> String {
        let mut s = String::from("1");
        for _ in 0..levels {
            s = format!("sum(//*, {s} + 0)");
        }
        s
    }

    #[test]
    fn frame_fallback_and_superinstructions_match_interpreter() {
        let ir = sample_ir();
        let arena = IrArena::from_tree(&ir);
        let deep = deep_src(10);
        let gate_src = format!("sum(filter(//*, is-type(basic-block)), {deep})");
        let accum_src = format!("sum(filter(//*, {deep} > 0), 1)");
        for src in [deep.as_str(), gate_src.as_str(), accum_src.as_str()] {
            let f = parse_feature(src).unwrap();
            let prog = Program::compile(&f);
            assert!(!prog.aggs.is_empty(), "deep nest should keep frame levels");
            for budget in [0, 1, 13, 997, 50_000] {
                let want = f.eval_with_budget(&ir, budget);
                let got = prog.eval(&arena, budget);
                assert_eq!(got, want, "mismatch at budget {budget}");
            }
        }
        // The superinstruction rewrites really fired on the frame levels.
        let gate = Program::compile(&parse_feature(&gate_src).unwrap());
        assert!(gate.ops.iter().any(|op| matches!(op, Op::IsTypeGate(_))));
        let accum = Program::compile(&parse_feature(&accum_src).unwrap());
        assert!(accum.ops.iter().any(|op| matches!(op, Op::ConstAccum(_))));
    }

    #[test]
    fn pool_counts_execution_paths() {
        let ir = sample_ir();
        let pool = EvalPool::new([&ir], EvalEngine::Compiled);
        let fast = parse_feature("count(//*)").unwrap();
        let plan = parse_feature("sum(//*, 1 + get-attr(@value))").unwrap();
        let frame = parse_feature(&deep_src(10)).unwrap();
        assert_eq!(Program::compile(&fast).path(), ProgramPath::Fast);
        assert_eq!(Program::compile(&plan).path(), ProgramPath::LoopNest);
        assert_eq!(Program::compile(&frame).path(), ProgramPath::Frame);
        assert!(pool.column(&fast, DEFAULT_BUDGET).is_some());
        assert!(pool.column(&plan, DEFAULT_BUDGET).is_some());
        // Deep contexts have few descendants, so even the deep nest fits
        // the default budget on this small tree.
        assert!(pool.column(&frame, DEFAULT_BUDGET).is_some());
        let s = pool.stats();
        assert_eq!(s.fast_evals, 1);
        assert_eq!(s.plan_evals, 1);
        assert_eq!(s.frame_evals, 1);
        assert_eq!(s.vm_evals, 3);
    }
}
