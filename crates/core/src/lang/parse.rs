//! Parser for the textual feature syntax.
//!
//! The syntax matches the paper's Figure 16 output format:
//!
//! ```text
//! count(filter(//*, !(is-type(wide-int) || is-type(union_type))))
//! max(filter(/*, is-type(basic-block) && !@loop-depth==3), count(/*))
//! get-attr(@num-iter)
//! ```
//!
//! Notes on the grammar:
//!
//! - identifiers may contain `-` (`is-type`, `num-iter`, `basic-block`);
//!   a `-` is part of an identifier when it is sandwiched between
//!   identifier characters, so subtraction must be written with spaces
//!   (`a - b`), as the paper does;
//! - `!@a==V` parses as `!(@a==V)`, matching the feature listings in the
//!   paper;
//! - `(` in predicate position may open either a parenthesised predicate or
//!   a numeric comparison; the parser backtracks to disambiguate.

use super::ast::*;
use crate::ir::Symbol;
use std::fmt;

/// Error from [`parse_feature`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "feature parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a feature expression from its textual form.
///
/// # Errors
///
/// Returns a [`ParseError`] pointing at the first offending byte.
///
/// ```
/// let f = fegen_core::parse_feature("count(filter(//*, is-type(reg)))")?;
/// assert_eq!(f.to_string(), "count(filter(//*, is-type(reg)))");
/// # Ok::<(), fegen_core::lang::ParseError>(())
/// ```
pub fn parse_feature(input: &str) -> Result<FeatureExpr, ParseError> {
    let mut p = P {
        src: input.as_bytes(),
        pos: 0,
    };
    let e = p.num_expr()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(p.err("trailing input"));
    }
    Ok(e)
}

/// Parses a boolean predicate from its textual form (useful in tests and
/// for hand-written filters).
///
/// # Errors
///
/// Returns a [`ParseError`] pointing at the first offending byte.
pub fn parse_predicate(input: &str) -> Result<BoolExpr, ParseError> {
    let mut p = P {
        src: input.as_bytes(),
        pos: 0,
    };
    let e = p.bool_expr()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(p.err("trailing input"));
    }
    Ok(e)
}

struct P<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> P<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.src.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn starts_with(&mut self, s: &str) -> bool {
        self.skip_ws();
        self.src[self.pos..].starts_with(s.as_bytes())
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    /// `keyword(` lookahead — eats both the keyword and the paren.
    fn eat_call(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        if !rest.starts_with(kw.as_bytes()) {
            return false;
        }
        // The keyword must not continue as a longer identifier.
        if let Some(&c) = rest.get(kw.len()) {
            if is_ident_char(c) {
                return false;
            }
        }
        let save = self.pos;
        self.pos += kw.len();
        if self.eat("(") {
            true
        } else {
            self.pos = save;
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&c) = self.src.get(self.pos) {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else if c == b'-'
                && self.pos > start
                && matches!(self.src.get(self.pos + 1), Some(c2) if c2.is_ascii_alphabetic())
            {
                // Dash inside an identifier (e.g. `wide-int`).
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected identifier"));
        }
        Ok(std::str::from_utf8(&self.src[start..self.pos])
            .expect("ascii")
            .to_owned())
    }

    fn attr_name(&mut self) -> Result<Symbol, ParseError> {
        self.expect("@")?;
        Ok(Symbol::intern(&self.ident()?))
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.src.get(self.pos), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.src.get(self.pos) == Some(&b'.')
            && matches!(self.src.get(self.pos + 1), Some(c) if c.is_ascii_digit())
        {
            self.pos += 1;
            while matches!(self.src.get(self.pos), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.src.get(self.pos), Some(b'e' | b'E')) {
            let save = self.pos;
            self.pos += 1;
            if matches!(self.src.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if matches!(self.src.get(self.pos), Some(c) if c.is_ascii_digit()) {
                while matches!(self.src.get(self.pos), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            } else {
                self.pos = save;
            }
        }
        if self.pos == start {
            return Err(self.err("expected number"));
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .expect("ascii")
            .parse()
            .map_err(|_| self.err("malformed number"))
    }

    fn integer(&mut self) -> Result<usize, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.src.get(self.pos), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected integer"));
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .expect("ascii")
            .parse()
            .map_err(|_| self.err("integer out of range"))
    }

    // num := term (('+'|'-') term)*
    fn num_expr(&mut self) -> Result<FeatureExpr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            self.skip_ws();
            if self.eat("+") {
                let rhs = self.term()?;
                lhs = FeatureExpr::Arith(ArithOp::Add, Box::new(lhs), Box::new(rhs));
            } else if self.peek_minus_operator() {
                self.expect("-")?;
                let rhs = self.term()?;
                lhs = FeatureExpr::Arith(ArithOp::Sub, Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    /// A `-` in operator position (not a dash continuing an identifier —
    /// callers only ask after a complete term, so any `-` here is an
    /// operator unless it starts `//*` etc., which it cannot).
    fn peek_minus_operator(&mut self) -> bool {
        self.peek() == Some(b'-')
    }

    fn term(&mut self) -> Result<FeatureExpr, ParseError> {
        let mut lhs = self.num_factor()?;
        loop {
            self.skip_ws();
            if self.eat("*") {
                let rhs = self.num_factor()?;
                lhs = FeatureExpr::Arith(ArithOp::Mul, Box::new(lhs), Box::new(rhs));
            } else if self.peek() == Some(b'/') && !self.starts_with("//") && !self.starts_with("/*")
                && !self.starts_with("/[")
            {
                self.expect("/")?;
                let rhs = self.num_factor()?;
                lhs = FeatureExpr::Arith(ArithOp::Div, Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn num_factor(&mut self) -> Result<FeatureExpr, ParseError> {
        self.skip_ws();
        if self.eat_call("count") {
            let s = self.seq_expr()?;
            self.expect(")")?;
            return Ok(FeatureExpr::Count(s));
        }
        for (kw, make) in [
            ("sum", FeatureExpr::Sum as fn(SeqExpr, Box<FeatureExpr>) -> FeatureExpr),
            ("max", FeatureExpr::Max),
            ("min", FeatureExpr::Min),
            ("avg", FeatureExpr::Avg),
        ] {
            if self.eat_call(kw) {
                let s = self.seq_expr()?;
                self.expect(",")?;
                let e = self.num_expr()?;
                self.expect(")")?;
                return Ok(make(s, Box::new(e)));
            }
        }
        if self.eat_call("get-attr") {
            let a = self.attr_name()?;
            self.expect(")")?;
            return Ok(FeatureExpr::GetAttr(a));
        }
        if self.eat("(") {
            let e = self.num_expr()?;
            self.expect(")")?;
            return Ok(e);
        }
        if self.peek() == Some(b'-') {
            self.expect("-")?;
            let e = self.num_factor()?;
            return Ok(FeatureExpr::Neg(Box::new(e)));
        }
        match self.peek() {
            Some(c) if c.is_ascii_digit() => Ok(FeatureExpr::Const(self.number()?)),
            _ => Err(self.err("expected numeric expression")),
        }
    }

    fn seq_expr(&mut self) -> Result<SeqExpr, ParseError> {
        self.skip_ws();
        if self.eat_call("filter") {
            let s = self.seq_expr()?;
            self.expect(",")?;
            let p = self.bool_expr()?;
            self.expect(")")?;
            return Ok(SeqExpr::Filter(Box::new(s), Box::new(p)));
        }
        if self.eat("//*") {
            return Ok(SeqExpr::Descendants);
        }
        if self.eat("/*") {
            return Ok(SeqExpr::Children);
        }
        Err(self.err("expected sequence expression (`/*`, `//*` or `filter(...)`)"))
    }

    // bool := and ('||' and)*
    fn bool_expr(&mut self) -> Result<BoolExpr, ParseError> {
        let mut lhs = self.bool_and()?;
        while self.eat("||") {
            let rhs = self.bool_and()?;
            lhs = BoolExpr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bool_and(&mut self) -> Result<BoolExpr, ParseError> {
        let mut lhs = self.bool_unary()?;
        while {
            self.skip_ws();
            self.starts_with("&&")
        } {
            self.expect("&&")?;
            let rhs = self.bool_unary()?;
            lhs = BoolExpr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bool_unary(&mut self) -> Result<BoolExpr, ParseError> {
        self.skip_ws();
        if self.peek() == Some(b'!') && !self.starts_with("!=") {
            self.expect("!")?;
            let p = self.bool_unary()?;
            return Ok(BoolExpr::Not(Box::new(p)));
        }
        self.bool_prim()
    }

    fn bool_prim(&mut self) -> Result<BoolExpr, ParseError> {
        self.skip_ws();
        if self.eat_call("is-type") {
            let t = self.ident()?;
            self.expect(")")?;
            return Ok(BoolExpr::IsType(Symbol::intern(&t)));
        }
        if self.eat_call("has-attr") {
            let a = self.attr_name()?;
            self.expect(")")?;
            return Ok(BoolExpr::HasAttr(a));
        }
        if self.starts_with("@") {
            let a = self.attr_name()?;
            let op = self.cmp_op()?;
            // RHS: number, `true`/`false`, or enum identifier.
            self.skip_ws();
            if matches!(self.peek(), Some(c) if c.is_ascii_digit())
                || (self.peek() == Some(b'-')
                    && matches!(self.src.get(self.pos + 1), Some(c) if c.is_ascii_digit()))
            {
                let neg = self.eat("-");
                let mut v = self.number()?;
                if neg {
                    v = -v;
                }
                return Ok(BoolExpr::AttrCmpNum(a, op, v));
            }
            let value = self.ident()?;
            if op == CmpOp::Eq {
                return Ok(BoolExpr::AttrEqEnum(a, Symbol::intern(&value)));
            }
            if op == CmpOp::Ne {
                return Ok(BoolExpr::Not(Box::new(BoolExpr::AttrEqEnum(
                    a,
                    Symbol::intern(&value),
                ))));
            }
            return Err(self.err("enum attributes only support `==` and `!=`"));
        }
        if self.starts_with("/[") {
            self.expect("/[")?;
            let idx = self.integer()?;
            self.expect("]")?;
            self.expect("[")?;
            let p = self.bool_expr()?;
            self.expect("]")?;
            return Ok(BoolExpr::ChildMatches(idx, Box::new(p)));
        }
        if self.starts_with("(") {
            // Could be a parenthesised predicate or the LHS of a numeric
            // comparison. Try the predicate first; backtrack on failure.
            let save = self.pos;
            self.expect("(")?;
            if let Ok(p) = self.bool_expr() {
                if self.eat(")") {
                    // Only accept if not followed by a comparison operator
                    // (which would mean the parens were numeric after all).
                    return Ok(p);
                }
            }
            self.pos = save;
        }
        // Numeric comparison.
        let lhs = self.num_expr()?;
        let op = self.cmp_op()?;
        let rhs = self.num_expr()?;
        Ok(BoolExpr::Cmp(op, Box::new(lhs), Box::new(rhs)))
    }

    fn cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        self.skip_ws();
        if self.eat("==") {
            Ok(CmpOp::Eq)
        } else if self.eat("!=") {
            Ok(CmpOp::Ne)
        } else if self.eat("<=") {
            Ok(CmpOp::Le)
        } else if self.eat(">=") {
            Ok(CmpOp::Ge)
        } else if self.eat("<") {
            Ok(CmpOp::Lt)
        } else if self.eat(">") {
            Ok(CmpOp::Gt)
        } else {
            Err(self.err("expected comparison operator"))
        }
    }
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c == b'-'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) {
        let e1 = parse_feature(src).unwrap_or_else(|err| panic!("parse `{src}`: {err}"));
        let printed = e1.to_string();
        let e2 = parse_feature(&printed)
            .unwrap_or_else(|err| panic!("reparse `{printed}`: {err}"));
        assert_eq!(e1, e2, "roundtrip mismatch for `{src}` -> `{printed}`");
    }

    #[test]
    fn parses_get_attr() {
        roundtrip("get-attr(@num-iter)");
    }

    #[test]
    fn parses_count_filter() {
        roundtrip("count(filter(//*, !is-type(wide-int)))");
    }

    #[test]
    fn parses_nested_aggregates() {
        roundtrip("sum(filter(/*, is-type(call_insn) && has-attr(@unchanging)), count(filter(//*, is-type(real_type))))");
    }

    #[test]
    fn parses_paper_feature_3_style() {
        roundtrip(
            "count(filter(/*, is-type(basic-block) && (!@loop-depth==2 || (0.0 > \
             ((count(filter(//*, is-type(var_decl))) - count(filter(//*, is-type(xor) && \
             @mode==HI))) / count(filter(/*, is-type(code_label))))))))",
        );
    }

    #[test]
    fn parses_paper_feature_4_style() {
        roundtrip(
            "max(filter(/*, is-type(basic-block) && !(@loop-depth==3 && @may-be-hot==true)), \
             count(filter(/*, is-type(insn) && /[5][is-type(set) && /[0][is-type(reg) && \
             !@mode==DF]])))",
        );
    }

    #[test]
    fn parses_arithmetic_with_spaces() {
        roundtrip("count(/*) - 2 + 3 * count(//*) / 4");
    }

    #[test]
    fn dash_identifiers_vs_subtraction() {
        // `num-iter` is one identifier; `a - b` with spaces is subtraction.
        let e = parse_feature("get-attr(@loop-depth) - 1").unwrap();
        assert!(matches!(e, FeatureExpr::Arith(ArithOp::Sub, _, _)));
    }

    #[test]
    fn not_binds_attr_comparison() {
        // `!@loop-depth==2` is `!(@loop-depth==2)` as in the paper listings.
        let p = parse_predicate("!@loop-depth==2").unwrap();
        assert!(matches!(p, BoolExpr::Not(_)));
    }

    #[test]
    fn numeric_comparison_with_parenthesised_lhs() {
        let p = parse_predicate("(count(/*) + 1) > 2").unwrap();
        assert!(matches!(p, BoolExpr::Cmp(CmpOp::Gt, _, _)));
    }

    #[test]
    fn parenthesised_predicate() {
        let p = parse_predicate("(is-type(reg) || is-type(mem)) && has-attr(@mode)").unwrap();
        assert!(matches!(p, BoolExpr::And(_, _)));
    }

    #[test]
    fn enum_not_equal() {
        let p = parse_predicate("@mode != DF").unwrap();
        assert!(matches!(p, BoolExpr::Not(_)));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_feature("count(/*) extra").is_err());
    }

    #[test]
    fn rejects_unbalanced_parens() {
        assert!(parse_feature("count(filter(//*, is-type(reg))").is_err());
    }

    #[test]
    fn rejects_enum_ordering_comparison() {
        assert!(parse_predicate("@mode < DF").is_err());
    }

    #[test]
    fn error_carries_offset() {
        let err = parse_feature("count(??)").unwrap_err();
        assert!(err.offset >= 6);
    }

    #[test]
    fn negative_attr_comparison() {
        let p = parse_predicate("@offset >= -4").unwrap();
        assert_eq!(p, BoolExpr::AttrCmpNum(Symbol::intern("offset"), CmpOp::Ge, -4.0));
    }

    #[test]
    fn scientific_notation_constants() {
        let e = parse_feature("6.1384926724882432e17").unwrap();
        assert!(matches!(e, FeatureExpr::Const(v) if v > 6.13e17 && v < 6.14e17));
    }
}

/// Serialises a feature list as text: one feature per line, in order.
///
/// The format round-trips through [`feature_list_from_text`] and is the
/// deployment artifact of a search — "the final output of the system will
/// be the latest features list" (§III).
pub fn feature_list_to_text(features: &[super::ast::FeatureExpr]) -> String {
    let mut out = String::new();
    for f in features {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    out
}

/// Parses a feature list: one feature per line; blank lines and lines
/// starting with `#` are ignored.
///
/// # Errors
///
/// Returns the first line's parse error, with the line number in the
/// message.
pub fn feature_list_from_text(
    text: &str,
) -> Result<Vec<super::ast::FeatureExpr>, ParseError> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_feature(line).map_err(|e| ParseError {
            message: format!("line {}: {}", lineno + 1, e.message),
            offset: e.offset,
        })?);
    }
    Ok(out)
}

#[cfg(test)]
mod list_tests {
    use super::*;

    #[test]
    fn feature_list_roundtrips() {
        let features = vec![
            parse_feature("get-attr(@num-iter)").unwrap(),
            parse_feature("count(filter(//*, is-type(reg)))").unwrap(),
            parse_feature("max(//*, count(/*)) - 2").unwrap(),
        ];
        let text = feature_list_to_text(&features);
        assert_eq!(feature_list_from_text(&text).unwrap(), features);
    }

    #[test]
    fn feature_list_skips_comments_and_blanks() {
        let text = "# the deployment list\n\nget-attr(@num-iter)\n\n# done\n";
        let parsed = feature_list_from_text(text).unwrap();
        assert_eq!(parsed.len(), 1);
    }

    #[test]
    fn feature_list_errors_carry_line_numbers() {
        let err = feature_list_from_text("count(//*)\n???\n").unwrap_err();
        assert!(err.message.contains("line 2"), "{}", err.message);
    }
}
