//! The feature expression language: AST, parser, printer, evaluator and the
//! subtree-addressing utilities used by the GP operators.
//!
//! See the crate-level docs for the role this language plays in the system;
//! the sub-modules are:
//!
//! - [`mod@self`] re-exports the AST types ([`FeatureExpr`], [`BoolExpr`],
//!   [`SeqExpr`], [`ArithOp`], [`CmpOp`]),
//! - [`parse_feature`] / [`parse_predicate`] parse the textual syntax,
//! - `Display` impls print it back (round-tripping),
//! - [`Evaluator`] evaluates with a deterministic step budget,
//! - [`visit`] addresses subtrees by `(sort, pre-order index)`.

mod ast;
mod compile;
mod eval;
pub(crate) mod parse;
mod print;
pub mod visit;
pub mod vm;

pub use ast::{ArithOp, BoolExpr, CmpOp, FeatureExpr, Fingerprint, SeqExpr};
pub use compile::{Program, ProgramPath};
pub use eval::{EvalError, Evaluator, DEFAULT_BUDGET};
pub use parse::{
    feature_list_from_text, feature_list_to_text, parse_feature, parse_predicate, ParseError,
};
pub use vm::{EvalEngine, EvalPool, PoolStats};
