//! Versioned on-disk snapshots of a running feature search.
//!
//! A [`SearchCheckpoint`] captures everything the outer greedy loop and the
//! in-flight GP run need to continue deterministically: the accepted feature
//! list, the outer RNG stream, budget counters, and (when interrupted
//! mid-GP) the full [`GpSnapshot`] — population, fitness memo and the GP
//! run's own RNG stream. Expressions travel as their canonical text;
//! print/parse round-trips are exact, so nothing is lost.
//!
//! Derived data (feature columns, internal CV splits, the baseline and
//! oracle speedups) is deliberately *not* stored: it is a deterministic
//! function of the configuration and the training examples, and recomputing
//! it on resume keeps the snapshot small and impossible to de-synchronise.
//!
//! Two identity fingerprints guard against resuming the wrong search: a
//! hash of the [`SearchConfig`][crate::search::SearchConfig] and a digest of
//! the training examples. A mismatch is a typed
//! [`CheckpointError::StateMismatch`], never a silently wrong result.
//!
//! Writes are atomic and durable: temp file + fsync + rename in the target
//! directory, then an fsync of the directory itself — a crash mid-write
//! leaves the previous checkpoint intact, and a crash immediately after
//! the rename cannot lose the new one to an unflushed directory entry.
//!
//! Version 2 adds the optional [`IslandsSnapshot`]: the merged multi-island
//! state (per-island populations, statuses, restart counters) plus the
//! digest-guarded migration ledger. The checkpoint file is the wire format
//! for island coordination — there is no second serialization path.

use crate::error::CheckpointError;
use crate::faults::fnv1a;
use crate::gp::engine::GpSnapshot;
use crate::gp::island::IslandsSnapshot;
use crate::search::{SearchConfig, TrainingExample};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Format version written to and expected from checkpoint files.
pub const CHECKPOINT_VERSION: u32 = 2;

/// File name used inside a checkpoint directory.
pub const CHECKPOINT_FILE: &str = "search.ckpt.json";

/// One accepted feature, as recorded in a checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepRecord {
    /// The feature, printed.
    pub feature: String,
    /// Internal-validation speedup after adding it.
    pub speedup: f64,
    /// GP generations spent finding it.
    pub generations: usize,
}

/// Full serialized state of a feature search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchCheckpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Fingerprint of the search configuration.
    pub config_fingerprint: u64,
    /// Digest of the training examples.
    pub examples_digest: u64,
    /// Outer RNG stream state (already past the seed draw for the current
    /// GP run when `gp` is present).
    pub rng: [u64; 4],
    /// Accepted features so far, printed.
    pub features: Vec<String>,
    /// Per-feature history.
    pub steps: Vec<StepRecord>,
    /// Best internal-validation speedup reached so far.
    pub best_speedup: f64,
    /// Consecutive failed additions.
    pub failed: usize,
    /// GP generations consumed by *completed* per-feature runs (the
    /// in-flight run's generations live in `gp`).
    pub total_generations: usize,
    /// The in-flight GP run, when the checkpoint was written mid-search;
    /// `None` at an outer-loop boundary.
    pub gp: Option<GpSnapshot>,
    /// The in-flight island states (topologies with more than one
    /// island), captured at a round boundary; `None` for single-island
    /// searches and at outer-loop boundaries. Mutually exclusive with
    /// `gp`.
    pub islands: Option<IslandsSnapshot>,
}

/// Stable fingerprint of a search configuration, for checkpoint identity.
pub fn config_fingerprint(config: &SearchConfig) -> u64 {
    fnv1a(format!("{config:?}").as_bytes())
}

/// Stable digest of the training examples, for checkpoint identity.
pub fn examples_digest(examples: &[TrainingExample]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for e in examples {
        let text = format!("{:?}|{:?}", e.ir, e.cycles);
        h ^= fnv1a(text.as_bytes());
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Resolves a user-supplied checkpoint path: a directory means "the
/// [`CHECKPOINT_FILE`] inside it".
pub fn resolve_path(path: &Path) -> PathBuf {
    if path.is_dir() {
        path.join(CHECKPOINT_FILE)
    } else {
        path.to_path_buf()
    }
}

impl SearchCheckpoint {
    /// Writes the checkpoint atomically into `dir`, returning the final
    /// file path. The directory is created if needed; an existing
    /// checkpoint is replaced only once the new one is fully on disk.
    pub fn save(&self, dir: &Path) -> Result<PathBuf, CheckpointError> {
        std::fs::create_dir_all(dir).map_err(|e| CheckpointError::Io {
            path: dir.to_path_buf(),
            detail: e.to_string(),
        })?;
        let text = serde_json::to_string_pretty(self).map_err(|e| CheckpointError::Io {
            path: dir.join(CHECKPOINT_FILE),
            detail: format!("serialization failed: {e}"),
        })?;
        let tmp = dir.join(format!("{CHECKPOINT_FILE}.tmp"));
        let path = dir.join(CHECKPOINT_FILE);
        let io_err = |p: &Path| {
            let path = p.to_path_buf();
            move |e: std::io::Error| CheckpointError::Io {
                path,
                detail: e.to_string(),
            }
        };
        std::fs::write(&tmp, text).map_err(io_err(&tmp))?;
        // Flush the temp file's *contents* before the rename makes it
        // visible, so the rename can never publish a partially-flushed
        // checkpoint.
        std::fs::File::open(&tmp)
            .and_then(|f| f.sync_all())
            .map_err(io_err(&tmp))?;
        std::fs::rename(&tmp, &path).map_err(io_err(&path))?;
        // And flush the *directory entry*: without this, a crash right
        // after the rename can lose the checkpoint entirely on some
        // filesystems (the rename itself lives in the parent directory).
        std::fs::File::open(dir)
            .and_then(|d| d.sync_all())
            .map_err(io_err(dir))?;
        Ok(path)
    }

    /// Loads a checkpoint from `path` (a file, or a directory containing
    /// [`CHECKPOINT_FILE`]).
    pub fn load(path: &Path) -> Result<SearchCheckpoint, CheckpointError> {
        let path = resolve_path(path);
        let text = std::fs::read_to_string(&path).map_err(|e| CheckpointError::Io {
            path: path.clone(),
            detail: e.to_string(),
        })?;
        let checkpoint: SearchCheckpoint = match serde_json::from_str(&text) {
            Ok(c) => c,
            Err(e) => {
                // Distinguish "newer format we cannot decode" from plain
                // corruption when the version field itself is readable.
                if let Some(found) = peek_version(&text) {
                    if found != CHECKPOINT_VERSION {
                        return Err(CheckpointError::VersionMismatch {
                            path,
                            found,
                            expected: CHECKPOINT_VERSION,
                        });
                    }
                }
                return Err(CheckpointError::Corrupt {
                    path,
                    detail: e.to_string(),
                });
            }
        };
        if checkpoint.version != CHECKPOINT_VERSION {
            return Err(CheckpointError::VersionMismatch {
                path,
                found: checkpoint.version,
                expected: CHECKPOINT_VERSION,
            });
        }
        Ok(checkpoint)
    }

    /// Verifies that this checkpoint belongs to the given search identity.
    pub fn verify_identity(
        &self,
        path: &Path,
        config: &SearchConfig,
        examples: &[TrainingExample],
    ) -> Result<(), CheckpointError> {
        if self.config_fingerprint != config_fingerprint(config) {
            return Err(CheckpointError::StateMismatch {
                path: path.to_path_buf(),
                detail: "search configuration differs from the checkpointed run".into(),
            });
        }
        if self.examples_digest != examples_digest(examples) {
            return Err(CheckpointError::StateMismatch {
                path: path.to_path_buf(),
                detail: "training examples differ from the checkpointed run".into(),
            });
        }
        Ok(())
    }
}

/// Best-effort extraction of the `version` field from checkpoint text that
/// failed to decode as the current format.
fn peek_version(text: &str) -> Option<u32> {
    let value: serde::Value = serde_json::from_str(text).ok()?;
    if let serde::Value::Map(entries) = value {
        for (k, v) in entries {
            if matches!(&k, serde::Value::Str(s) if s == "version") {
                return match v {
                    serde::Value::U64(n) => u32::try_from(n).ok(),
                    serde::Value::I64(n) => u32::try_from(n).ok(),
                    _ => None,
                };
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::IrNode;

    fn sample() -> SearchCheckpoint {
        SearchCheckpoint {
            version: CHECKPOINT_VERSION,
            config_fingerprint: 11,
            examples_digest: 22,
            rng: [1, 2, 3, 4],
            features: vec!["count(//*)".into()],
            steps: vec![StepRecord {
                feature: "count(//*)".into(),
                speedup: 1.25,
                generations: 9,
            }],
            best_speedup: 1.25,
            failed: 1,
            total_generations: 40,
            gp: None,
            islands: None,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "fegen-ckpt-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = temp_dir("roundtrip");
        let ckpt = sample();
        let path = ckpt.save(&dir).unwrap();
        assert!(path.ends_with(CHECKPOINT_FILE));
        // Load via the file and via the directory.
        assert_eq!(SearchCheckpoint::load(&path).unwrap(), ckpt);
        assert_eq!(SearchCheckpoint::load(&dir).unwrap(), ckpt);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_missing_is_io_error() {
        let err = SearchCheckpoint::load(Path::new("/nonexistent/nowhere.json")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io { .. }), "{err}");
    }

    #[test]
    fn load_garbage_is_corrupt() {
        let dir = temp_dir("garbage");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(CHECKPOINT_FILE);
        std::fs::write(&path, "{ not json").unwrap();
        let err = SearchCheckpoint::load(&path).unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt { .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_is_detected() {
        let dir = temp_dir("version");
        let mut ckpt = sample();
        ckpt.version = CHECKPOINT_VERSION + 7;
        let path = ckpt.save(&dir).unwrap();
        let err = SearchCheckpoint::load(&path).unwrap_err();
        assert!(
            matches!(
                err,
                CheckpointError::VersionMismatch { found, expected, .. }
                    if found == CHECKPOINT_VERSION + 7 && expected == CHECKPOINT_VERSION
            ),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn identity_checks_catch_foreign_checkpoints() {
        let config = SearchConfig::quick();
        let examples = vec![TrainingExample {
            ir: IrNode::new("loop"),
            cycles: vec![10.0, 8.0],
        }];
        let mut ckpt = sample();
        ckpt.config_fingerprint = config_fingerprint(&config);
        ckpt.examples_digest = examples_digest(&examples);
        let path = Path::new("x.json");
        assert!(ckpt.verify_identity(path, &config, &examples).is_ok());

        let mut other_config = config.clone();
        other_config.seed ^= 1;
        assert!(matches!(
            ckpt.verify_identity(path, &other_config, &examples),
            Err(CheckpointError::StateMismatch { .. })
        ));

        let mut other_examples = examples.clone();
        other_examples[0].cycles.push(9.0);
        assert!(matches!(
            ckpt.verify_identity(path, &config, &other_examples),
            Err(CheckpointError::StateMismatch { .. })
        ));
    }

    #[test]
    fn digest_is_order_sensitive() {
        let a = TrainingExample {
            ir: IrNode::new("loop"),
            cycles: vec![1.0],
        };
        let b = TrainingExample {
            ir: IrNode::new("insn"),
            cycles: vec![2.0],
        };
        assert_ne!(
            examples_digest(&[a.clone(), b.clone()]),
            examples_digest(&[b, a])
        );
    }
}
