//! Offline reader for the JSONL event log: `fegen report`.
//!
//! Reads `events.jsonl` line by line (skipping at most one truncated tail
//! line left by a hard kill), aggregates the events and renders a run
//! summary: progress and ETA of an in-flight campaign, the slowest spans
//! (sites), eval-engine cache statistics, the GP fitness trajectory and the
//! campaign's retry/quarantine tallies.

use serde::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader};
use std::path::Path;

use super::EVENTS_FILE;

/// Event kinds this reader knows how to aggregate. A directory whose log
/// contains *only* kinds outside this list is almost certainly from a
/// different (newer/foreign) producer; summarizing it would print an
/// empty-looking report that reads as "the run did nothing", so
/// [`summarize_dir`] refuses with a typed error instead.
pub const KNOWN_KINDS: &[&str] = &[
    "campaign_start",
    "bench_done",
    "retry",
    "quarantine",
    "span",
    "metric",
    "checkpoint",
    "feature_step",
    "kfold_clamped",
    "search_start",
    "search_done",
    "shard_write",
    "gp_generation",
    "islands_start",
    "island_restart",
    "island_frozen",
    "island_heartbeat_missed",
    "island_migration",
    "island_converged",
    "island_done",
    "workers_start",
    "worker_respawn",
    "worker_reconnect",
    "worker_heartbeat_missed",
    "worker_frozen",
    "serve_start",
    "serve_request",
    "serve_reload",
    "serve_reload_failed",
];

/// Why a telemetry directory could not be summarized.
#[derive(Debug)]
pub enum ReportError {
    /// The directory or its `events.jsonl` could not be read.
    Io(io::Error),
    /// The log parsed, but every event kind is unknown to this reader —
    /// the summary would be silently empty, so we refuse instead.
    UnknownKindsOnly {
        /// The distinct kinds found, for the error message.
        kinds: Vec<String>,
    },
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportError::Io(e) => write!(f, "cannot read telemetry: {e}"),
            ReportError::UnknownKindsOnly { kinds } => write!(
                f,
                "telemetry log contains only unknown event kind(s) [{}]; \
                 this reader would render an empty summary — was the log \
                 written by a newer fegen?",
                kinds.join(", ")
            ),
        }
    }
}

impl std::error::Error for ReportError {}

impl From<io::Error> for ReportError {
    fn from(e: io::Error) -> Self {
        ReportError::Io(e)
    }
}

/// One parsed event line.
#[derive(Debug, Clone)]
pub struct ParsedEvent {
    pub seq: u64,
    pub ts_ms: u64,
    pub kind: String,
    pub fields: Value,
}

/// Looks up a key in a JSON map value.
pub fn field<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    match v {
        Value::Map(entries) => entries
            .iter()
            .find(|(k, _)| matches!(k, Value::Str(s) if s == key))
            .map(|(_, v)| v),
        _ => None,
    }
}

/// A field as an unsigned integer (accepting any non-negative number).
pub fn field_u64(v: &Value, key: &str) -> Option<u64> {
    match field(v, key)? {
        Value::U64(u) => Some(*u),
        Value::I64(i) if *i >= 0 => Some(*i as u64),
        Value::F64(f) if *f >= 0.0 && f.fract() == 0.0 => Some(*f as u64),
        _ => None,
    }
}

/// A field as a float (accepting any number).
pub fn field_f64(v: &Value, key: &str) -> Option<f64> {
    match field(v, key)? {
        Value::F64(f) => Some(*f),
        Value::I64(i) => Some(*i as f64),
        Value::U64(u) => Some(*u as f64),
        _ => None,
    }
}

/// A field as a string slice.
pub fn field_str<'a>(v: &'a Value, key: &str) -> Option<&'a str> {
    match field(v, key)? {
        Value::Str(s) => Some(s.as_str()),
        _ => None,
    }
}

/// A field as a boolean.
pub fn field_bool(v: &Value, key: &str) -> Option<bool> {
    match field(v, key)? {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

/// Reads and parses every well-formed line of `dir/events.jsonl`.
/// Unparsable lines are counted, not fatal (a killed run may leave one).
pub fn read_events(dir: &Path) -> io::Result<(Vec<ParsedEvent>, usize)> {
    let path = dir.join(EVENTS_FILE);
    let file = std::fs::File::open(&path)?;
    let mut events = Vec::new();
    let mut skipped = 0usize;
    for line in BufReader::new(file).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<Value>(&line) {
            Ok(v) => {
                let parsed = (
                    field_u64(&v, "seq"),
                    field_u64(&v, "ts_ms"),
                    field_str(&v, "kind").map(str::to_owned),
                );
                match parsed {
                    (Some(seq), Some(ts_ms), Some(kind)) => events.push(ParsedEvent {
                        seq,
                        ts_ms,
                        kind,
                        fields: v,
                    }),
                    _ => skipped += 1,
                }
            }
            Err(_) => skipped += 1,
        }
    }
    Ok((events, skipped))
}

fn fmt_dur_ms(ms: u64) -> String {
    let s = ms / 1000;
    if s >= 3600 {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    } else if s >= 60 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{}.{:01}s", s, (ms % 1000) / 100)
    }
}

fn fmt_dur_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

fn rate(hits: u64, misses: u64) -> String {
    let total = hits + misses;
    if total == 0 {
        "n/a".to_owned()
    } else {
        format!("{:.1}%", 100.0 * hits as f64 / total as f64)
    }
}

/// Renders the run summary from parsed events.
pub fn render(events: &[ParsedEvent], skipped: usize) -> String {
    let mut out = String::new();
    if events.is_empty() {
        let _ = writeln!(out, "telemetry: no events");
        return out;
    }

    // Header: event counts, wall-clock window, sequence integrity.
    let first_ts = events.iter().map(|e| e.ts_ms).min().unwrap_or(0);
    let last_ts = events.iter().map(|e| e.ts_ms).max().unwrap_or(0);
    let mut kinds: BTreeMap<&str, usize> = BTreeMap::new();
    for e in events {
        *kinds.entry(&e.kind).or_insert(0) += 1;
    }
    let _ = writeln!(
        out,
        "telemetry: {} event(s) over {} ({} kind(s){})",
        events.len(),
        fmt_dur_ms(last_ts.saturating_sub(first_ts)),
        kinds.len(),
        if skipped > 0 {
            format!(", {skipped} unparsable line(s) skipped")
        } else {
            String::new()
        }
    );
    let kind_list: Vec<String> = kinds.iter().map(|(k, n)| format!("{k}×{n}")).collect();
    let _ = writeln!(out, "  kinds: {}", kind_list.join(" "));

    // Campaign progress + ETA.
    let total: Option<u64> = events
        .iter()
        .rev()
        .find(|e| e.kind == "campaign_start")
        .and_then(|e| field_u64(&e.fields, "total"));
    let done: Vec<&ParsedEvent> = events.iter().filter(|e| e.kind == "bench_done").collect();
    if let Some(total) = total {
        let reused = done
            .iter()
            .filter(|e| field_bool(&e.fields, "resumed").unwrap_or(false))
            .count() as u64;
        let measured = done.len() as u64 - reused;
        let _ = writeln!(
            out,
            "campaign: {}/{} benchmark(s) done ({} measured, {} reused)",
            done.len(),
            total,
            measured,
            reused
        );
        let remaining = total.saturating_sub(done.len() as u64);
        if remaining > 0 && !done.is_empty() {
            let avg_us: f64 = done
                .iter()
                .filter_map(|e| field_u64(&e.fields, "dur_us"))
                .sum::<u64>() as f64
                / done.len() as f64;
            let eta_ms = (avg_us * remaining as f64 / 1000.0) as u64;
            let _ = writeln!(
                out,
                "  ETA: ~{} for the remaining {remaining} benchmark(s)",
                fmt_dur_ms(eta_ms)
            );
        }
        let retries = events.iter().filter(|e| e.kind == "retry").count();
        let quarantined = events.iter().filter(|e| e.kind == "quarantine").count();
        let _ = writeln!(
            out,
            "  resilience: {retries} retried attempt(s), {quarantined} quarantine event(s)"
        );
    }

    // Slowest spans (the campaign labels per-site work `site:<bench>:<site>`).
    let mut spans: Vec<(&str, u64)> = events
        .iter()
        .filter(|e| e.kind == "span")
        .filter_map(|e| {
            Some((
                field_str(&e.fields, "path")?,
                field_u64(&e.fields, "dur_us")?,
            ))
        })
        .collect();
    if !spans.is_empty() {
        spans.sort_by_key(|&(_, dur)| std::cmp::Reverse(dur));
        let _ = writeln!(out, "slowest spans:");
        for (path, dur) in spans.iter().take(8) {
            let _ = writeln!(out, "  {:>10}  {path}", fmt_dur_us(*dur));
        }
    }

    // Eval-engine statistics: last cumulative emission per metric name.
    let mut metrics: BTreeMap<String, f64> = BTreeMap::new();
    for e in events.iter().filter(|e| e.kind == "metric") {
        if let (Some(name), Some(v)) = (
            field_str(&e.fields, "metric"),
            field_f64(&e.fields, "value"),
        ) {
            metrics.insert(name.to_owned(), v);
        }
    }
    let get = |name: &str| metrics.get(name).copied().unwrap_or(0.0) as u64;
    let vm = get("eval.vm_evals");
    let interp = get("eval.interp_evals");
    if vm + interp > 0 {
        let _ = writeln!(
            out,
            "eval engine: {} evaluation(s) ({} vm, {} interpreter)",
            vm + interp,
            vm,
            interp
        );
        let _ = writeln!(
            out,
            "  program cache: {} hit rate ({} hits / {} misses)",
            rate(get("eval.program_hits"), get("eval.program_misses")),
            get("eval.program_hits"),
            get("eval.program_misses"),
        );
        let _ = writeln!(
            out,
            "  result cache:  {} hit rate ({} hits / {} misses)",
            rate(get("eval.result_hits"), get("eval.result_misses")),
            get("eval.result_hits"),
            get("eval.result_misses"),
        );
        let fast = get("eval.path_fast");
        let plan = get("eval.path_plan");
        let frame = get("eval.path_frame");
        let paths = fast + plan + frame;
        if paths > 0 {
            let pct = 100.0 * frame as f64 / paths as f64;
            let _ = writeln!(
                out,
                "  vm paths:      {fast} fast / {plan} loop-nest / {frame} frame fallback ({pct:.1}% fallback)"
            );
        }
    }

    // Fork-once campaign accounting: snapshots built, cells forked off
    // them, and how much shared work the snapshots actually saved.
    let snapshots = get("campaign.snapshot_builds");
    if snapshots > 0 {
        let forks = get("campaign.forks");
        let init_forks = get("campaign.init_forks");
        let _ = writeln!(
            out,
            "fork-once: {snapshots} snapshot(s) built, {forks} cell(s) forked \
             ({init_forks} reusing pre-warmed init state)"
        );
        if let Some(reuse) = metrics.get("campaign.snapshot_reuse_rate") {
            let _ = writeln!(
                out,
                "  analysis reuse: {:.1}% of per-function analyses served from the snapshot cache",
                reuse * 100.0
            );
        }
    }

    // GP trajectory: generations seen, last best/mean, stagnation.
    let gens: Vec<&ParsedEvent> = events
        .iter()
        .filter(|e| e.kind == "gp_generation")
        .collect();
    if let Some(last) = gens.last() {
        let best = field_f64(&last.fields, "best").unwrap_or(f64::NAN);
        let mean = field_f64(&last.fields, "mean").unwrap_or(f64::NAN);
        let stagnant = field_u64(&last.fields, "stagnant").unwrap_or(0);
        let _ = writeln!(
            out,
            "gp: {} generation event(s); last best {best:.4}, mean {mean:.4}, stagnant {stagnant}",
            gens.len()
        );
    }

    // Island resilience: restarts, freezes, migrations, slowest island —
    // the search-phase mirror of the campaign resilience tally.
    if let Some(start) = events.iter().rev().find(|e| e.kind == "islands_start") {
        let islands = field_u64(&start.fields, "islands").unwrap_or(0);
        let workers = field_u64(&start.fields, "workers").unwrap_or(1);
        let restarts: u64 = events
            .iter()
            .filter(|e| e.kind == "island_restart")
            .filter_map(|e| field_u64(&e.fields, "restarts"))
            .sum();
        let frozen = events.iter().filter(|e| e.kind == "island_frozen").count();
        let missed = events
            .iter()
            .filter(|e| e.kind == "island_heartbeat_missed")
            .count();
        let migrations: Vec<&ParsedEvent> = events
            .iter()
            .filter(|e| e.kind == "island_migration")
            .collect();
        let rounds = migrations
            .iter()
            .filter_map(|e| field_u64(&e.fields, "round"))
            .max()
            .unwrap_or(0);
        let _ = writeln!(out, "islands: {islands} island(s), {workers} worker(s)");
        let _ = writeln!(
            out,
            "  resilience: {restarts} restarted step(s), {frozen} frozen island(s), \
             {missed} missed heartbeat(s)"
        );
        let _ = writeln!(
            out,
            "  migration: {} exchange(s), last at round {rounds}",
            migrations.len()
        );
        // Last word per island wins: a resumed run re-reports them.
        let mut done: BTreeMap<u64, (String, u64)> = BTreeMap::new();
        for e in events.iter().filter(|e| e.kind == "island_done") {
            if let Some(id) = field_u64(&e.fields, "island") {
                done.insert(
                    id,
                    (
                        field_str(&e.fields, "status").unwrap_or("?").to_owned(),
                        field_u64(&e.fields, "step_us").unwrap_or(0),
                    ),
                );
            }
        }
        if let Some((id, (status, dur))) = done
            .iter()
            .max_by_key(|(id, (_, dur))| (*dur, u64::MAX - *id))
        {
            let _ = writeln!(
                out,
                "  slowest island: {id} ({}, {status})",
                fmt_dur_us(*dur)
            );
        }
    }

    // Worker resilience: the process-supervisor mirror of the island tally.
    // Respawns and reconnects are observational (byte-invisible to results);
    // frozen islands are the only degradation that reaches the merge.
    if let Some(start) = events.iter().rev().find(|e| e.kind == "workers_start") {
        let workers = field_u64(&start.fields, "workers").unwrap_or(0);
        let launcher = field_str(&start.fields, "launcher").unwrap_or("?");
        let respawns: u64 = events
            .iter()
            .filter(|e| e.kind == "worker_respawn")
            .filter_map(|e| field_u64(&e.fields, "respawns"))
            .sum();
        let reconnects: u64 = events
            .iter()
            .filter(|e| e.kind == "worker_reconnect")
            .filter_map(|e| field_u64(&e.fields, "reconnects"))
            .sum();
        let frozen: u64 = events
            .iter()
            .filter(|e| e.kind == "worker_frozen")
            .filter_map(|e| field_u64(&e.fields, "islands"))
            .sum();
        let missed = events
            .iter()
            .filter(|e| e.kind == "worker_heartbeat_missed")
            .count();
        let _ = writeln!(
            out,
            "worker processes: {workers} worker(s) via {launcher}"
        );
        let _ = writeln!(
            out,
            "  resilience: {respawns} respawn(s), {reconnects} reconnect(s), \
             {frozen} frozen island(s), {missed} missed heartbeat(s)"
        );
        let _ = writeln!(
            out,
            "  frames: {} sent / {} received, {} duplicate(s) dropped, \
             {} digest/handshake rejection(s)",
            get("worker.frames_tx"),
            get("worker.frames_rx"),
            get("worker.duplicates_dropped"),
            get("worker.digest_rejections"),
        );
    }

    // Serve daemon: request volume, cache behavior, hot reloads. Gauges
    // are cumulative, so the last emission is the daemon's final word.
    if events.iter().any(|e| e.kind == "serve_start") || metrics.contains_key("serve.requests") {
        let requests = get("serve.requests");
        let loops = get("serve.loops_evaluated");
        let errors = get("serve.errors");
        let _ = writeln!(
            out,
            "serve: {requests} request(s), {loops} loop(s) evaluated, {errors} error(s)"
        );
        let _ = writeln!(
            out,
            "  arena cache:   {} hit rate ({} hits / {} misses), {} entries, {} eviction(s)",
            rate(get("serve.arena_hits"), get("serve.arena_misses")),
            get("serve.arena_hits"),
            get("serve.arena_misses"),
            get("serve.arena_entries"),
            get("serve.arena_evictions"),
        );
        let _ = writeln!(
            out,
            "  program cache: {} hit rate ({} hits / {} misses), {} eviction(s)",
            rate(get("serve.pool_program_hits"), get("serve.pool_program_misses")),
            get("serve.pool_program_hits"),
            get("serve.pool_program_misses"),
            get("serve.pool_program_evictions"),
        );
        let _ = writeln!(
            out,
            "  queue depth peak: {}; reloads: {} ({} failed)",
            get("serve.queue_depth_peak"),
            get("serve.reloads"),
            get("serve.reload_failures"),
        );
    }

    // Checkpoint write latency.
    let ckpt: Vec<u64> = events
        .iter()
        .filter(|e| e.kind == "checkpoint")
        .filter_map(|e| field_u64(&e.fields, "dur_us"))
        .collect();
    if !ckpt.is_empty() {
        let max = ckpt.iter().copied().max().unwrap_or(0);
        let sum: u64 = ckpt.iter().sum();
        let _ = writeln!(
            out,
            "checkpoints: {} write(s), mean {}, max {}",
            ckpt.len(),
            fmt_dur_us(sum / ckpt.len() as u64),
            fmt_dur_us(max)
        );
    }

    out
}

/// Convenience wrapper: read `dir/events.jsonl` and render the summary.
///
/// # Errors
///
/// [`ReportError::Io`] when the log cannot be read;
/// [`ReportError::UnknownKindsOnly`] when the log is non-empty but every
/// event kind is foreign to this reader — a summary of it would be a
/// misleading zero-report, so the caller gets a typed refusal instead.
pub fn summarize_dir(dir: &Path) -> Result<String, ReportError> {
    let (events, skipped) = read_events(dir)?;
    if !events.is_empty() && !events.iter().any(|e| KNOWN_KINDS.contains(&e.kind.as_str())) {
        let mut kinds: Vec<String> = events.iter().map(|e| e.kind.clone()).collect();
        kinds.sort();
        kinds.dedup();
        return Err(ReportError::UnknownKindsOnly { kinds });
    }
    Ok(render(&events, skipped))
}

/// Verifies the structural invariants the sink promises: every line parses
/// (at most one truncated tail tolerated by `read_events`) and sequence
/// numbers are strictly increasing in file order. Returns the event count.
pub fn check_integrity(dir: &Path) -> io::Result<Result<usize, String>> {
    let (events, skipped) = read_events(dir)?;
    if skipped > 0 {
        return Ok(Err(format!("{skipped} unparsable line(s)")));
    }
    for pair in events.windows(2) {
        if pair[1].seq <= pair[0].seq {
            return Ok(Err(format!(
                "sequence not strictly increasing: {} then {}",
                pair[0].seq, pair[1].seq
            )));
        }
    }
    Ok(Ok(events.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::Telemetry;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fegen-report-test-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn summarizes_a_small_run() {
        let dir = tmp_dir("small");
        let t = Telemetry::to_dir(&dir).expect("open");
        t.event("campaign_start").u64("total", 3).emit();
        t.event("bench_done")
            .str("bench", "a")
            .u64("dur_us", 1000)
            .bool("resumed", false)
            .emit();
        t.event("bench_done")
            .str("bench", "b")
            .u64("dur_us", 3000)
            .bool("resumed", true)
            .emit();
        t.event("retry").str("site", "a:k0#1").emit();
        {
            let _s = t.span("site:a:k0#1");
        }
        t.counter_add("eval.vm_evals", 10);
        t.counter_add("eval.interp_evals", 2);
        t.counter_add("eval.program_hits", 8);
        t.counter_add("eval.program_misses", 2);
        t.counter_add("eval.path_fast", 6);
        t.counter_add("eval.path_plan", 3);
        t.counter_add("eval.path_frame", 1);
        t.counter_add("campaign.snapshot_builds", 3);
        t.counter_add("campaign.forks", 320);
        t.counter_add("campaign.init_forks", 300);
        t.gauge_set("campaign.snapshot_reuse_rate", 0.75);
        t.emit_metrics("eval_pool");
        t.event("gp_generation")
            .u64("generation", 5)
            .f64("best", 0.9)
            .f64("mean", 0.5)
            .u64("stagnant", 1)
            .emit();
        t.event("checkpoint").u64("dur_us", 500).emit();
        drop(t);

        let summary = summarize_dir(&dir).expect("summarize");
        assert!(summary.contains("2/3 benchmark(s) done"), "{summary}");
        assert!(summary.contains("1 measured, 1 reused"), "{summary}");
        assert!(summary.contains("ETA"), "{summary}");
        assert!(summary.contains("site:a:k0#1"), "{summary}");
        assert!(summary.contains("80.0%"), "{summary}");
        assert!(summary.contains("12 evaluation(s)"), "{summary}");
        assert!(
            summary.contains("6 fast / 3 loop-nest / 1 frame fallback (10.0% fallback)"),
            "{summary}"
        );
        assert!(
            summary.contains("3 snapshot(s) built, 320 cell(s) forked"),
            "{summary}"
        );
        assert!(summary.contains("analysis reuse: 75.0%"), "{summary}");
        assert!(summary.contains("best 0.9000"), "{summary}");
        assert!(summary.contains("checkpoints: 1 write(s)"), "{summary}");
        assert!(
            matches!(check_integrity(&dir).expect("read"), Ok(n) if n > 0),
            "integrity"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn summarizes_island_resilience() {
        let dir = tmp_dir("islands");
        let t = Telemetry::to_dir(&dir).expect("open");
        t.event("islands_start")
            .u64("islands", 4)
            .u64("migration_every", 3)
            .u64("restart_limit", 2)
            .u64("workers", 2)
            .emit();
        t.event("island_restart")
            .u64("island", 1)
            .u64("generation", 3)
            .u64("restarts", 2)
            .emit();
        t.event("island_frozen")
            .u64("island", 1)
            .u64("generations", 2)
            .u64("restarts", 3)
            .emit();
        t.event("island_heartbeat_missed")
            .u64("island", 3)
            .u64("overdue_ms", 900)
            .u64("deadline_ms", 250)
            .emit();
        t.event("island_migration")
            .u64("round", 3)
            .u64("from", 0)
            .u64("to", 1)
            .f64("quality", 1.5)
            .emit();
        t.event("island_migration")
            .u64("round", 6)
            .u64("from", 2)
            .u64("to", 3)
            .f64("quality", 1.7)
            .emit();
        for id in 0..4u64 {
            t.event("island_done")
                .u64("island", id)
                .str("status", if id == 1 { "frozen" } else { "converged" })
                .u64("generations", 6)
                .u64("restarts", u64::from(id == 1) * 3)
                .u64("step_us", 1_000 * (id + 1))
                .emit();
        }
        drop(t);

        let summary = summarize_dir(&dir).expect("summarize");
        assert!(
            summary.contains("islands: 4 island(s), 2 worker(s)"),
            "{summary}"
        );
        assert!(
            summary.contains("2 restarted step(s), 1 frozen island(s), 1 missed heartbeat(s)"),
            "{summary}"
        );
        assert!(
            summary.contains("2 exchange(s), last at round 6"),
            "{summary}"
        );
        assert!(summary.contains("slowest island: 3"), "{summary}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn summarizes_worker_resilience() {
        let dir = tmp_dir("workers");
        let t = Telemetry::to_dir(&dir).expect("open");
        t.event("workers_start")
            .u64("workers", 2)
            .str("launcher", "unix-socket")
            .u64("reconnect_limit", 3)
            .emit();
        t.event("worker_respawn")
            .u64("worker", 0)
            .u64("round", 2)
            .u64("respawns", 2)
            .emit();
        t.event("worker_reconnect")
            .u64("worker", 0)
            .u64("round", 2)
            .u64("reconnects", 1)
            .emit();
        t.event("worker_heartbeat_missed")
            .u64("worker", 1)
            .u64("round", 3)
            .emit();
        t.event("worker_frozen")
            .u64("worker", 1)
            .u64("round", 4)
            .u64("islands", 2)
            .emit();
        t.counter_add("worker.frames_tx", 40);
        t.counter_add("worker.frames_rx", 38);
        t.counter_add("worker.duplicates_dropped", 1);
        t.counter_add("worker.digest_rejections", 1);
        t.emit_metrics("proc_supervisor");
        drop(t);

        let summary = summarize_dir(&dir).expect("summarize");
        assert!(
            summary.contains("worker processes: 2 worker(s) via unix-socket"),
            "{summary}"
        );
        assert!(
            summary.contains(
                "2 respawn(s), 1 reconnect(s), 2 frozen island(s), 1 missed heartbeat(s)"
            ),
            "{summary}"
        );
        assert!(
            summary.contains(
                "frames: 40 sent / 38 received, 1 duplicate(s) dropped, \
                 1 digest/handshake rejection(s)"
            ),
            "{summary}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn integrity_flags_bad_sequences() {
        let dir = tmp_dir("badseq");
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(
            dir.join(EVENTS_FILE),
            "{\"seq\":1,\"ts_ms\":0,\"kind\":\"a\"}\n{\"seq\":1,\"ts_ms\":0,\"kind\":\"b\"}\n",
        )
        .expect("write");
        let got = check_integrity(&dir).expect("read");
        assert!(got.is_err(), "{got:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_log_renders() {
        let s = render(&[], 0);
        assert!(s.contains("no events"));
    }

    #[test]
    fn unknown_kinds_only_is_a_typed_error_not_a_zero_summary() {
        let dir = tmp_dir("unknown");
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(
            dir.join(EVENTS_FILE),
            "{\"seq\":1,\"ts_ms\":0,\"kind\":\"zorp\"}\n\
             {\"seq\":2,\"ts_ms\":1,\"kind\":\"blip\",\"n\":3}\n",
        )
        .expect("write");
        match summarize_dir(&dir) {
            Err(ReportError::UnknownKindsOnly { kinds }) => {
                assert_eq!(kinds, vec!["blip".to_string(), "zorp".to_string()]);
            }
            other => panic!("expected UnknownKindsOnly, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_kinds_mixed_with_known_still_summarize() {
        let dir = tmp_dir("mixed");
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(
            dir.join(EVENTS_FILE),
            "{\"seq\":1,\"ts_ms\":0,\"kind\":\"zorp\"}\n\
             {\"seq\":2,\"ts_ms\":1,\"kind\":\"checkpoint\",\"dur_us\":500}\n",
        )
        .expect("write");
        let summary = summarize_dir(&dir).expect("mixed logs still summarize");
        assert!(summary.contains("checkpoints: 1 write(s)"), "{summary}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_dir_is_io_error() {
        let dir = tmp_dir("absent");
        assert!(matches!(summarize_dir(&dir), Err(ReportError::Io(_))));
    }

    #[test]
    fn summarizes_serve_daemon() {
        let dir = tmp_dir("serve");
        let t = Telemetry::to_dir(&dir).expect("open");
        t.event("serve_start")
            .str("model", "model.fgm")
            .u64("model_digest", 7)
            .u64("n_features", 2)
            .u64("arena_cache_cap", 32)
            .emit();
        t.gauge_set("serve.requests", 10.0);
        t.gauge_set("serve.loops_evaluated", 40.0);
        t.gauge_set("serve.errors", 1.0);
        t.gauge_set("serve.arena_hits", 30.0);
        t.gauge_set("serve.arena_misses", 10.0);
        t.gauge_set("serve.arena_entries", 8.0);
        t.gauge_set("serve.arena_evictions", 2.0);
        t.gauge_set("serve.pool_program_hits", 78.0);
        t.gauge_set("serve.pool_program_misses", 2.0);
        t.gauge_set("serve.pool_program_evictions", 0.0);
        t.gauge_set("serve.queue_depth_peak", 3.0);
        t.gauge_set("serve.reloads", 1.0);
        t.gauge_set("serve.reload_failures", 1.0);
        t.emit_metrics("serve");
        drop(t);

        let summary = summarize_dir(&dir).expect("summarize");
        assert!(
            summary.contains("serve: 10 request(s), 40 loop(s) evaluated, 1 error(s)"),
            "{summary}"
        );
        assert!(
            summary.contains("arena cache:   75.0% hit rate (30 hits / 10 misses), 8 entries, 2 eviction(s)"),
            "{summary}"
        );
        assert!(
            summary.contains("program cache: 97.5% hit rate (78 hits / 2 misses), 0 eviction(s)"),
            "{summary}"
        );
        assert!(
            summary.contains("queue depth peak: 3; reloads: 1 (1 failed)"),
            "{summary}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
