//! Production inference: serve trained unroll models to compilers.
//!
//! The search side of this crate *finds* features and trains models; this
//! module *deploys* them. A [`ModelArtifact`](artifact::ModelArtifact) is
//! the versioned, digest-checked file that crosses the boundary, a
//! [`ServeEngine`](engine::ServeEngine) is the shared in-process brain
//! (bounded arena LRU, warm program cache, hot reload), and
//! [`daemon`] is the connection loop speaking length-prefixed frames via
//! the same codec as [`crate::gp::transport`].
//!
//! Everything reachable from the wire is treated as hostile: admission
//! caps bound node counts, nesting depth and interner growth *before* any
//! global side effect, and every failure is a typed response or a dead
//! connection — never a dead daemon.

pub mod artifact;
pub mod daemon;
pub mod engine;
pub mod wire;

pub use artifact::{feature_digest, ModelArtifact, ModelError, MODEL_VERSION};
pub use daemon::{run_stdio_serve, serve_connection, ServeError};
#[cfg(unix)]
pub use daemon::run_unix_serve;
pub use engine::{LoadedModel, ServeEngine, ServeOptions};
pub use wire::{
    decode_request, decode_response, encode_request, encode_response, AdmissionError,
    Decision, ServeRequest, ServeResponse, ServeStatsSnapshot, WireAttr, WireNode,
    ERROR_ID_UNDECODABLE, MAX_BATCH, MAX_IR_DEPTH, MAX_REQUEST_NODES, SERVE_PROTOCOL,
};
