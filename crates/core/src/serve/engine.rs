//! The daemon's shared inference engine.
//!
//! One [`ServeEngine`] is shared by every connection. It owns:
//!
//! - the **active model** behind `RwLock<Arc<LoadedModel>>` — a batch
//!   clones the `Arc` once at admission, so a hot-reload swaps the model
//!   for *future* batches without dropping or re-routing in-flight ones;
//! - the **arena LRU**: flattened [`IrArena`]s keyed by a canonical digest
//!   of the ingested IR, bounded so an endless stream of distinct loops
//!   cannot grow the daemon's heap (evictions are counted and surfaced as
//!   telemetry — the "RSS stays bounded" claim is measured, not asserted);
//! - the **warm pool**: a long-lived [`EvalPool`] whose bounded
//!   compiled-program cache every per-batch pool adopts, so feature
//!   programs compile once per model, not once per batch.

use super::artifact::{ModelArtifact, ModelError};
use super::wire::{
    validate_batch, AdmissionError, Decision, ServeStatsSnapshot, WireNode,
};
use crate::faults::fnv1a;
use crate::ir::IrArena;
use crate::lang::vm::PoolStats;
use crate::lang::{EvalPool, FeatureExpr};
use crate::lru::LruCache;
use crate::telemetry::Telemetry;
use parking_lot::{Mutex, RwLock};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::SystemTime;

/// Default bound on cached flattened arenas.
pub const DEFAULT_ARENA_CACHE_CAP: usize = 1024;

/// Default headroom of *new* interned symbols the daemon grants untrusted
/// input over its startup vocabulary.
pub const DEFAULT_SYMBOL_HEADROOM: usize = 4096;

/// Check the artifact file for changes every this many predict requests
/// (on top of explicit `Reload` messages). `0` disables polling.
pub const DEFAULT_RELOAD_CHECK_EVERY: u64 = 64;

/// Tunables of a [`ServeEngine`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bound on the arena LRU ([`DEFAULT_ARENA_CACHE_CAP`]).
    pub arena_cache_cap: usize,
    /// New-symbol headroom granted to requests
    /// ([`DEFAULT_SYMBOL_HEADROOM`]).
    pub symbol_headroom: usize,
    /// Poll the artifact file for hot-reload every N predict requests
    /// ([`DEFAULT_RELOAD_CHECK_EVERY`]; `0` = explicit `Reload` only).
    pub reload_check_every: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            arena_cache_cap: DEFAULT_ARENA_CACHE_CAP,
            symbol_headroom: DEFAULT_SYMBOL_HEADROOM,
            reload_check_every: DEFAULT_RELOAD_CHECK_EVERY,
        }
    }
}

/// A fully validated, ready-to-serve model: the artifact plus its
/// re-parsed features and content digest.
pub struct LoadedModel {
    /// The artifact as loaded from disk.
    pub artifact: ModelArtifact,
    /// `artifact.features`, parsed (validated at load; cannot fail here).
    pub features: Vec<FeatureExpr>,
    /// [`ModelArtifact::digest`] of the artifact.
    pub digest: u64,
}

/// Size+mtime signature of the artifact file, used to skip reload work
/// when nothing changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FileSig {
    len: u64,
    mtime: Option<SystemTime>,
}

fn file_sig(path: &std::path::Path) -> Option<FileSig> {
    let meta = std::fs::metadata(path).ok()?;
    Some(FileSig {
        len: meta.len(),
        mtime: meta.modified().ok(),
    })
}

/// The shared, `Sync` inference engine behind every serve connection.
pub struct ServeEngine {
    model_path: PathBuf,
    model: RwLock<Arc<LoadedModel>>,
    model_sig: Mutex<Option<FileSig>>,
    arenas: Mutex<LruCache<u64, Arc<IrArena>>>,
    /// Long-lived donor of the shared compiled-program cache.
    warm: EvalPool<'static>,
    opts: ServeOptions,
    /// Absolute interner cap: startup vocabulary + configured headroom.
    symbol_cap: usize,
    telemetry: Telemetry,
    requests: AtomicU64,
    loops_evaluated: AtomicU64,
    errors: AtomicU64,
    arena_hits: AtomicU64,
    arena_misses: AtomicU64,
    reloads: AtomicU64,
    reload_failures: AtomicU64,
    queue_depth: AtomicU64,
    queue_peak: AtomicU64,
    /// Pool counters accumulated across the per-batch pools.
    pool_vm_evals: AtomicU64,
    pool_program_hits: AtomicU64,
    pool_program_misses: AtomicU64,
    pool_result_hits: AtomicU64,
    pool_result_misses: AtomicU64,
    shutdown: AtomicBool,
}

impl ServeEngine {
    /// Loads the artifact at `model_path` and builds the engine.
    ///
    /// # Errors
    ///
    /// Any [`ModelError`] from the initial artifact load — the daemon
    /// refuses to start on a model it cannot fully validate.
    pub fn new(
        model_path: PathBuf,
        opts: ServeOptions,
        telemetry: Telemetry,
    ) -> Result<ServeEngine, ModelError> {
        let sig = file_sig(&model_path);
        let artifact = ModelArtifact::load(&model_path)?;
        let features = artifact.parsed_features()?;
        let digest = artifact.digest();
        // The symbol budget is anchored *after* the model's own features
        // and grammar vocabulary are interned, so legitimate startup
        // interning never eats into the untrusted-input headroom.
        let symbol_cap = crate::ir::symbol_count() + opts.symbol_headroom;
        telemetry
            .event("serve_start")
            .str("model", &model_path.display().to_string())
            .u64("model_digest", digest)
            .u64("n_features", features.len() as u64)
            .u64("arena_cache_cap", opts.arena_cache_cap as u64)
            .emit();
        Ok(ServeEngine {
            model_path,
            model: RwLock::new(Arc::new(LoadedModel {
                artifact,
                features,
                digest,
            })),
            model_sig: Mutex::new(sig),
            arenas: Mutex::new(LruCache::new(opts.arena_cache_cap)),
            warm: EvalPool::from_arenas(Vec::new()),
            symbol_cap,
            opts,
            telemetry,
            requests: AtomicU64::new(0),
            loops_evaluated: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            arena_hits: AtomicU64::new(0),
            arena_misses: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            reload_failures: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            queue_peak: AtomicU64::new(0),
            pool_vm_evals: AtomicU64::new(0),
            pool_program_hits: AtomicU64::new(0),
            pool_program_misses: AtomicU64::new(0),
            pool_result_hits: AtomicU64::new(0),
            pool_result_misses: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        })
    }

    /// The currently active model (a cheap `Arc` clone; holders survive
    /// hot-reloads untouched).
    pub fn model(&self) -> Arc<LoadedModel> {
        Arc::clone(&self.model.read())
    }

    /// The telemetry handle connections report through.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Flags the whole daemon (all connections, the accept loop) to stop.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// True once any connection processed a `Shutdown`.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Counts a request that was answered with an error.
    pub fn note_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Answers one `Predict` batch. Validation happens before any global
    /// side effect (interning, flattening); the model is pinned once so a
    /// concurrent hot-reload cannot split the batch across models.
    ///
    /// # Errors
    ///
    /// [`AdmissionError`] when the batch violates the size, depth or
    /// symbol-budget caps; the caller answers with a typed error response.
    pub fn predict(&self, loops: &[WireNode]) -> Result<Vec<Decision>, AdmissionError> {
        validate_batch(loops, self.symbol_cap)?;
        let depth = self.queue_depth.fetch_add(1, Ordering::SeqCst) + 1;
        self.queue_peak.fetch_max(depth, Ordering::SeqCst);
        let result = self.predict_admitted(loops);
        self.queue_depth.fetch_sub(1, Ordering::SeqCst);
        let n = self.requests.fetch_add(1, Ordering::Relaxed) + 1;
        if self.opts.reload_check_every > 0 && n.is_multiple_of(self.opts.reload_check_every) {
            self.maybe_reload();
        }
        Ok(result)
    }

    fn predict_admitted(&self, loops: &[WireNode]) -> Vec<Decision> {
        let model = self.model();
        let mut batch: Vec<Arc<IrArena>> = Vec::with_capacity(loops.len());
        let mut cached_flags = Vec::with_capacity(loops.len());
        for wire in loops {
            let ir = wire.to_ir();
            // Digest the canonical dump (attrs sorted by `to_ir`), so hit
            // rates do not depend on the client's attribute order and the
            // key is stable across daemon restarts.
            let digest = fnv1a(ir.dump().as_bytes());
            let hit = {
                let mut cache = self.arenas.lock();
                cache.get(&digest).map(Arc::clone)
            };
            match hit {
                Some(arena) => {
                    self.arena_hits.fetch_add(1, Ordering::Relaxed);
                    cached_flags.push(true);
                    batch.push(arena);
                }
                None => {
                    self.arena_misses.fetch_add(1, Ordering::Relaxed);
                    // Flatten outside the lock; a racing insert of the
                    // same digest is benign (identical arenas).
                    let arena = Arc::new(IrArena::from_tree(&ir));
                    self.arenas.lock().insert(digest, Arc::clone(&arena));
                    cached_flags.push(false);
                    batch.push(arena);
                }
            }
        }
        let n_loops = batch.len();
        let mut pool = EvalPool::from_arenas(batch);
        pool.adopt_program_cache(&self.warm);
        let budget = model.artifact.eval_budget;
        let decisions = (0..n_loops)
            .map(|i| {
                // Deployment rule: a failed feature contributes 0.0 — the
                // compiler must always get *some* decision.
                let row: Vec<f64> = model
                    .features
                    .iter()
                    .map(|f| pool.eval(f, i, budget).unwrap_or(0.0))
                    .collect();
                Decision {
                    unroll: model.artifact.tree.predict(&row),
                    cached: cached_flags[i],
                }
            })
            .collect();
        let s = pool.stats();
        self.pool_vm_evals.fetch_add(s.vm_evals, Ordering::Relaxed);
        self.pool_program_hits
            .fetch_add(s.program_hits, Ordering::Relaxed);
        self.pool_program_misses
            .fetch_add(s.program_misses, Ordering::Relaxed);
        self.pool_result_hits
            .fetch_add(s.result_hits, Ordering::Relaxed);
        self.pool_result_misses
            .fetch_add(s.result_misses, Ordering::Relaxed);
        self.loops_evaluated
            .fetch_add(n_loops as u64, Ordering::Relaxed);
        decisions
    }

    /// Checks the artifact file signature and reloads when it changed.
    /// Failures keep the old model and are counted, never fatal.
    pub fn maybe_reload(&self) -> bool {
        let sig = file_sig(&self.model_path);
        {
            let current = self.model_sig.lock();
            if sig == *current {
                return false;
            }
        }
        matches!(self.reload(), Ok(true))
    }

    /// Reloads the model artifact from disk. In-flight batches keep the
    /// `Arc` they pinned; only future batches see the new model.
    ///
    /// # Errors
    ///
    /// Any [`ModelError`] from the load — the old model stays active, the
    /// failure is counted and emitted as a `serve_reload_failed` event.
    pub fn reload(&self) -> Result<bool, ModelError> {
        let sig = file_sig(&self.model_path);
        let outcome = ModelArtifact::load(&self.model_path).and_then(|artifact| {
            let features = artifact.parsed_features()?;
            Ok((artifact, features))
        });
        match outcome {
            Ok((artifact, features)) => {
                let digest = artifact.digest();
                *self.model_sig.lock() = sig;
                if digest == self.model.read().digest {
                    return Ok(false);
                }
                *self.model.write() = Arc::new(LoadedModel {
                    artifact,
                    features,
                    digest,
                });
                self.reloads.fetch_add(1, Ordering::Relaxed);
                self.telemetry
                    .event("serve_reload")
                    .u64("model_digest", digest)
                    .emit();
                Ok(true)
            }
            Err(e) => {
                self.reload_failures.fetch_add(1, Ordering::Relaxed);
                self.telemetry
                    .event("serve_reload_failed")
                    .str("detail", &e.to_string())
                    .emit();
                Err(e)
            }
        }
    }

    /// Counter snapshot for `Stats` responses and telemetry.
    pub fn stats(&self) -> ServeStatsSnapshot {
        let arenas = self.arenas.lock();
        ServeStatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            loops_evaluated: self.loops_evaluated.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            arena_hits: self.arena_hits.load(Ordering::Relaxed),
            arena_misses: self.arena_misses.load(Ordering::Relaxed),
            arena_evictions: arenas.evictions(),
            arena_entries: arenas.len() as u64,
            reloads: self.reloads.load(Ordering::Relaxed),
            reload_failures: self.reload_failures.load(Ordering::Relaxed),
            queue_depth_peak: self.queue_peak.load(Ordering::Relaxed),
        }
    }

    /// The accumulated evaluation counters of the per-batch pools (the
    /// shared program cache's eviction counter rides along).
    pub fn pool_stats(&self) -> PoolStats {
        let warm = self.warm.stats();
        PoolStats {
            vm_evals: self.pool_vm_evals.load(Ordering::Relaxed),
            program_hits: self.pool_program_hits.load(Ordering::Relaxed),
            program_misses: self.pool_program_misses.load(Ordering::Relaxed),
            // The shared LRU counts evictions across every adopter.
            program_evictions: warm.program_evictions,
            result_hits: self.pool_result_hits.load(Ordering::Relaxed),
            result_misses: self.pool_result_misses.load(Ordering::Relaxed),
            ..PoolStats::default()
        }
    }

    /// Publishes the daemon's counters as `serve.*` gauges (callers decide
    /// when to [`Telemetry::emit_metrics`]).
    pub fn record_telemetry(&self) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let s = self.stats();
        let t = &self.telemetry;
        t.gauge_set("serve.requests", s.requests as f64);
        t.gauge_set("serve.loops_evaluated", s.loops_evaluated as f64);
        t.gauge_set("serve.errors", s.errors as f64);
        t.gauge_set("serve.arena_hits", s.arena_hits as f64);
        t.gauge_set("serve.arena_misses", s.arena_misses as f64);
        t.gauge_set("serve.arena_evictions", s.arena_evictions as f64);
        t.gauge_set("serve.arena_entries", s.arena_entries as f64);
        t.gauge_set("serve.reloads", s.reloads as f64);
        t.gauge_set("serve.reload_failures", s.reload_failures as f64);
        t.gauge_set("serve.queue_depth", self.queue_depth.load(Ordering::Relaxed) as f64);
        t.gauge_set("serve.queue_depth_peak", s.queue_depth_peak as f64);
        let hit_rate = if s.arena_hits + s.arena_misses > 0 {
            s.arena_hits as f64 / (s.arena_hits + s.arena_misses) as f64
        } else {
            0.0
        };
        t.gauge_set("serve.arena_hit_rate", hit_rate);
        let p = self.pool_stats();
        t.gauge_set("serve.pool_vm_evals", p.vm_evals as f64);
        t.gauge_set("serve.pool_program_hits", p.program_hits as f64);
        t.gauge_set("serve.pool_program_misses", p.program_misses as f64);
        t.gauge_set("serve.pool_program_evictions", p.program_evictions as f64);
    }

    /// Publishes the gauges *and* writes them to the event log as `metric`
    /// events (gauges are in-memory until emitted). Called when a
    /// connection or the daemon winds down.
    pub fn flush_telemetry(&self) {
        self.record_telemetry();
        self.telemetry.emit_metrics("serve");
    }
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("model_path", &self.model_path)
            .field("model_digest", &self.model.read().digest)
            .field("stats", &self.stats())
            .finish()
    }
}
