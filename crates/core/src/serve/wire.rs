//! The serve wire protocol: request/response vocabulary and hardened IR
//! ingestion.
//!
//! Messages travel as JSON payloads inside the digest-sealed frames of
//! [`crate::gp::transport`] — the daemon deliberately reuses the island
//! worker's codec (magic, version, sequence and FNV-1a digest checks, 64
//! MiB length cap) instead of inventing a second wire format. Frame-level
//! violations poison the connection; *payload*-level violations (garbage
//! JSON, hostile IR) are answered with a typed [`ServeResponse::Error`]
//! and the connection stays up.
//!
//! Loop IR arrives as [`WireNode`] — a string-keyed mirror of
//! [`IrNode`][crate::ir::IrNode] — and passes three hardening gates before
//! anything touches process-wide state:
//!
//! 1. **Nesting depth** is bounded by a raw-text scan *before* the
//!    recursive JSON decoder runs, so a 100k-bracket payload cannot blow
//!    the parser's stack.
//! 2. **Node count and IR depth** are bounded after decoding, so one
//!    request cannot flatten an arbitrarily large arena.
//! 3. **Symbol budget**: the global interner leaks each distinct string
//!    permanently (by design — see [`crate::ir::Symbol`]), so the number
//!    of *new* strings a request may intern is counted first and capped.
//!    A hostile stream of unique kinds is rejected before it can grow the
//!    interner, which would otherwise be an unbounded memory leak in a
//!    long-lived daemon.
//!
//! Only after all three gates does conversion intern strings and rebuild
//! an `IrNode` via `set_attr` — which also re-sorts attribute lists, so a
//! client that ships unsorted attrs cannot silently break the arena's
//! binary-search lookups.

use crate::ir::{self, AttrValue, IrNode, Symbol};
use crate::lang::vm::PoolStats;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Serve protocol version, checked in the `Hello`/`HelloAck` handshake on
/// top of the per-frame transport version.
pub const SERVE_PROTOCOL: u32 = 1;

/// Maximum raw JSON bracket nesting accepted before the decoder runs.
pub const MAX_JSON_DEPTH: usize = 256;

/// Maximum depth of one ingested IR tree.
pub const MAX_IR_DEPTH: usize = 64;

/// Maximum total nodes across the loops of one request.
pub const MAX_REQUEST_NODES: usize = 1 << 20;

/// Maximum loops in one `Predict` batch.
pub const MAX_BATCH: usize = 4096;

/// Attribute value on the wire (string-keyed mirror of
/// [`AttrValue`][crate::ir::AttrValue]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireAttr {
    /// Numeric attribute.
    Num(f64),
    /// Boolean flag.
    Bool(bool),
    /// Enumerated attribute.
    Enum(String),
}

/// One exported IR node on the wire. Strings instead of interned symbols:
/// interning is a side effect on process-global state, so it happens only
/// after the request passes every admission gate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireNode {
    /// Node kind, e.g. `insn`.
    pub kind: String,
    /// Named attributes (any order; conversion re-sorts).
    pub attrs: Vec<(String, WireAttr)>,
    /// Ordered children.
    pub children: Vec<WireNode>,
}

impl WireNode {
    /// Converts an in-process tree to its wire form (client side).
    pub fn from_ir(node: &IrNode) -> WireNode {
        WireNode {
            kind: node.kind().as_str().to_owned(),
            attrs: node
                .attrs()
                .iter()
                .map(|(name, value)| {
                    let value = match value {
                        AttrValue::Num(v) => WireAttr::Num(*v),
                        AttrValue::Bool(b) => WireAttr::Bool(*b),
                        AttrValue::Enum(s) => WireAttr::Enum(s.as_str().to_owned()),
                    };
                    (name.as_str().to_owned(), value)
                })
                .collect(),
            children: node.children().iter().map(WireNode::from_ir).collect(),
        }
    }

    /// Nodes in this subtree (including `self`), iteratively — hostile
    /// shapes must not pick the recursion depth.
    pub fn node_count(&self) -> usize {
        let mut count = 0usize;
        let mut stack = vec![self];
        while let Some(n) = stack.pop() {
            count += 1;
            stack.extend(n.children.iter());
        }
        count
    }

    /// Maximum depth of this subtree (a leaf has depth 1), iteratively.
    pub fn depth(&self) -> usize {
        let mut max = 0usize;
        let mut stack = vec![(self, 1usize)];
        while let Some((n, d)) = stack.pop() {
            max = max.max(d);
            stack.extend(n.children.iter().map(|c| (c, d + 1)));
        }
        max
    }

    /// Collects every string this subtree would intern.
    fn collect_strings<'a>(&'a self, out: &mut HashSet<&'a str>) {
        let mut stack = vec![self];
        while let Some(n) = stack.pop() {
            out.insert(n.kind.as_str());
            for (name, value) in &n.attrs {
                out.insert(name.as_str());
                if let WireAttr::Enum(s) = value {
                    out.insert(s.as_str());
                }
            }
            stack.extend(n.children.iter());
        }
    }

    /// Converts to an [`IrNode`], interning strings. Only called after
    /// [`validate_batch`] admitted the request; `set_attr` re-sorts
    /// attribute lists, restoring the binary-search invariant regardless
    /// of wire order (duplicate attribute names collapse to the last one,
    /// matching builder semantics).
    pub fn to_ir(&self) -> IrNode {
        let mut node = IrNode::new(self.kind.as_str());
        for (name, value) in &self.attrs {
            let value = match value {
                WireAttr::Num(v) => AttrValue::Num(*v),
                WireAttr::Bool(b) => AttrValue::Bool(*b),
                WireAttr::Enum(s) => AttrValue::Enum(Symbol::intern(s)),
            };
            node.set_attr(name.as_str(), value);
        }
        for child in &self.children {
            node.push_child(child.to_ir());
        }
        node
    }
}

/// Why a structurally well-formed request was refused admission.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionError {
    /// The batch holds more than [`MAX_BATCH`] loops.
    BatchTooLarge {
        /// Loops in the batch.
        got: usize,
    },
    /// The batch holds no loops at all.
    EmptyBatch,
    /// Total nodes across the batch exceed [`MAX_REQUEST_NODES`].
    TooManyNodes {
        /// Nodes counted.
        got: usize,
    },
    /// A loop nests deeper than [`MAX_IR_DEPTH`].
    TooDeep {
        /// Depth found.
        got: usize,
    },
    /// Admitting the request would grow the symbol interner past the
    /// daemon's budget (the interner leaks each distinct string forever).
    SymbolBudget {
        /// New strings the request would intern.
        fresh: usize,
        /// Interner headroom remaining.
        headroom: usize,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::BatchTooLarge { got } => {
                write!(f, "batch of {got} loops exceeds the {MAX_BATCH} cap")
            }
            AdmissionError::EmptyBatch => write!(f, "batch holds no loops"),
            AdmissionError::TooManyNodes { got } => {
                write!(f, "{got} IR nodes exceed the {MAX_REQUEST_NODES} cap")
            }
            AdmissionError::TooDeep { got } => {
                write!(f, "IR nests {got} deep, cap is {MAX_IR_DEPTH}")
            }
            AdmissionError::SymbolBudget { fresh, headroom } => write!(
                f,
                "request would intern {fresh} new symbols but only {headroom} remain \
                 in the daemon's budget"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Admission control for one `Predict` batch: size, depth and symbol
/// budget, all checked *before* any string is interned or any arena
/// flattened. `symbol_cap` bounds the process-wide interner size.
pub fn validate_batch(loops: &[WireNode], symbol_cap: usize) -> Result<(), AdmissionError> {
    if loops.is_empty() {
        return Err(AdmissionError::EmptyBatch);
    }
    if loops.len() > MAX_BATCH {
        return Err(AdmissionError::BatchTooLarge { got: loops.len() });
    }
    let mut nodes = 0usize;
    for l in loops {
        nodes += l.node_count();
        if nodes > MAX_REQUEST_NODES {
            return Err(AdmissionError::TooManyNodes { got: nodes });
        }
        let depth = l.depth();
        if depth > MAX_IR_DEPTH {
            return Err(AdmissionError::TooDeep { got: depth });
        }
    }
    let mut strings = HashSet::new();
    for l in loops {
        l.collect_strings(&mut strings);
    }
    let fresh = strings
        .iter()
        .filter(|s| Symbol::lookup(s).is_none())
        .count();
    let headroom = symbol_cap.saturating_sub(ir::symbol_count());
    if fresh > headroom {
        return Err(AdmissionError::SymbolBudget { fresh, headroom });
    }
    Ok(())
}

/// Client → daemon messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServeRequest {
    /// Handshake; must be the first message on a connection.
    Hello {
        /// [`SERVE_PROTOCOL`] the client speaks.
        protocol: u32,
    },
    /// Predict unroll factors for a batch of exported loops.
    Predict {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
        /// The loops, in response order.
        loops: Vec<WireNode>,
    },
    /// Snapshot the daemon's counters.
    Stats {
        /// Correlation id.
        id: u64,
    },
    /// Re-check the model artifact on disk and swap it in if it changed.
    Reload {
        /// Correlation id.
        id: u64,
    },
    /// Close the connection (and, for a stdio daemon, the process).
    Shutdown,
}

/// One unroll decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Decision {
    /// The predicted unroll factor (0 = don't unroll).
    pub unroll: usize,
    /// Whether the loop's flattened arena came from the LRU cache.
    pub cached: bool,
}

/// A point-in-time snapshot of the daemon's counters, as reported to
/// clients and mirrored into telemetry gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServeStatsSnapshot {
    /// Predict requests answered (including error answers).
    pub requests: u64,
    /// Loops evaluated across all batches.
    pub loops_evaluated: u64,
    /// Requests answered with a typed error.
    pub errors: u64,
    /// Arena-cache hits.
    pub arena_hits: u64,
    /// Arena-cache misses (flattens).
    pub arena_misses: u64,
    /// Arenas evicted by the bounded LRU.
    pub arena_evictions: u64,
    /// Live arena-cache entries.
    pub arena_entries: u64,
    /// Successful model hot-reloads.
    pub reloads: u64,
    /// Reload attempts that kept the old model (new artifact unreadable).
    pub reload_failures: u64,
    /// Peak concurrent in-flight batches observed.
    pub queue_depth_peak: u64,
}

/// Daemon → client messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServeResponse {
    /// Handshake acknowledgement.
    HelloAck {
        /// [`SERVE_PROTOCOL`] the daemon speaks.
        protocol: u32,
        /// Loaded artifact's format version.
        model_version: u32,
        /// Loaded artifact's content digest.
        model_digest: u64,
        /// Features in the loaded model.
        n_features: usize,
        /// Decision classes in the loaded model.
        n_classes: usize,
    },
    /// Answers `Predict`; `decisions[i]` corresponds to `loops[i]`.
    Decisions {
        /// Echoed correlation id.
        id: u64,
        /// One decision per loop.
        decisions: Vec<Decision>,
    },
    /// Answers `Stats`.
    StatsReport {
        /// Echoed correlation id.
        id: u64,
        /// The counters.
        stats: ServeStatsSnapshot,
        /// The shared pool's evaluation counters.
        pool: PoolStatsWire,
    },
    /// Answers `Reload`.
    ReloadDone {
        /// Echoed correlation id.
        id: u64,
        /// Whether a new artifact was actually swapped in.
        reloaded: bool,
        /// Digest of the (possibly unchanged) active model.
        model_digest: u64,
    },
    /// Typed refusal. `id` echoes the request when it was decodable,
    /// [`ERROR_ID_UNDECODABLE`] when the payload never yielded one.
    Error {
        /// Correlation id, or [`ERROR_ID_UNDECODABLE`].
        id: u64,
        /// What was wrong.
        detail: String,
    },
    /// Acknowledges `Shutdown`; the connection closes after this.
    Bye,
}

/// `id` used in [`ServeResponse::Error`] when the offending payload could
/// not be decoded far enough to recover a correlation id.
pub const ERROR_ID_UNDECODABLE: u64 = u64::MAX;

/// Wire form of [`PoolStats`] (field-for-field; keeps the serde derive out
/// of the hot VM type).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[allow(missing_docs)]
pub struct PoolStatsWire {
    pub vm_evals: u64,
    pub program_hits: u64,
    pub program_misses: u64,
    pub program_evictions: u64,
    pub result_hits: u64,
    pub result_misses: u64,
}

impl From<PoolStats> for PoolStatsWire {
    fn from(s: PoolStats) -> PoolStatsWire {
        PoolStatsWire {
            vm_evals: s.vm_evals,
            program_hits: s.program_hits,
            program_misses: s.program_misses,
            program_evictions: s.program_evictions,
            result_hits: s.result_hits,
            result_misses: s.result_misses,
        }
    }
}

/// Rejects raw JSON text whose bracket nesting exceeds `max_depth`,
/// *before* any recursive decoder touches it. String contents (including
/// escaped quotes) are skipped, so `{"k": "]]]"}` counts as depth 1.
pub fn json_depth_ok(text: &str, max_depth: usize) -> bool {
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for b in text.bytes() {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' | b'[' => {
                depth += 1;
                if depth > max_depth {
                    return false;
                }
            }
            b'}' | b']' => depth = depth.saturating_sub(1),
            _ => {}
        }
    }
    true
}

/// Encodes a request as a frame payload.
///
/// # Errors
///
/// Serialization failure (effectively unreachable for these types).
pub fn encode_request(msg: &ServeRequest) -> Result<Vec<u8>, String> {
    serde_json::to_string(msg)
        .map(String::into_bytes)
        .map_err(|e| format!("encode request: {e}"))
}

/// Encodes a response as a frame payload.
///
/// # Errors
///
/// Serialization failure (effectively unreachable for these types).
pub fn encode_response(msg: &ServeResponse) -> Result<Vec<u8>, String> {
    serde_json::to_string(msg)
        .map(String::into_bytes)
        .map_err(|e| format!("encode response: {e}"))
}

/// Decodes a frame payload as a request. Typed rejection, never a panic:
/// the payload already passed the frame digest, but digest-valid bytes can
/// still be hostile — non-UTF-8, absurdly nested, or garbage JSON.
///
/// # Errors
///
/// A human-readable detail string; the daemon wraps it in
/// [`ServeResponse::Error`].
pub fn decode_request(payload: &[u8]) -> Result<ServeRequest, String> {
    let text =
        std::str::from_utf8(payload).map_err(|e| format!("non-UTF-8 payload: {e}"))?;
    if !json_depth_ok(text, MAX_JSON_DEPTH) {
        return Err(format!("JSON nests deeper than {MAX_JSON_DEPTH}"));
    }
    serde_json::from_str(text).map_err(|e| format!("undecodable request: {e}"))
}

/// Decodes a frame payload as a response (client side).
///
/// # Errors
///
/// A human-readable detail string.
pub fn decode_response(payload: &[u8]) -> Result<ServeResponse, String> {
    let text =
        std::str::from_utf8(payload).map_err(|e| format!("non-UTF-8 payload: {e}"))?;
    if !json_depth_ok(text, MAX_JSON_DEPTH) {
        return Err(format!("JSON nests deeper than {MAX_JSON_DEPTH}"));
    }
    serde_json::from_str(text).map_err(|e| format!("undecodable response: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deep_wire(depth: usize) -> WireNode {
        let mut node = WireNode {
            kind: "insn".into(),
            attrs: Vec::new(),
            children: Vec::new(),
        };
        for _ in 1..depth {
            node = WireNode {
                kind: "loop".into(),
                attrs: Vec::new(),
                children: vec![node],
            };
        }
        node
    }

    #[test]
    fn request_roundtrip() {
        let req = ServeRequest::Predict {
            id: 9,
            loops: vec![WireNode {
                kind: "loop".into(),
                attrs: vec![("num-iter".into(), WireAttr::Num(8.0))],
                children: vec![],
            }],
        };
        let bytes = encode_request(&req).unwrap();
        assert_eq!(decode_request(&bytes).unwrap(), req);
    }

    #[test]
    fn garbage_and_non_utf8_are_typed() {
        assert!(decode_request(b"{ nope").is_err());
        assert!(decode_request(&[0xff, 0xfe, 0x01]).is_err());
    }

    #[test]
    fn depth_scan_rejects_before_parse() {
        let hostile = "[".repeat(MAX_JSON_DEPTH + 10);
        assert!(decode_request(hostile.as_bytes()).is_err());
        // Brackets inside strings do not count.
        assert!(json_depth_ok("{\"k\": \"]]]]\\\"[[[\"}", 2));
        assert!(!json_depth_ok("[[[", 2));
    }

    #[test]
    fn wire_ir_roundtrip_sorts_attrs() {
        let wire = WireNode {
            kind: "loop".into(),
            // Deliberately unsorted on the wire.
            attrs: vec![
                ("zz-late".into(), WireAttr::Bool(true)),
                ("aa-early".into(), WireAttr::Num(3.0)),
                ("mode".into(), WireAttr::Enum("SI".into())),
            ],
            children: vec![WireNode {
                kind: "insn".into(),
                attrs: vec![],
                children: vec![],
            }],
        };
        let ir = wire.to_ir();
        // Binary-search lookup works regardless of wire order.
        assert_eq!(
            ir.attr(Symbol::intern("aa-early")),
            Some(AttrValue::Num(3.0))
        );
        assert_eq!(
            ir.attr(Symbol::intern("zz-late")),
            Some(AttrValue::Bool(true))
        );
        // And the round trip through from_ir is stable (sorted) once.
        let back = WireNode::from_ir(&ir);
        assert_eq!(back.to_ir(), ir);
    }

    #[test]
    fn admission_caps_depth_and_batch() {
        let ok = deep_wire(4);
        assert!(validate_batch(std::slice::from_ref(&ok), usize::MAX).is_ok());
        let deep = deep_wire(MAX_IR_DEPTH + 1);
        assert!(matches!(
            validate_batch(&[deep], usize::MAX),
            Err(AdmissionError::TooDeep { .. })
        ));
        assert!(matches!(
            validate_batch(&[], usize::MAX),
            Err(AdmissionError::EmptyBatch)
        ));
        let big: Vec<WireNode> = (0..MAX_BATCH + 1).map(|_| ok.clone()).collect();
        assert!(matches!(
            validate_batch(&big, usize::MAX),
            Err(AdmissionError::BatchTooLarge { .. })
        ));
    }

    #[test]
    fn symbol_budget_blocks_interner_growth() {
        // A request full of never-seen strings must be rejected *without*
        // interning them.
        let hostile: Vec<WireNode> = (0..64)
            .map(|i| WireNode {
                kind: format!("fegen-test-hostile-kind-{i}-{}", std::process::id()),
                attrs: vec![],
                children: vec![],
            })
            .collect();
        let before = ir::symbol_count();
        let err = validate_batch(&hostile, before + 8).unwrap_err();
        assert!(matches!(err, AdmissionError::SymbolBudget { .. }), "{err}");
        assert_eq!(ir::symbol_count(), before, "rejection must not intern");
        // With headroom the same batch is admitted.
        assert!(validate_batch(&hostile, before + 1024).is_ok());
    }
}
