//! The connection loop: frames in, decisions out.
//!
//! Reuses the digest-sealed frame codec from [`crate::gp::transport`] —
//! serve clients and GP workers speak the same wire envelope, so a
//! truncated frame, a bad magic, an over-length prefix or a payload
//! digest mismatch are all caught by one codec and one error type.
//!
//! Error containment has two tiers, mirroring `worker_proc`:
//!
//! - a **frame-level** fault (torn frame, digest mismatch, garbage bytes)
//!   poisons that connection — crash-only, the connection dies, the
//!   daemon and every other connection live on;
//! - an **application-level** fault (undecodable JSON, an inadmissible
//!   batch, a failed explicit reload) is answered with a typed
//!   [`ServeResponse::Error`] on the same connection, which keeps serving.

use super::engine::ServeEngine;
use super::wire::{
    decode_request, encode_response, ServeRequest, ServeResponse, ERROR_ID_UNDECODABLE,
    SERVE_PROTOCOL,
};
use crate::gp::transport::{FrameTransport, StreamTransport, TransportError};
use std::sync::Arc;

/// Why a serve connection (or the daemon itself) stopped.
#[derive(Debug)]
pub enum ServeError {
    /// The frame layer failed; the connection is poisoned.
    Transport(TransportError),
    /// Socket / listener setup failed.
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Transport(e) => write!(f, "serve transport error: {e}"),
            ServeError::Io(e) => write!(f, "serve io error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<TransportError> for ServeError {
    fn from(e: TransportError) -> Self {
        ServeError::Transport(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

fn send_response<T: FrameTransport>(
    transport: &mut T,
    response: &ServeResponse,
) -> Result<(), ServeError> {
    // Responses are built from our own types; encoding them cannot fail
    // short of a serializer bug, which we surface as a closed connection.
    let payload = encode_response(response).map_err(|detail| {
        ServeError::Io(std::io::Error::other(format!("encode response: {detail}")))
    })?;
    transport.send(&payload)?;
    Ok(())
}

/// Serves one connection until the peer hangs up ([`TransportError::Closed`]
/// → `Ok`), sends `Shutdown`, or the frame layer fails.
///
/// The first message must be a `Hello` with a matching protocol number;
/// anything else is answered with a typed error and the connection closes.
///
/// # Errors
///
/// [`ServeError::Transport`] when the frame layer fails mid-connection
/// (the daemon treats this as that connection dying, nothing more).
pub fn serve_connection<T: FrameTransport>(
    transport: &mut T,
    engine: &ServeEngine,
) -> Result<(), ServeError> {
    let telemetry = engine.telemetry().clone();
    // Handshake: exactly one Hello, protocol numbers must match.
    let first = match transport.recv() {
        Ok(payload) => payload,
        Err(TransportError::Closed) => return Ok(()),
        Err(e) => return Err(e.into()),
    };
    match decode_request(&first) {
        Ok(ServeRequest::Hello { protocol }) if protocol == SERVE_PROTOCOL => {
            let model = engine.model();
            send_response(
                transport,
                &ServeResponse::HelloAck {
                    protocol: SERVE_PROTOCOL,
                    model_version: model.artifact.version,
                    model_digest: model.digest,
                    n_features: model.features.len(),
                    n_classes: model.artifact.n_classes,
                },
            )?;
        }
        Ok(ServeRequest::Hello { protocol }) => {
            engine.note_error();
            send_response(
                transport,
                &ServeResponse::Error {
                    id: ERROR_ID_UNDECODABLE,
                    detail: format!(
                        "protocol mismatch: client speaks {protocol}, server speaks {SERVE_PROTOCOL}"
                    ),
                },
            )?;
            return Ok(());
        }
        other => {
            engine.note_error();
            let detail = match other {
                Ok(_) => "expected Hello as first message".to_string(),
                Err(e) => format!("undecodable hello: {e}"),
            };
            send_response(
                transport,
                &ServeResponse::Error {
                    id: ERROR_ID_UNDECODABLE,
                    detail,
                },
            )?;
            return Ok(());
        }
    }
    loop {
        let payload = match transport.recv() {
            Ok(payload) => payload,
            Err(TransportError::Closed) => return Ok(()),
            Err(e) => return Err(e.into()),
        };
        let request = match decode_request(&payload) {
            Ok(request) => request,
            Err(detail) => {
                engine.note_error();
                send_response(
                    transport,
                    &ServeResponse::Error {
                        id: ERROR_ID_UNDECODABLE,
                        detail,
                    },
                )?;
                continue;
            }
        };
        match request {
            ServeRequest::Hello { .. } => {
                engine.note_error();
                send_response(
                    transport,
                    &ServeResponse::Error {
                        id: ERROR_ID_UNDECODABLE,
                        detail: "duplicate Hello".to_string(),
                    },
                )?;
            }
            ServeRequest::Predict { id, loops } => {
                // The span emits a timing event when dropped at match end.
                let _span = telemetry.span("serve_predict");
                match engine.predict(&loops) {
                    Ok(decisions) => {
                        telemetry
                            .event("serve_request")
                            .u64("id", id)
                            .u64("loops", decisions.len() as u64)
                            .bool("rejected", false)
                            .emit();
                        send_response(transport, &ServeResponse::Decisions { id, decisions })?;
                    }
                    Err(e) => {
                        telemetry
                            .event("serve_request")
                            .u64("id", id)
                            .bool("rejected", true)
                            .str("detail", &e.to_string())
                            .emit();
                        engine.note_error();
                        send_response(
                            transport,
                            &ServeResponse::Error {
                                id,
                                detail: e.to_string(),
                            },
                        )?;
                    }
                }
            }
            ServeRequest::Stats { id } => {
                send_response(
                    transport,
                    &ServeResponse::StatsReport {
                        id,
                        stats: engine.stats(),
                        pool: engine.pool_stats().into(),
                    },
                )?;
            }
            ServeRequest::Reload { id } => match engine.reload() {
                Ok(reloaded) => {
                    send_response(
                        transport,
                        &ServeResponse::ReloadDone {
                            id,
                            reloaded,
                            model_digest: engine.model().digest,
                        },
                    )?;
                }
                Err(e) => {
                    engine.note_error();
                    send_response(
                        transport,
                        &ServeResponse::Error {
                            id,
                            detail: format!("reload failed (old model stays active): {e}"),
                        },
                    )?;
                }
            },
            ServeRequest::Shutdown => {
                engine.request_shutdown();
                send_response(transport, &ServeResponse::Bye)?;
                return Ok(());
            }
        }
        engine.record_telemetry();
    }
}

/// Serves a single connection over this process's stdin/stdout (the
/// `fegen serve --stdio` mode; one process per client, like
/// `run_stdio_worker`).
///
/// # Errors
///
/// See [`serve_connection`].
pub fn run_stdio_serve(engine: &ServeEngine) -> Result<(), ServeError> {
    let mut transport = StreamTransport::new(std::io::stdin(), std::io::stdout());
    let result = serve_connection(&mut transport, engine);
    engine.flush_telemetry();
    result
}

/// Binds `socket_path` and serves connections until a client sends
/// `Shutdown`. Each connection gets its own thread over the shared
/// engine; a connection's transport error never takes the daemon down.
///
/// # Errors
///
/// [`ServeError::Io`] when binding or accepting fails fatally.
#[cfg(unix)]
pub fn run_unix_serve(
    engine: Arc<ServeEngine>,
    socket_path: &std::path::Path,
) -> Result<(), ServeError> {
    use std::os::unix::net::UnixListener;

    // A stale socket file from a previous run blocks bind; remove it.
    if socket_path.exists() {
        std::fs::remove_file(socket_path)?;
    }
    let listener = UnixListener::bind(socket_path)?;
    listener.set_nonblocking(true)?;
    let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !engine.is_shutdown() {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let peer = stream.try_clone()?;
                let engine = Arc::clone(&engine);
                workers.push(std::thread::spawn(move || {
                    let mut transport = StreamTransport::new(stream, peer);
                    // A poisoned connection is that client's problem only.
                    let _ = serve_connection(&mut transport, &engine);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            Err(e) => return Err(e.into()),
        }
        workers.retain(|h| !h.is_finished());
    }
    for handle in workers {
        let _ = handle.join();
    }
    engine.flush_telemetry();
    let _ = std::fs::remove_file(socket_path);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gp::transport::duplex;
    use crate::serve::artifact::ModelArtifact;
    use crate::serve::engine::{ServeEngine, ServeOptions};
    use crate::serve::wire::{encode_request, Decision};
    use crate::telemetry::Telemetry;

    fn frame(req: &ServeRequest) -> Vec<u8> {
        encode_request(req).expect("encode request")
    }

    fn test_engine(dir: &std::path::Path) -> ServeEngine {
        let path = dir.join("model.fgm");
        ModelArtifact::tiny_for_tests()
            .save(&path)
            .expect("save test model");
        ServeEngine::new(path, ServeOptions::default(), Telemetry::disabled())
            .expect("engine loads test model")
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("fegen-serve-daemon-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn handshake_then_predict_round_trip() {
        let dir = tmp_dir("hs");
        let engine = test_engine(&dir);
        let (mut client, mut server) = duplex();
        let handle = std::thread::spawn(move || {
            let result = serve_connection(&mut server, &engine);
            (result, engine.stats())
        });
        client
            .send(&frame(&ServeRequest::Hello {
                protocol: SERVE_PROTOCOL,
            }))
            .expect("send hello");
        let ack = client.recv().expect("recv ack");
        match super::super::wire::decode_response(&ack).expect("decode ack") {
            ServeResponse::HelloAck { protocol, .. } => assert_eq!(protocol, SERVE_PROTOCOL),
            other => panic!("expected HelloAck, got {other:?}"),
        }
        let ir = crate::ir::IrNode::build("loop", |l| {
            l.attr_num("num-iter", 16.0);
            l.child("insn", |n| {
                n.attr_enum("mode", "SI");
            });
        });
        let loops = vec![super::super::wire::WireNode::from_ir(&ir)];
        client
            .send(&frame(&ServeRequest::Predict { id: 7, loops }))
            .expect("send predict");
        let reply = client.recv().expect("recv decisions");
        match super::super::wire::decode_response(&reply).expect("decode decisions") {
            ServeResponse::Decisions { id, decisions } => {
                assert_eq!(id, 7);
                assert_eq!(decisions.len(), 1);
                let Decision { unroll, .. } = decisions[0];
                assert!(unroll <= 16, "unroll factor out of range: {unroll}");
            }
            other => panic!("expected Decisions, got {other:?}"),
        }
        drop(client);
        let (result, stats) = handle.join().expect("server thread");
        result.expect("clean close");
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.errors, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_hello_first_message_is_rejected() {
        let dir = tmp_dir("nonhello");
        let engine = test_engine(&dir);
        let (mut client, mut server) = duplex();
        let handle = std::thread::spawn(move || serve_connection(&mut server, &engine));
        client
            .send(&frame(&ServeRequest::Stats { id: 1 }))
            .expect("send stats first");
        let reply = client.recv().expect("recv error");
        match super::super::wire::decode_response(&reply).expect("decode") {
            ServeResponse::Error { id, detail } => {
                assert_eq!(id, ERROR_ID_UNDECODABLE);
                assert!(detail.contains("Hello"), "unexpected detail: {detail}");
            }
            other => panic!("expected Error, got {other:?}"),
        }
        drop(client);
        handle.join().expect("server thread").expect("clean close");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_payload_gets_typed_error_and_connection_survives() {
        let dir = tmp_dir("garbage");
        let engine = test_engine(&dir);
        let (mut client, mut server) = duplex();
        let handle = std::thread::spawn(move || serve_connection(&mut server, &engine));
        client
            .send(&frame(&ServeRequest::Hello {
                protocol: SERVE_PROTOCOL,
            }))
            .expect("send hello");
        client.recv().expect("recv ack");
        client.send(b"{not json at all").expect("send garbage");
        let reply = client.recv().expect("recv error");
        match super::super::wire::decode_response(&reply).expect("decode") {
            ServeResponse::Error { id, .. } => assert_eq!(id, ERROR_ID_UNDECODABLE),
            other => panic!("expected Error, got {other:?}"),
        }
        // Connection still serves after the bad message.
        client
            .send(&frame(&ServeRequest::Stats { id: 2 }))
            .expect("send stats");
        let reply = client.recv().expect("recv stats");
        match super::super::wire::decode_response(&reply).expect("decode") {
            ServeResponse::StatsReport { id, stats, .. } => {
                assert_eq!(id, 2);
                assert_eq!(stats.errors, 1);
            }
            other => panic!("expected StatsReport, got {other:?}"),
        }
        drop(client);
        handle.join().expect("server thread").expect("clean close");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_message_flags_engine_and_says_bye() {
        let dir = tmp_dir("bye");
        let engine = Arc::new(test_engine(&dir));
        let server_engine = Arc::clone(&engine);
        let (mut client, mut server) = duplex();
        let handle =
            std::thread::spawn(move || serve_connection(&mut server, &server_engine));
        client
            .send(&frame(&ServeRequest::Hello {
                protocol: SERVE_PROTOCOL,
            }))
            .expect("send hello");
        client.recv().expect("recv ack");
        client
            .send(&frame(&ServeRequest::Shutdown))
            .expect("send shutdown");
        let reply = client.recv().expect("recv bye");
        assert!(matches!(
            super::super::wire::decode_response(&reply).expect("decode"),
            ServeResponse::Bye
        ));
        handle.join().expect("server thread").expect("clean close");
        assert!(engine.is_shutdown());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
