//! Versioned on-disk model artifacts.
//!
//! A [`ModelArtifact`] is what the search produces and the serve daemon
//! consumes: the ordered feature list (as canonical text — print/parse
//! round-trips are exact), the trained decision tree, and the evaluation
//! budget the features were validated under. Like checkpoints, the file
//! carries a format version, a fingerprint of the training configuration
//! and a digest of the feature list; every mismatch is a typed
//! [`ModelError`], never a silently wrong prediction.
//!
//! Writes are atomic and durable (temp file + fsync + rename + directory
//! fsync), so a daemon hot-reloading the artifact can never observe a
//! half-written model: it sees the old file or the new one, nothing in
//! between.

use crate::checkpoint::config_fingerprint;
use crate::faults::fnv1a;
use crate::lang::{parse_feature, EvalPool, FeatureExpr};
use crate::search::{SearchConfig, TrainingExample};
use fegen_ml::data::Dataset;
use fegen_ml::tree::DecisionTree;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};

/// Format version written to and expected from model artifact files.
pub const MODEL_VERSION: u32 = 1;

/// Typed failures of artifact save/load/train. The daemon maps every one
/// of these to an error response or a refused startup — never a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// Filesystem failure.
    Io {
        /// The file involved.
        path: PathBuf,
        /// Operating-system detail.
        detail: String,
    },
    /// The file exists but does not decode as any known artifact format.
    Corrupt {
        /// The file involved.
        path: PathBuf,
        /// Decoder detail.
        detail: String,
    },
    /// The file decodes but was written by a different format version.
    VersionMismatch {
        /// The file involved.
        path: PathBuf,
        /// Version found in the file.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
    /// The stored feature-list digest does not match the stored features —
    /// the artifact was hand-edited or corrupted in a digest-preserving
    /// decode.
    DigestMismatch {
        /// The file involved.
        path: PathBuf,
        /// Digest recorded in the artifact.
        stored: u64,
        /// Digest recomputed from the feature list.
        computed: u64,
    },
    /// The artifact is structurally well-formed but unusable (unparseable
    /// feature, tree wider than the feature list, no training signal).
    Invalid {
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Io { path, detail } => {
                write!(f, "model artifact I/O failure at {}: {detail}", path.display())
            }
            ModelError::Corrupt { path, detail } => {
                write!(f, "model artifact {} is corrupt: {detail}", path.display())
            }
            ModelError::VersionMismatch {
                path,
                found,
                expected,
            } => write!(
                f,
                "model artifact {} has version {found}, this build expects {expected}",
                path.display()
            ),
            ModelError::DigestMismatch {
                path,
                stored,
                computed,
            } => write!(
                f,
                "model artifact {} feature digest mismatch: stored {stored:#x}, \
                 recomputed {computed:#x}",
                path.display()
            ),
            ModelError::Invalid { detail } => write!(f, "model artifact invalid: {detail}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Stable digest of an ordered feature list (order-sensitive: the tree's
/// column indices depend on it).
pub fn feature_digest(features: &[String]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for (i, f) in features.iter().enumerate() {
        h ^= fnv1a(format!("{i}:{f}").as_bytes());
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A trained unroll-decision model, as serialized to disk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelArtifact {
    /// Format version ([`MODEL_VERSION`]).
    pub version: u32,
    /// Fingerprint of the [`SearchConfig`] the model was trained under.
    pub config_fingerprint: u64,
    /// Digest of `features` ([`feature_digest`]), checked on load.
    pub feature_digest: u64,
    /// The feature list, printed canonically, in tree-column order.
    pub features: Vec<String>,
    /// Number of decision classes (unroll factors 0..n_classes).
    pub n_classes: usize,
    /// Step budget per feature evaluation — the budget the features were
    /// validated under; the daemon evaluates with the same one.
    pub eval_budget: u64,
    /// The trained decision tree over the feature columns.
    pub tree: DecisionTree,
}

impl ModelArtifact {
    /// Trains an artifact from scratch: evaluates `features` over the
    /// examples (failures contribute `0.0`, the deployment rule), derives
    /// labels from the cycle tables and fits a decision tree under
    /// `config.tree`.
    ///
    /// # Errors
    ///
    /// [`ModelError::Invalid`] when there are no examples, no features, or
    /// the labels collapse in a way the tree cannot train on.
    pub fn train(
        config: &SearchConfig,
        features: &[FeatureExpr],
        examples: &[TrainingExample],
    ) -> Result<ModelArtifact, ModelError> {
        if features.is_empty() {
            return Err(ModelError::Invalid {
                detail: "empty feature list".into(),
            });
        }
        if examples.is_empty() {
            return Err(ModelError::Invalid {
                detail: "no training examples".into(),
            });
        }
        let n_classes = examples
            .iter()
            .map(|e| e.cycles.len())
            .max()
            .unwrap_or_default();
        if n_classes == 0 {
            return Err(ModelError::Invalid {
                detail: "training examples have empty cycle tables".into(),
            });
        }
        let pool = EvalPool::new(examples.iter().map(|e| &e.ir), crate::lang::EvalEngine::default());
        let budget = config.eval_budget_per_example;
        let rows: Vec<Vec<f64>> = (0..examples.len())
            .map(|i| {
                features
                    .iter()
                    .map(|f| pool.eval(f, i, budget).unwrap_or(0.0))
                    .collect()
            })
            .collect();
        let labels: Vec<usize> = examples.iter().map(TrainingExample::best_value).collect();
        let data = Dataset::new(rows, labels, n_classes).map_err(|e| ModelError::Invalid {
            detail: format!("dataset rejected: {e}"),
        })?;
        let tree = DecisionTree::train(&data, &config.tree);
        let printed: Vec<String> = features.iter().map(|f| f.to_string()).collect();
        let digest = feature_digest(&printed);
        Ok(ModelArtifact {
            version: MODEL_VERSION,
            config_fingerprint: config_fingerprint(config),
            feature_digest: digest,
            features: printed,
            n_classes,
            eval_budget: budget,
            tree,
        })
    }

    /// A small trained artifact for in-crate tests (two structural
    /// features over six synthetic loops).
    #[cfg(test)]
    pub(crate) fn tiny_for_tests() -> ModelArtifact {
        use crate::ir::IrNode;
        let examples: Vec<TrainingExample> = (0..6)
            .map(|i| {
                let ir = IrNode::build("loop", |l| {
                    l.attr_num("num-iter", 4.0 + i as f64);
                    for _ in 0..=i {
                        l.child("insn", |n| {
                            n.attr_enum("mode", "SI");
                        });
                    }
                });
                let cycles = (0..4)
                    .map(|k| 100.0 + (k as f64 - (i % 4) as f64).abs() * 10.0)
                    .collect();
                TrainingExample { ir, cycles }
            })
            .collect();
        let features = vec![
            parse_feature("count(//*)").expect("test feature parses"),
            parse_feature("count(filter(//*, is-type(insn)))").expect("test feature parses"),
        ];
        ModelArtifact::train(&SearchConfig::quick(), &features, &examples)
            .expect("tiny test artifact trains")
    }

    /// Re-parses the stored feature texts.
    ///
    /// # Errors
    ///
    /// [`ModelError::Invalid`] when any stored feature fails to parse —
    /// an artifact that cannot rebuild its own features must be refused,
    /// not served with a silently shorter vector.
    pub fn parsed_features(&self) -> Result<Vec<FeatureExpr>, ModelError> {
        self.features
            .iter()
            .map(|s| {
                parse_feature(s).map_err(|e| ModelError::Invalid {
                    detail: format!("stored feature `{s}` does not parse: {e}"),
                })
            })
            .collect()
    }

    /// Whole-artifact content digest, used by the daemon to detect a new
    /// model on hot-reload and reported to clients in the handshake.
    pub fn digest(&self) -> u64 {
        let json = serde_json::to_string(self).unwrap_or_default();
        fnv1a(json.as_bytes())
    }

    /// Validates the internal consistency rules shared by `train` and
    /// `load`: digest matches, features parse, the tree never indexes past
    /// the feature vector, and the class space is non-empty.
    fn validate(&self, path: &Path) -> Result<(), ModelError> {
        let computed = feature_digest(&self.features);
        if computed != self.feature_digest {
            return Err(ModelError::DigestMismatch {
                path: path.to_path_buf(),
                stored: self.feature_digest,
                computed,
            });
        }
        self.parsed_features()?;
        if self.tree.n_features() > self.features.len() {
            return Err(ModelError::Invalid {
                detail: format!(
                    "tree reads {} feature columns but the artifact stores only {}",
                    self.tree.n_features(),
                    self.features.len()
                ),
            });
        }
        if self.n_classes == 0 {
            return Err(ModelError::Invalid {
                detail: "artifact declares zero decision classes".into(),
            });
        }
        Ok(())
    }

    /// Writes the artifact atomically to `path` (temp file + fsync +
    /// rename + parent-directory fsync).
    ///
    /// # Errors
    ///
    /// [`ModelError::Io`] on any filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), ModelError> {
        let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
        if let Some(dir) = dir {
            std::fs::create_dir_all(dir).map_err(|e| ModelError::Io {
                path: dir.to_path_buf(),
                detail: e.to_string(),
            })?;
        }
        let text = serde_json::to_string_pretty(self).map_err(|e| ModelError::Io {
            path: path.to_path_buf(),
            detail: format!("serialization failed: {e}"),
        })?;
        let tmp = path.with_extension("tmp");
        let io_err = |p: &Path| {
            let path = p.to_path_buf();
            move |e: std::io::Error| ModelError::Io {
                path,
                detail: e.to_string(),
            }
        };
        std::fs::write(&tmp, text).map_err(io_err(&tmp))?;
        std::fs::File::open(&tmp)
            .and_then(|f| f.sync_all())
            .map_err(io_err(&tmp))?;
        std::fs::rename(&tmp, path).map_err(io_err(path))?;
        if let Some(dir) = dir {
            std::fs::File::open(dir)
                .and_then(|d| d.sync_all())
                .map_err(io_err(dir))?;
        }
        Ok(())
    }

    /// Loads and fully validates an artifact from `path`.
    ///
    /// # Errors
    ///
    /// Every failure mode is typed: [`ModelError::Io`] (missing file),
    /// [`ModelError::Corrupt`] (undecodable), [`ModelError::VersionMismatch`]
    /// (decodable version field, wrong value), [`ModelError::DigestMismatch`]
    /// and [`ModelError::Invalid`] (consistency rules).
    pub fn load(path: &Path) -> Result<ModelArtifact, ModelError> {
        let text = std::fs::read_to_string(path).map_err(|e| ModelError::Io {
            path: path.to_path_buf(),
            detail: e.to_string(),
        })?;
        let artifact: ModelArtifact = match serde_json::from_str(&text) {
            Ok(a) => a,
            Err(e) => {
                if let Some(found) = peek_version(&text) {
                    if found != MODEL_VERSION {
                        return Err(ModelError::VersionMismatch {
                            path: path.to_path_buf(),
                            found,
                            expected: MODEL_VERSION,
                        });
                    }
                }
                return Err(ModelError::Corrupt {
                    path: path.to_path_buf(),
                    detail: e.to_string(),
                });
            }
        };
        if artifact.version != MODEL_VERSION {
            return Err(ModelError::VersionMismatch {
                path: path.to_path_buf(),
                found: artifact.version,
                expected: MODEL_VERSION,
            });
        }
        artifact.validate(path)?;
        Ok(artifact)
    }
}

/// Best-effort extraction of the `version` field from artifact text that
/// failed to decode as the current format.
fn peek_version(text: &str) -> Option<u32> {
    let value: serde::Value = serde_json::from_str(text).ok()?;
    if let serde::Value::Map(entries) = value {
        for (k, v) in entries {
            if matches!(&k, serde::Value::Str(s) if s == "version") {
                return match v {
                    serde::Value::U64(n) => u32::try_from(n).ok(),
                    serde::Value::I64(n) => u32::try_from(n).ok(),
                    _ => None,
                };
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::IrNode;

    fn sample_examples() -> Vec<TrainingExample> {
        (0..6)
            .map(|i| {
                let ir = IrNode::build("loop", |l| {
                    l.attr_num("num-iter", 4.0 + i as f64);
                    for _ in 0..=i {
                        l.child("insn", |n| {
                            n.attr_enum("mode", "SI");
                        });
                    }
                });
                // Loops with more insns prefer smaller factors.
                let cycles = (0..4)
                    .map(|k| 100.0 + (k as f64 - (i % 4) as f64).abs() * 10.0)
                    .collect();
                TrainingExample { ir, cycles }
            })
            .collect()
    }

    fn sample_artifact() -> ModelArtifact {
        let features = vec![
            parse_feature("count(//*)").unwrap(),
            parse_feature("count(filter(//*, is-type(insn)))").unwrap(),
        ];
        ModelArtifact::train(&SearchConfig::quick(), &features, &sample_examples()).unwrap()
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("fegen-model-{tag}-{}.json", std::process::id()))
    }

    #[test]
    fn train_save_load_roundtrip() {
        let artifact = sample_artifact();
        let path = temp_path("roundtrip");
        artifact.save(&path).unwrap();
        let loaded = ModelArtifact::load(&path).unwrap();
        assert_eq!(loaded, artifact);
        assert_eq!(loaded.digest(), artifact.digest());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_missing_is_io() {
        let err = ModelArtifact::load(Path::new("/nonexistent/model.json")).unwrap_err();
        assert!(matches!(err, ModelError::Io { .. }), "{err}");
    }

    #[test]
    fn load_garbage_is_corrupt() {
        let path = temp_path("garbage");
        std::fs::write(&path, "{ nope").unwrap();
        let err = ModelArtifact::load(&path).unwrap_err();
        assert!(matches!(err, ModelError::Corrupt { .. }), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn version_skew_is_typed() {
        let mut artifact = sample_artifact();
        artifact.version = MODEL_VERSION + 3;
        let path = temp_path("version");
        artifact.save(&path).unwrap();
        let err = ModelArtifact::load(&path).unwrap_err();
        assert!(
            matches!(
                err,
                ModelError::VersionMismatch { found, expected, .. }
                    if found == MODEL_VERSION + 3 && expected == MODEL_VERSION
            ),
            "{err}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tampered_features_fail_digest() {
        let mut artifact = sample_artifact();
        artifact.features[0] = "count(filter(//*, is-type(reg)))".into();
        let path = temp_path("tamper");
        artifact.save(&path).unwrap();
        let err = ModelArtifact::load(&path).unwrap_err();
        assert!(matches!(err, ModelError::DigestMismatch { .. }), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unparseable_feature_is_invalid() {
        let mut artifact = sample_artifact();
        artifact.features[0] = "count(((".into();
        artifact.feature_digest = feature_digest(&artifact.features);
        let path = temp_path("parse");
        artifact.save(&path).unwrap();
        let err = ModelArtifact::load(&path).unwrap_err();
        assert!(matches!(err, ModelError::Invalid { .. }), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn feature_digest_is_order_sensitive() {
        let a = vec!["count(//*)".to_owned(), "count(/*)".to_owned()];
        let b = vec!["count(/*)".to_owned(), "count(//*)".to_owned()];
        assert_ne!(feature_digest(&a), feature_digest(&b));
    }
}
