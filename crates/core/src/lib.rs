//! # fegen-core — automatic feature generation for optimizing compilers
//!
//! This crate is the reproduction of the central contribution of
//! *"Automatic Feature Generation for Machine Learning Based Optimizing
//! Compilation"* (Leather, Bonilla, O'Boyle — CGO 2009): instead of asking a
//! compiler writer to hand-design the feature vector fed to a machine-learning
//! heuristic, the space of features is described by a **grammar derived
//! automatically from the compiler's IR** and then **searched with genetic
//! programming**, using the downstream learner's predictive quality as the
//! fitness signal.
//!
//! The crate is generic over the compiler: it consumes IR exported as
//! [`ir::IrNode`] trees (any compiler can produce these — `fegen-rtl` exports
//! its GCC-RTL-style loops this way) and produces an ordered list of
//! [`lang::FeatureExpr`]s together with the learned model quality.
//!
//! Modules:
//!
//! - [`ir`] — the exported-IR data model: interned node kinds, attributes.
//! - [`lang`] — the feature expression language (`count`, `filter`, `sum`,
//!   `max`, `is-type`, `get-attr`, `/*`, `//*`, `[n]` …): AST, parser,
//!   printer and a step-budgeted evaluator.
//! - [`grammar`] — automatic derivation of a feature grammar from observed IR
//!   (node vocabularies, attribute kinds and ranges) and random sentence
//!   generation from it.
//! - [`gp`] — the GP/grammatical-evolution hybrid search: mutation, crossover,
//!   tournament selection, parsimony pressure and stagnation-based stopping.
//! - [`search`] — the outer loop of the paper's Figure 5: greedy forward
//!   construction of a base feature list, one GP search per added feature,
//!   with a decision-tree-based fitness function under internal
//!   cross-validation.
//! - [`error`] — the typed error hierarchy of the search runtime.
//! - [`checkpoint`] — versioned, atomically-written snapshots of a running
//!   search, enabling deterministic kill-and-resume.
//! - [`faults`] — a seeded fault-injection harness (panicking, budget-
//!   exhausting or NaN-returning evaluators, cooperative cancellation) used
//!   to *prove* the runtime's fault tolerance in tests.
//! - [`telemetry`] — structured observability: hierarchical spans, metrics
//!   and a resume-safe JSONL event sink, guaranteed neutral with respect to
//!   checkpoint and dataset bytes.
//!
//! # Quickstart
//!
//! ```
//! use fegen_core::ir::IrNode;
//! use fegen_core::grammar::Grammar;
//! use fegen_core::lang::parse_feature;
//!
//! // A tiny exported IR: a loop with two instructions.
//! let ir = IrNode::build("loop", |l| {
//!     l.attr_num("num-iter", 8.0);
//!     l.child("insn", |i| { i.attr_enum("mode", "SI"); });
//!     l.child("insn", |i| { i.attr_enum("mode", "DF"); });
//! });
//!
//! // Features are sentences of a grammar; they evaluate to numbers.
//! let f = parse_feature("count(filter(//*, is-type(insn)))")?;
//! assert_eq!(f.eval_default(&ir)?, 2.0);
//!
//! // Grammars are derived automatically from observed IR.
//! let grammar = Grammar::derive([&ir]);
//! assert!(grammar.kinds().len() >= 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// Library code must report through telemetry events or typed errors,
// never by printing; binaries are exempt (their crate roots are in bin/).
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod checkpoint;
pub mod error;
pub mod faults;
pub mod gp;
pub mod grammar;
pub mod ir;
pub mod lang;
pub mod lru;
pub mod search;
pub mod serve;
pub mod telemetry;

pub use checkpoint::{SearchCheckpoint, CHECKPOINT_FILE, CHECKPOINT_VERSION};
pub use error::{CheckpointError, SearchError};
pub use faults::{stable_hash, CancelToken, FaultInjector, FaultKind, FaultPlan, FaultTrigger};
pub use gp::island::{IslandStatus, IslandTopology, IslandsSnapshot, MigrationRecord};
pub use gp::transport::{FrameTransport, TransportError};
pub use gp::worker_proc::{run_stdio_worker, ChannelKind, WorkerError, WorkerLauncher};
pub use grammar::Grammar;
pub use ir::{AttrValue, IrArena, IrNode, Symbol};
pub use lang::{parse_feature, EvalEngine, EvalPool, FeatureExpr, Program, ProgramPath};
pub use search::{FeatureSearch, SearchConfig, SearchDriver, SearchOutcome, TrainingExample};
pub use serve::{ModelArtifact, ModelError, ServeEngine, ServeOptions};
pub use telemetry::{Telemetry, TelemetryConfig};
