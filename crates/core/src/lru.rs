//! A bounded least-recently-used cache with an eviction counter.
//!
//! Two long-lived caches need a hard memory bound: the compiled-program
//! cache inside [`crate::lang::EvalPool`] (previously an epoch-flushed
//! `HashMap` that held up to 65k programs and dumped them all at once) and
//! the flattened-arena cache of the `fegen serve` daemon, which faces an
//! unbounded stream of distinct loop digests from untrusted clients. Both
//! want the same thing: O(1) get/insert, strict LRU eviction order, and a
//! counter so telemetry can prove eviction actually happens under load.
//!
//! The implementation is an intrusive doubly-linked list threaded through a
//! slab `Vec`, indexed by a `HashMap` — no unsafe, no allocation per
//! touch, and eviction is O(1) (the epoch-flush it replaces was O(n) and
//! lost *everything*, including entries touched on the previous lookup).

use std::collections::HashMap;
use std::hash::Hash;

/// Sentinel index for "no neighbour" in the intrusive list.
const NIL: usize = usize::MAX;

struct Entry<K, V> {
    key: K,
    value: V,
    /// Towards the most-recently-used end.
    prev: usize,
    /// Towards the least-recently-used end.
    next: usize,
}

/// A bounded LRU map. Capacity is fixed at construction and is always at
/// least 1; inserting into a full cache evicts the least-recently-used
/// entry and counts it.
pub struct LruCache<K, V> {
    cap: usize,
    map: HashMap<K, usize>,
    /// Slot storage; `None` marks a slot parked on the free list.
    slab: Vec<Option<Entry<K, V>>>,
    free: Vec<usize>,
    /// Most-recently-used entry, or `NIL` when empty.
    head: usize,
    /// Least-recently-used entry, or `NIL` when empty.
    tail: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache bounded to `cap` entries (clamped to at least 1).
    pub fn new(cap: usize) -> LruCache<K, V> {
        let cap = cap.max(1);
        LruCache {
            cap,
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The fixed capacity bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookups that found an entry (and refreshed its recency).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted to make room since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn slot(&self, idx: usize) -> &Entry<K, V> {
        self.slab[idx].as_ref().expect("live LRU slot")
    }

    fn slot_mut(&mut self, idx: usize) -> &mut Entry<K, V> {
        self.slab[idx].as_mut().expect("live LRU slot")
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                self.detach(idx);
                self.attach_front(idx);
                Some(&self.slot(idx).value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks up `key` without touching recency or the hit/miss counters.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&idx| &self.slot(idx).value)
    }

    /// Inserts (or replaces) `key`, marking it most recently used. Returns
    /// the evicted least-recently-used entry when the insert overflowed the
    /// capacity bound.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&idx) = self.map.get(&key) {
            self.slot_mut(idx).value = value;
            self.detach(idx);
            self.attach_front(idx);
            return None;
        }
        let evicted = if self.map.len() >= self.cap {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.detach(lru);
            let entry = self.slab[lru].take().expect("live LRU tail");
            self.map.remove(&entry.key);
            self.free.push(lru);
            self.evictions += 1;
            Some((entry.key, entry.value))
        } else {
            None
        };
        let entry = Entry {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        };
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slab[idx] = Some(entry);
                idx
            }
            None => {
                self.slab.push(Some(entry));
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.attach_front(idx);
        evicted
    }

    /// Removes every entry (counters are preserved; this is not an
    /// eviction).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Keys from most to least recently used (diagnostics and tests).
    pub fn keys_by_recency(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut idx = self.head;
        while idx != NIL {
            let entry = self.slot(idx);
            out.push(entry.key.clone());
            idx = entry.next;
        }
        out
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = {
            let entry = self.slot(idx);
            (entry.prev, entry.next)
        };
        if prev != NIL {
            self.slot_mut(prev).next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slot_mut(next).prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        let entry = self.slot_mut(idx);
        entry.prev = NIL;
        entry.next = NIL;
    }

    fn attach_front(&mut self, idx: usize) {
        let head = self.head;
        {
            let entry = self.slot_mut(idx);
            entry.prev = NIL;
            entry.next = head;
        }
        if head != NIL {
            self.slot_mut(head).prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

impl<K: Eq + Hash + Clone, V> std::fmt::Debug for LruCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LruCache")
            .field("len", &self.len())
            .field("capacity", &self.cap)
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .field("evictions", &self.evictions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_hit_miss_evict() {
        let mut c: LruCache<u32, String> = LruCache::new(2);
        assert_eq!(c.capacity(), 2);
        assert!(c.get(&1).is_none());
        assert_eq!(c.misses(), 1);
        assert!(c.insert(1, "a".into()).is_none());
        assert!(c.insert(2, "b".into()).is_none());
        assert_eq!(c.get(&1).map(String::as_str), Some("a"));
        // Inserting a third evicts 2 (least recently used after the hit
        // on 1).
        let evicted = c.insert(3, "c".into());
        assert_eq!(evicted, Some((2, "b".into())));
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.len(), 2);
        assert!(c.peek(&2).is_none());
        assert_eq!(c.keys_by_recency(), vec![3, 1]);
    }

    #[test]
    fn replace_does_not_evict() {
        let mut c: LruCache<u32, u32> = LruCache::new(1);
        assert!(c.insert(7, 1).is_none());
        assert!(c.insert(7, 2).is_none());
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.get(&7), Some(&2));
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        assert_eq!(c.capacity(), 1);
        assert!(c.insert(1, 10).is_none());
        assert_eq!(c.insert(2, 20), Some((1, 10)));
        assert_eq!(c.get(&2), Some(&20));
    }

    #[test]
    fn slots_are_reused_after_eviction() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        for i in 0..100u32 {
            c.insert(i, i * 10);
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.evictions(), 97);
        // The slab never grows past capacity even after heavy churn.
        assert!(c.slab.len() <= 3);
        assert_eq!(c.keys_by_recency(), vec![99, 98, 97]);
    }

    #[test]
    fn clear_preserves_counters() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 1);
        c.insert(2, 2);
        c.insert(3, 3);
        assert_eq!(c.evictions(), 1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.evictions(), 1);
        c.insert(4, 4);
        assert_eq!(c.get(&4), Some(&4));
    }
}
