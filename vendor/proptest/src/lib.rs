//! Offline vendored property-testing harness.
//!
//! Implements the subset of proptest this workspace uses: composable
//! [`Strategy`] values (ranges, tuples, `prop_map`, `prop_oneof!`,
//! `prop_recursive`, collections, options, `sample::select`) and the
//! [`proptest!`] test macro. Generation is seeded deterministically per
//! test; there is **no shrinking** — a failing case panics with the assert
//! message, and the deterministic seed makes it reproducible.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;
use std::sync::Arc;

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Arc::new(self),
        }
    }

    /// Builds recursive values: starting from `self` as the leaf strategy,
    /// applies `branch` up to `depth` times, mixing shallower cases back in
    /// at every level so generated sizes vary. The `_desired_size` /
    /// `_expected_branch` hints of upstream proptest are accepted and
    /// ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            current = Union::new(vec![
                (1, leaf.clone()),
                (2, branch(current).boxed()),
            ])
            .boxed();
        }
        current
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Arc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Arc::clone(&self.inner),
        }
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut StdRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.inner.generate_dyn(rng)
    }

    fn boxed(self) -> BoxedStrategy<T>
    where
        Self: Sized + 'static,
    {
        self
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice between strategies; the engine behind [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum::<u32>().max(1);
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (weight, strat) in &self.arms {
            if pick < *weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        // Unreachable for non-empty arms; regenerate from the last arm.
        self.arms
            .last()
            .map(|(_, s)| s.generate(rng))
            .unwrap_or_else(|| panic!("prop_oneof! requires at least one arm"))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl<A: Strategy> Strategy for (A,) {
    type Value = (A::Value,);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng),)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// Strategy combinators grouped like upstream's `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::*;

        /// Vectors of `elem` values with a length drawn from `len`.
        #[derive(Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            len: Range<usize>,
        }

        /// Strategy for `Vec`s with lengths in `len`.
        pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use super::super::*;

        /// Strategy yielding `None` about a quarter of the time.
        #[derive(Clone)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// `Some` of `inner`'s values, or `None`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
                if rng.gen_range(0u32..4) == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }

    /// Sampling from fixed pools.
    pub mod sample {
        use super::super::*;

        /// Uniform choice from a fixed pool.
        #[derive(Clone)]
        pub struct Select<T> {
            pool: Vec<T>,
        }

        /// Picks uniformly from `pool` (which must be non-empty).
        pub fn select<T: Clone>(pool: Vec<T>) -> Select<T> {
            assert!(!pool.is_empty(), "select() requires a non-empty pool");
            Select { pool }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut StdRng) -> T {
                self.pool[rng.gen_range(0..self.pool.len())].clone()
            }
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        ProptestConfig, Strategy,
    };
}

/// Weighted (or uniform) choice between strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests. Each `fn name(binding in strategy, ...) { .. }`
/// becomes a `#[test]` that runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                // Seed per test name so sibling tests explore different
                // sequences but every run of this test is identical.
                let mut __seed: u64 = 0xcbf29ce484222325;
                for __b in stringify!($name).bytes() {
                    __seed = (__seed ^ __b as u64).wrapping_mul(0x100000001b3);
                }
                let mut __rng =
                    <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(__seed);
                let __strategies = ($($strat,)+);
                for __case in 0..__config.cases {
                    let ($($arg,)+) = $crate::Strategy::generate(&__strategies, &mut __rng);
                    let _ = __case;
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @run ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
pub use rand as __rand;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_unions_generate_in_bounds() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let s = prop_oneof![2 => 0i64..10, 1 => 100i64..110];
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((0..10).contains(&v) || (100..110).contains(&v));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let leaf = (0i64..10).prop_map(|v| vec![v]);
        let nested = leaf.prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(mut a, b)| {
                a.extend(b);
                a
            })
        });
        for _ in 0..100 {
            let v = nested.generate(&mut rng);
            assert!(!v.is_empty() && v.len() <= 16);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_multiple_args(a in 0u64..100, b in 2usize..5) {
            prop_assert!(a < 100);
            prop_assert_ne!(b, 9);
            prop_assert_eq!(b.clamp(2, 4), b);
        }
    }
}
