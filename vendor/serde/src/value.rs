//! The self-describing data model every serialization passes through.

/// A serialized value.
///
/// Structs and struct variants serialize to [`Value::Map`] with string keys;
/// sequences, tuples and tuple variants to [`Value::Seq`]; enum variants with
/// payloads to a one-entry map `{variant: payload}`; unit variants to
/// [`Value::Str`]; `None` to [`Value::Unit`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `()`, `None`, JSON `null`.
    Unit,
    /// Booleans.
    Bool(bool),
    /// Signed integers (all integer types that fit).
    I64(i64),
    /// Unsigned integers above `i64::MAX`.
    U64(u64),
    /// Floating point (including non-finite values).
    F64(f64),
    /// Strings and unit enum variants.
    Str(String),
    /// Sequences, tuples, tuple variants.
    Seq(Vec<Value>),
    /// Maps, structs, struct variants, payload-carrying enum variants.
    Map(Vec<(Value, Value)>),
}

impl crate::ser::Serialize for Value {
    fn serialize<S: crate::ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.clone())
    }
}

impl<'de> crate::de::Deserialize<'de> for Value {
    fn deserialize<D: crate::de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.take_value()
    }
}

impl Value {
    /// Name of the value's shape, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Unit => "unit",
            Value::Bool(_) => "bool",
            Value::I64(_) => "integer",
            Value::U64(_) => "unsigned integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}
