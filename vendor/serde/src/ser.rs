//! Serialization traits.
//!
//! Unlike upstream serde's streaming `Serializer` with per-shape compound
//! sub-serializers, this vendored trait is value-centric: every shape method
//! has a default implementation that funnels into [`Serializer::serialize_value`].
//! Hand-written impls in the workspace (e.g. `Symbol`) only call shape
//! methods like `serialize_str`, so they compile unchanged.

use crate::Value;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Display;

/// Error constraint for serializers.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data format (or value sink) that types serialize into.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type.
    type Error: Error;

    /// Accepts a fully built [`Value`]. All other methods funnel here.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;

    /// Serializes a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Bool(v))
    }

    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::I64(v))
    }

    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        if let Ok(i) = i64::try_from(v) {
            self.serialize_value(Value::I64(i))
        } else {
            self.serialize_value(Value::U64(v))
        }
    }

    /// Serializes a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::F64(v))
    }

    /// Serializes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Str(v.to_owned()))
    }

    /// Serializes a unit value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Unit)
    }

    /// Serializes `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Unit)
    }

    /// Serializes `Some(value)` transparently.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error> {
        let v = to_value(value).map_err(Error::custom)?;
        self.serialize_value(v)
    }
}

/// A type that can be serialized.
pub trait Serialize {
    /// Serializes `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// The canonical serializer: builds a [`Value`].
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = crate::Error;

    fn serialize_value(self, value: Value) -> Result<Value, crate::Error> {
        Ok(value)
    }
}

/// Serializes any value into the [`Value`] data model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, crate::Error> {
    value.serialize(ValueSerializer)
}

// ---------------------------------------------------------------------------
// Serialize impls for std types used across the workspace.

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(*self as i64)
            }
        }
    )*};
}

impl_ser_int!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }
    )*};
}

impl_ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_none(),
            Some(v) => serializer.serialize_some(v),
        }
    }
}

fn seq_to_value<'a, T: Serialize + 'a, I: Iterator<Item = &'a T>, E: Error>(
    items: I,
) -> Result<Value, E> {
    let mut out = Vec::new();
    for item in items {
        out.push(to_value(item).map_err(E::custom)?);
    }
    Ok(Value::Seq(out))
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value(self.iter())?;
        serializer.serialize_value(v)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value(self.iter())?;
        serializer.serialize_value(v)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value(self.iter())?;
        serializer.serialize_value(v)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let a = to_value(&self.0).map_err(S::Error::custom)?;
        let b = to_value(&self.1).map_err(S::Error::custom)?;
        serializer.serialize_value(Value::Seq(vec![a, b]))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let a = to_value(&self.0).map_err(S::Error::custom)?;
        let b = to_value(&self.1).map_err(S::Error::custom)?;
        let c = to_value(&self.2).map_err(S::Error::custom)?;
        serializer.serialize_value(Value::Seq(vec![a, b, c]))
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Sort entries by serialized key for a canonical, diffable encoding.
        let mut entries = Vec::with_capacity(self.len());
        for (k, v) in self {
            let k = to_value(k).map_err(S::Error::custom)?;
            let v = to_value(v).map_err(S::Error::custom)?;
            entries.push((k, v));
        }
        entries.sort_by(|(a, _), (b, _)| format!("{a:?}").cmp(&format!("{b:?}")));
        serializer.serialize_value(Value::Map(entries))
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut entries = Vec::with_capacity(self.len());
        for (k, v) in self {
            let k = to_value(k).map_err(S::Error::custom)?;
            let v = to_value(v).map_err(S::Error::custom)?;
            entries.push((k, v));
        }
        serializer.serialize_value(Value::Map(entries))
    }
}
