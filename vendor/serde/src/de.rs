//! Deserialization traits.
//!
//! Mirror image of [`crate::ser`]: a `Deserializer` hands over a complete
//! [`Value`] tree via [`Deserializer::take_value`], and typed impls pattern
//! match on it. The helpers at the bottom ([`into_map`], [`field`],
//! [`into_variant`], …) are the runtime support library of the vendored
//! `serde_derive` macros.

use crate::Value;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Display;
use std::hash::Hash;
use std::marker::PhantomData;

/// Error constraint for deserializers.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A source of serialized data.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Surrenders the complete value tree.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// A type that can be deserialized.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from `deserializer`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// The canonical deserializer: replays a [`Value`].
pub struct ValueDeserializer<E> {
    value: Value,
    _marker: PhantomData<E>,
}

impl<E> ValueDeserializer<E> {
    /// Wraps `value` for deserialization with error type `E`.
    pub fn new(value: Value) -> Self {
        ValueDeserializer {
            value,
            _marker: PhantomData,
        }
    }
}

impl<'de, E: Error> Deserializer<'de> for ValueDeserializer<E> {
    type Error = E;

    fn take_value(self) -> Result<Value, E> {
        Ok(self.value)
    }
}

/// Deserializes a typed value out of a [`Value`] tree.
pub fn from_value<'de, T: Deserialize<'de>, E: Error>(value: Value) -> Result<T, E> {
    T::deserialize(ValueDeserializer::<E>::new(value))
}

fn unexpected<E: Error>(expected: &str, got: &Value) -> E {
    E::custom(format!("expected {expected}, found {}", got.kind()))
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types used across the workspace.

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.take_value()? {
                    Value::I64(v) => <$t>::try_from(v)
                        .map_err(|_| D::Error::custom(format!(
                            "integer {v} out of range for {}", stringify!($t)))),
                    Value::U64(v) => <$t>::try_from(v)
                        .map_err(|_| D::Error::custom(format!(
                            "integer {v} out of range for {}", stringify!($t)))),
                    other => Err(unexpected("integer", &other)),
                }
            }
        }
    )*};
}

impl_de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(unexpected("bool", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::F64(v) => Ok(v),
            Value::I64(v) => Ok(v as f64),
            Value::U64(v) => Ok(v as f64),
            other => Err(unexpected("float", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Str(s) => Ok(s),
            other => Err(unexpected("string", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Unit => Ok(()),
            other => Err(unexpected("unit", &other)),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        T::deserialize(d).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Unit => Ok(None),
            v => from_value(v).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Seq(items) => items.into_iter().map(from_value).collect(),
            other => Err(unexpected("sequence", &other)),
        }
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let items = Vec::<T>::deserialize(d)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| D::Error::custom(format!("expected array of {N} elements, found {n}")))
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Seq(items) if items.len() == 2 => {
                let mut it = items.into_iter();
                let a = from_value(it.next().unwrap_or(Value::Unit))?;
                let b = from_value(it.next().unwrap_or(Value::Unit))?;
                Ok((a, b))
            }
            other => Err(unexpected("2-element sequence", &other)),
        }
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Seq(items) if items.len() == 3 => {
                let mut it = items.into_iter();
                let a = from_value(it.next().unwrap_or(Value::Unit))?;
                let b = from_value(it.next().unwrap_or(Value::Unit))?;
                let c = from_value(it.next().unwrap_or(Value::Unit))?;
                Ok((a, b, c))
            }
            other => Err(unexpected("3-element sequence", &other)),
        }
    }
}

impl<'de, K, V> Deserialize<'de> for HashMap<K, V>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| Ok((from_value(k)?, from_value(v)?)))
                .collect(),
            other => Err(unexpected("map", &other)),
        }
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| Ok((from_value(k)?, from_value(v)?)))
                .collect(),
            other => Err(unexpected("map", &other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Runtime support for the vendored derive macros.

/// Unwraps a [`Value::Map`] (derive support).
pub fn into_map<E: Error>(value: Value) -> Result<Vec<(Value, Value)>, E> {
    match value {
        Value::Map(entries) => Ok(entries),
        other => Err(unexpected("map", &other)),
    }
}

/// Unwraps a [`Value::Seq`] of exactly `n` elements (derive support).
pub fn into_seq_n<E: Error>(value: Value, n: usize) -> Result<Vec<Value>, E> {
    match value {
        Value::Seq(items) if items.len() == n => Ok(items),
        Value::Seq(items) => Err(E::custom(format!(
            "expected sequence of {n} elements, found {}",
            items.len()
        ))),
        other => Err(unexpected("sequence", &other)),
    }
}

/// Extracts and deserializes the struct field `name` (derive support).
pub fn field<'de, T: Deserialize<'de>, E: Error>(
    entries: &mut Vec<(Value, Value)>,
    name: &str,
) -> Result<T, E> {
    let idx = entries
        .iter()
        .position(|(k, _)| matches!(k, Value::Str(s) if s == name))
        .ok_or_else(|| E::custom(format!("missing field `{name}`")))?;
    let (_, value) = entries.swap_remove(idx);
    from_value(value).map_err(|e: E| E::custom(format!("field `{name}`: {e}")))
}

/// Splits an enum encoding into `(variant_name, payload)` (derive support).
///
/// Unit variants are encoded as a bare string (no payload); variants with
/// data as a one-entry map `{variant: payload}`.
pub fn into_variant<E: Error>(value: Value) -> Result<(String, Option<Value>), E> {
    match value {
        Value::Str(name) => Ok((name, None)),
        Value::Map(mut entries) if entries.len() == 1 => {
            let (k, v) = entries.pop().expect("len checked");
            match k {
                Value::Str(name) => Ok((name, Some(v))),
                other => Err(unexpected("variant name string", &other)),
            }
        }
        other => Err(unexpected("enum variant", &other)),
    }
}
