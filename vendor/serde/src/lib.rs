//! Offline vendored stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! small serde-shaped serialization framework. It keeps the upstream trait
//! *signatures* that this repository's code actually writes against —
//! `#[derive(Serialize, Deserialize)]`, `fn serialize<S: Serializer>`,
//! `String::deserialize(d)?` — while funnelling all data through one
//! self-describing [`Value`] tree instead of upstream's zero-copy visitor
//! machinery. The companion vendored `serde_json` crate renders [`Value`]s
//! as JSON text.
//!
//! Supported shapes are exactly what the workspace needs: primitives,
//! strings, tuples, arrays, `Vec`, `Option`, `Box`, `HashMap`/`BTreeMap`,
//! structs and enums (unit/newtype/tuple/struct variants) via the derive
//! macros in the vendored `serde_derive`.

pub mod de;
pub mod ser;
mod value;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
pub use serde_derive::{Deserialize, Serialize};
pub use value::Value;

use std::fmt;

/// The one concrete error type of the vendored framework.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}
