//! Offline vendored JSON codec over the vendored `serde`'s [`Value`] model.
//!
//! Supports everything the workspace serializes: the full `Value` tree with
//! exact `f64` round-tripping (via `{:?}` formatting) and bare `NaN` /
//! `Infinity` / `-Infinity` tokens so non-finite fitness values survive a
//! checkpoint cycle. Maps with non-string keys encode the key as its JSON
//! text in a string (only used for diagnostics; the workspace keys maps by
//! strings).

use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;

/// Errors produced by [`to_string`] / [`from_str`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = serde::ser::to_value(value).map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    write_value(&mut out, &v);
    Ok(out)
}

/// Serializes `value` to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = serde::ser::to_value(value).map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    write_value_pretty(&mut out, &v, 0);
    Ok(out)
}

/// Deserializes a value from JSON text.
pub fn from_str<'de, T: Deserialize<'de>>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    serde::de::from_value(value)
}

// ---------------------------------------------------------------------------
// Encoding

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Unit => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) => write_f64(out, *v),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_key(out, k);
                out.push(':');
                write_value(out, v);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(out: &mut String, value: &Value, indent: usize) {
    match value {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_key(out, k);
                out.push_str(": ");
                write_value_pretty(out, v, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// JSON object keys must be strings; non-string keys encode as their JSON
/// text inside a string.
fn write_key(out: &mut String, key: &Value) {
    match key {
        Value::Str(s) => write_escaped(out, s),
        other => {
            let mut inner = String::new();
            write_value(&mut inner, other);
            write_escaped(out, &inner);
        }
    }
}

/// `{:?}` on f64 prints the shortest representation that round-trips, which
/// is exactly what a checkpoint needs. Non-finite values use bare tokens.
fn write_f64(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("Infinity");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Infinity");
    } else {
        let _ = write!(out, "{v:?}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Decoding

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Unit),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'N') if self.eat_keyword("NaN") => Ok(Value::F64(f64::NAN)),
            Some(b'I') if self.eat_keyword("Infinity") => Ok(Value::F64(f64::INFINITY)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b'-') if self.bytes[self.pos + 1..].starts_with(b"Infinity") => {
                self.pos += 1 + "Infinity".len();
                Ok(Value::F64(f64::NEG_INFINITY))
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, found {:?} at byte {}",
                        other.map(|b| b as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((Value::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, found {:?} at byte {}",
                        other.map(|b| b as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            // Surrogate pairs are not produced by our encoder;
                            // replace lone surrogates rather than erroring.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!(
                                "invalid escape {:?} at byte {}",
                                other.map(|b| b as char),
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error(format!("invalid number: {e}")))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|e| Error(format!("invalid number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_value_tree() {
        let v = Value::Map(vec![
            (Value::Str("a".into()), Value::I64(-3)),
            (Value::Str("b".into()), Value::Seq(vec![Value::Bool(true), Value::Unit])),
            (Value::Str("c".into()), Value::F64(0.1)),
            (Value::Str("d\"\n".into()), Value::Str("x\\y".into())),
        ]);
        let text = {
            let mut s = String::new();
            write_value(&mut s, &v);
            s
        };
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let back = p.parse_value().unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn exact_f64_roundtrip() {
        for v in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e308, -2.5e-17] {
            let text = to_string(&v).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn nonfinite_tokens() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "Infinity");
        assert_eq!(to_string(&f64::NEG_INFINITY).unwrap(), "-Infinity");
        assert_eq!(to_string(&f64::NAN).unwrap(), "NaN");
        let back: f64 = from_str("NaN").unwrap();
        assert!(back.is_nan());
        let back: f64 = from_str("-Infinity").unwrap();
        assert_eq!(back, f64::NEG_INFINITY);
    }

    #[test]
    fn big_u64_survives() {
        let v = u64::MAX;
        let text = to_string(&v).unwrap();
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Map(vec![(
            Value::Str("xs".into()),
            Value::Seq(vec![Value::I64(1), Value::I64(2)]),
        )]);
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let back: Value = {
            let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
            p.parse_value().unwrap()
        };
        assert_eq!(back, v);
    }
}