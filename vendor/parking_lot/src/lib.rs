//! Offline vendored stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API:
//! `lock()`/`read()`/`write()` return guards directly. A mutex held across a
//! panic is recovered instead of poisoned — exactly the behavior the
//! panic-isolated GP evaluator in `fegen-core` relies on.

use std::sync::PoisonError;

/// A mutual-exclusion lock whose guard access never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose guard access never fails.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_survives_panic_while_held() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::panic::catch_unwind(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        });
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
