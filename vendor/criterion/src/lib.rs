//! Offline vendored benchmark harness exposing the criterion API subset the
//! workspace benches use. Instead of criterion's statistical sampling it
//! runs a short warm-up, then a fixed measurement window, and prints the
//! mean wall-clock time per iteration. Good enough to spot order-of-
//! magnitude regressions; not a statistics engine.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier; prevents the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation (recorded for display only).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How batched inputs are sized; accepted for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// The benchmark driver.
pub struct Criterion {
    measurement: Duration,
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_millis(300),
            warm_up: Duration::from_millis(50),
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<N: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            measurement: self.measurement,
            warm_up: self.warm_up,
            result: None,
        };
        f(&mut bencher);
        bencher.report(&name.into(), None);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; this harness uses a time window rather
    /// than a sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-iteration throughput annotation.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Adjusts the measurement window.
    pub fn measurement_time(&mut self, window: Duration) -> &mut Self {
        self.criterion.measurement = window;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<N: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            measurement: self.criterion.measurement,
            warm_up: self.criterion.warm_up,
            result: None,
        };
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, name.into()), self.throughput);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs the measured routine.
pub struct Bencher {
    measurement: Duration,
    warm_up: Duration,
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Measures `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate a per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }

        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < self.measurement {
            black_box(routine());
            iters += 1;
            if iters >= 10_000_000 {
                break;
            }
        }
        self.result = Some((start.elapsed(), iters.max(1)));
    }

    /// Measures `routine` over inputs built by `setup` (setup excluded from
    /// the timing as closely as this simple harness can manage).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));

        let mut measured = Duration::ZERO;
        let mut iters: u64 = 0;
        while measured < self.measurement {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
            if iters >= 10_000_000 {
                break;
            }
        }
        self.result = Some((measured, iters.max(1)));
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        let Some((elapsed, iters)) = self.result else {
            println!("{name:<40} (no measurement)");
            return;
        };
        let per_iter = elapsed.as_secs_f64() / iters as f64;
        let mut line = format!("{name:<40} {:>12}/iter ({iters} iters)", fmt_time(per_iter));
        if let Some(tp) = throughput {
            let (count, unit) = match tp {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            if per_iter > 0.0 {
                line.push_str(&format!(
                    "  {:.3e} {unit}/s",
                    count as f64 / per_iter
                ));
            }
        }
        println!("{line}");
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes flags like `--bench`; they are accepted
            // and ignored. A positional filter argument is also ignored —
            // this harness always runs everything.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            measurement: Duration::from_millis(5),
            warm_up: Duration::from_millis(1),
        };
        let mut hits = 0u64;
        c.bench_function("smoke", |b| b.iter(|| hits = hits.wrapping_add(1)));
        assert!(hits > 0);
    }

    #[test]
    fn groups_support_throughput_and_batched() {
        let mut c = Criterion {
            measurement: Duration::from_millis(5),
            warm_up: Duration::from_millis(1),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.throughput(Throughput::Elements(100));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
