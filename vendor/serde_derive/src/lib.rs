//! Offline vendored `#[derive(Serialize, Deserialize)]` macros.
//!
//! Emits impls against the vendored value-centric `serde` crate. The parser
//! is hand-rolled over `proc_macro::TokenStream` (no `syn`/`quote`, since the
//! build environment has no registry access) and supports exactly the shapes
//! this workspace derives on: non-generic structs (named, tuple, unit) and
//! non-generic enums with unit / tuple / struct variants.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

/// Parsed shape of a struct body or an enum variant.
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().expect("literal parses")
}

type Iter = Peekable<proc_macro::token_stream::IntoIter>;

/// Skips `#[...]` attributes (including doc comments).
fn skip_attrs(iter: &mut Iter) {
    while let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() != '#' {
            break;
        }
        iter.next();
        // The bracket group of the attribute (and `!` for inner attributes).
        if let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == '!' {
                iter.next();
            }
        }
        iter.next();
    }
}

/// Skips `pub`, `pub(crate)`, `pub(in ...)`.
fn skip_vis(iter: &mut Iter) {
    if let Some(TokenTree::Ident(id)) = iter.peek() {
        if id.to_string() == "pub" {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    iter.next();
                }
            }
        }
    }
}

fn expect_ident(iter: &mut Iter, what: &str) -> Result<String, String> {
    match iter.next() {
        Some(TokenTree::Ident(id)) => Ok(id.to_string()),
        other => Err(format!("serde derive: expected {what}, found {other:?}")),
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter: Iter = input.into_iter().peekable();
    skip_attrs(&mut iter);
    skip_vis(&mut iter);
    let kw = expect_ident(&mut iter, "`struct` or `enum`")?;
    let name = expect_ident(&mut iter, "type name")?;
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde derive: generic type `{name}` is not supported by the vendored derive"
            ));
        }
    }
    match kw.as_str() {
        "struct" => {
            let fields = match iter.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("serde derive: unexpected struct body {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match iter.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("serde derive: unexpected enum body {other:?}")),
            };
            let mut variants = Vec::new();
            let mut it: Iter = body.into_iter().peekable();
            while it.peek().is_some() {
                skip_attrs(&mut it);
                if it.peek().is_none() {
                    break;
                }
                let vname = expect_ident(&mut it, "variant name")?;
                let fields = match it.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let f = Fields::Tuple(count_tuple_fields(g.stream()));
                        it.next();
                        f
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let f = Fields::Named(parse_named_fields(g.stream())?);
                        it.next();
                        f
                    }
                    _ => Fields::Unit,
                };
                match it.next() {
                    None => {}
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
                    Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                        return Err(format!(
                            "serde derive: explicit discriminant on `{vname}` is not supported"
                        ));
                    }
                    other => {
                        return Err(format!("serde derive: unexpected token {other:?} after variant"))
                    }
                }
                variants.push((vname, fields));
            }
            Ok(Item::Enum { name, variants })
        }
        other => Err(format!("serde derive: cannot derive for `{other}` items")),
    }
}

/// Parses `name: Type, ...` field lists, returning the names.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let mut iter: Iter = stream.into_iter().peekable();
    while iter.peek().is_some() {
        skip_attrs(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        skip_vis(&mut iter);
        names.push(expect_ident(&mut iter, "field name")?);
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("serde derive: expected `:`, found {other:?}")),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        for tok in iter.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
    Ok(names)
}

/// Counts tuple-struct / tuple-variant fields.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_token = false;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    fields + usize::from(saw_token)
}

// ---------------------------------------------------------------------------
// Code generation (emitted as source text, then re-parsed).

/// `to_value(expr)` mapped into the serializer's error type.
fn ser_value(expr: &str) -> String {
    format!(
        "serde::ser::to_value({expr}).map_err(<__S::Error as serde::ser::Error>::custom)?"
    )
}

fn named_fields_to_map(fields: &[String], access: impl Fn(&str) -> String) -> String {
    let mut out = String::from("{ let mut __fields: Vec<(serde::Value, serde::Value)> = Vec::new();");
    for f in fields {
        out.push_str(&format!(
            "__fields.push((serde::Value::Str(String::from(\"{f}\")), {}));",
            ser_value(&access(f))
        ));
    }
    out.push_str("serde::Value::Map(__fields) }");
    out
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let value = match fields {
                Fields::Unit => "serde::Value::Unit".to_owned(),
                Fields::Named(names) => {
                    named_fields_to_map(names, |f| format!("&self.{f}"))
                }
                Fields::Tuple(1) => {
                    // Newtype structs serialize transparently (as upstream).
                    ser_value("&self.0")
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> =
                        (0..*n).map(|i| ser_value(&format!("&self.{i}"))).collect();
                    format!("serde::Value::Seq(vec![{}])", items.join(", "))
                }
            };
            (name, format!("let __value = {value}; __s.serialize_value(__value)"))
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => __s.serialize_value(serde::Value::Str(String::from(\"{vname}\"))),"
                    )),
                    Fields::Named(fnames) => {
                        let binders = fnames.join(", ");
                        let map = named_fields_to_map(fnames, |f| f.to_owned());
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binders} }} => {{ let __payload = {map}; \
                             __s.serialize_value(serde::Value::Map(vec![(serde::Value::Str(String::from(\"{vname}\")), __payload)])) }},"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            ser_value("__f0")
                        } else {
                            let items: Vec<String> =
                                binders.iter().map(|b| ser_value(b)).collect();
                            format!("serde::Value::Seq(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => {{ let __payload = {payload}; \
                             __s.serialize_value(serde::Value::Map(vec![(serde::Value::Str(String::from(\"{vname}\")), __payload)])) }},",
                            binders.join(", ")
                        ));
                    }
                }
            }
            (name, format!("match self {{ {arms} }}"))
        }
    };
    format!(
        "#[automatically_derived] impl serde::ser::Serialize for {name} {{ \
         fn serialize<__S: serde::ser::Serializer>(&self, __s: __S) \
         -> core::result::Result<__S::Ok, __S::Error> {{ {body} }} }}"
    )
}

/// `from_value::<_, __D::Error>(expr)?`.
fn de_value(expr: &str) -> String {
    format!("serde::de::from_value::<_, __D::Error>({expr})?")
}

fn named_fields_from_map(fields: &[String]) -> String {
    fields
        .iter()
        .map(|f| format!("{f}: serde::de::field::<_, __D::Error>(&mut __map, \"{f}\")?"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("let _ = __d.take_value()?; Ok({name})"),
                Fields::Named(names) => format!(
                    "let mut __map = serde::de::into_map::<__D::Error>(__d.take_value()?)?; \
                     Ok({name} {{ {} }})",
                    named_fields_from_map(names)
                ),
                Fields::Tuple(1) => format!(
                    "Ok({name}({}))",
                    de_value("__d.take_value()?")
                ),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|_| de_value("__items.next().unwrap_or(serde::Value::Unit)"))
                        .collect();
                    format!(
                        "let mut __items = serde::de::into_seq_n::<__D::Error>(__d.take_value()?, {n})?.into_iter(); \
                         Ok({name}({}))",
                        items.join(", ")
                    )
                }
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => {
                        arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),"));
                    }
                    Fields::Named(fnames) => arms.push_str(&format!(
                        "\"{vname}\" => {{ let mut __map = serde::de::into_map::<__D::Error>(__require_payload(\"{vname}\", __payload)?)?; \
                         Ok({name}::{vname} {{ {} }}) }},",
                        named_fields_from_map(fnames)
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "\"{vname}\" => Ok({name}::{vname}({})),",
                        de_value("__require_payload(\"{X}\", __payload)?").replace("{X}", vname)
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|_| de_value("__items.next().unwrap_or(serde::Value::Unit)"))
                            .collect();
                        arms.push_str(&format!(
                            "\"{vname}\" => {{ let mut __items = serde::de::into_seq_n::<__D::Error>(__require_payload(\"{vname}\", __payload)?, {n})?.into_iter(); \
                             Ok({name}::{vname}({})) }},",
                            items.join(", ")
                        ));
                    }
                }
            }
            let body = format!(
                "fn __require_payload<__E: serde::de::Error>(__variant: &str, __p: Option<serde::Value>) -> core::result::Result<serde::Value, __E> {{ \
                     __p.ok_or_else(|| <__E as serde::de::Error>::custom(format!(\"variant `{{__variant}}` expects a payload\"))) \
                 }} \
                 let (__tag, __payload) = serde::de::into_variant::<__D::Error>(__d.take_value()?)?; \
                 match __tag.as_str() {{ {arms} \
                 __other => Err(<__D::Error as serde::de::Error>::custom(format!(\"unknown {name} variant `{{__other}}`\"))) }}"
            );
            (name, body)
        }
    };
    format!(
        "#[automatically_derived] impl<'de> serde::de::Deserialize<'de> for {name} {{ \
         fn deserialize<__D: serde::de::Deserializer<'de>>(__d: __D) \
         -> core::result::Result<Self, __D::Error> {{ {body} }} }}"
    )
}
