//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! the workspace vendors a small, dependency-free implementation of the
//! subset of the `rand 0.8` API it actually uses: [`RngCore`], [`Rng`]
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — *not* the ChaCha12 stream of upstream `rand`, so value
//! streams differ from upstream. Every consumer in this workspace only
//! relies on determinism for a fixed seed, which this implementation
//! guarantees (and additionally exposes via [`rngs::StdRng::state`] /
//! [`rngs::StdRng::from_state`], used by `fegen-core::checkpoint` to
//! serialize search state).

pub mod rngs;
pub mod seq;

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their full value range (the
/// stand-in for `rand`'s `Standard` distribution).
pub trait Random: Sized {
    /// Draws one value from `rng`.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for i64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Random for usize {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value of the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + draw) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Random>::random(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferred type (`rand`'s `gen::<T>()`).
    fn gen<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        <f64 as Random>::random(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(9);
        for _ in 0..13 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
