//! Named generators. Only [`StdRng`] is provided.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Unlike upstream `rand`, the internal state is inspectable via
/// [`StdRng::state`] and restorable via [`StdRng::from_state`] — the
/// checkpointing layer in `fegen-core` serializes generators this way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// The raw 256-bit state.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a previously captured [`state`](Self::state),
    /// continuing the exact same stream.
    pub fn from_state(s: [u64; 4]) -> StdRng {
        if s == [0; 4] {
            // The all-zero state is a fixed point of xoshiro; remap it.
            return StdRng::seed_from_u64(0);
        }
        StdRng { s }
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> StdRng {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(b);
        }
        StdRng::from_state(s)
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
