//! # fegen — Automatic Feature Generation for ML-Based Optimizing Compilation
//!
//! Umbrella crate of the CGO 2009 reproduction (Leather, Bonilla, O'Boyle).
//! It re-exports the workspace crates under stable module names so examples
//! and integration tests can use a single dependency:
//!
//! - [`lang`] — the Tiny-C source language front end,
//! - [`rtl`] — the RTL-style compiler IR, loop analysis and unrolling,
//! - [`sim`] — the cycle-approximate CPU simulator and measurement pipeline,
//! - [`suite`] — the synthetic MediaBench/MiBench/UTDSP-style benchmark suite,
//! - [`ml`] — the machine-learning substrate (C4.5 tree, RBF SVM, CV),
//! - [`core`] — the paper's contribution: feature grammars, the feature
//!   expression language and the GP feature search.
//! - [`bench`] — the experiment harness: pipeline, measurement campaign and
//!   the persistent dataset store.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system inventory.


// Library code must report through telemetry events or typed errors,
// never by printing; binaries are exempt (their crate roots are in bin/).
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub use fegen_bench as bench;
pub use fegen_core as core;
pub use fegen_lang as lang;
pub use fegen_ml as ml;
pub use fegen_rtl as rtl;
pub use fegen_sim as sim;
pub use fegen_suite as suite;
