//! `fegen` — command-line front end for the whole toolchain.
//!
//! ```text
//! fegen parse   <file>                         check + pretty-print a Tiny-C program
//! fegen rtl     <file> [func]                  dump lowered RTL
//! fegen loops   <file>                         list loops with analysis facts
//! fegen unroll  <file> <func> <loop> <factor>  dump RTL after unrolling
//! fegen run     <file> <func> [int args...]    simulate a call, report cycles
//! fegen table   <file> <func> <loop> [n]       cycle table over factors 0..=15
//! fegen export  <file> <func> <loop>           dump a loop's feature-generator IR
//! fegen grammar <file>                         derive and print the feature grammar
//! fegen eval    <file> <func> <loop> <expr>    evaluate a feature expression
//! fegen suite   <index>                        print a generated benchmark's source
//! fegen search  <file> [flags]                 run the GP feature search on a program
//! fegen measure [flags]                        run the measurement campaign into a dataset
//! fegen report  <dir>                          summarize a telemetry event log
//! fegen bench-perf [flags]                     measure eval-engine throughput
//! fegen bench-measure [flags]                  time fork-once vs scratch campaigns
//! ```
//!
//! `fegen measure` flags:
//!
//! ```text
//! --dataset-dir <dir>      dataset directory (required)
//! --resume                 continue a partially measured (or corrupted) dataset
//! --jobs <n>               parallel measurement workers (default 1)
//! --retry <n>              attempts per site before quarantine (default 3)
//! --quarantine-after <n>   quarantine a benchmark after n quarantined sites (default 4)
//! --seed <n>               master seed (default from the quick preset)
//! --paper                  paper-scale suite instead of the quick preset
//! ```
//!
//! `fegen search` flags:
//!
//! ```text
//! --checkpoint-dir <dir>   write resumable snapshots into <dir>
//! --checkpoint-every <n>   snapshot every n GP generations (default 5)
//! --resume <path>          continue from a checkpoint file or directory
//! --seed <n>               master seed (default from the quick preset)
//! --paper                  paper-scale budgets instead of the quick preset
//! --engine <name>          feature evaluation engine: compiled (default) | interp
//! --islands <n>            island populations per GP run (default 1)
//! --migration-every <n>    rounds between elite migrations (default 5)
//! --island-restart-limit <n>  crashed step retries before an island is frozen (default 3)
//! --workers <n>            island worker threads (execution knob; results identical)
//! --workers-proc <n>       step islands in n worker *processes* (results identical)
//! --worker-channel <name>  process-worker channel: stdio (default) | unix-socket
//! ```
//!
//! `--workers-proc` supervises separate `fegen island-worker` processes over
//! a digest-sealed frame protocol; crashed or wedged workers are respawned
//! from the last committed round and, past the reconnect window, their
//! islands are frozen and merged. Results and checkpoints stay byte-identical
//! to the in-process (`--workers`) path. `fegen island-worker` is the hidden
//! worker entry point — it speaks frames on stdin/stdout and is not meant to
//! be invoked by hand.
//!
//! `fegen search` and `fegen measure` also accept the telemetry flags:
//!
//! ```text
//! --telemetry-dir <dir>    append structured JSONL events to <dir>/events.jsonl
//! --log-json               mirror every event to stderr as one JSON line
//! --progress               human-readable progress lines on stderr
//! ```
//!
//! Telemetry is observational only: checkpoints, shards and search results
//! are byte-identical with and without it. `fegen report <dir>` renders the
//! accumulated event log (progress, ETA, slowest sites, cache hit rates).
//!
//! `fegen bench-perf` flags:
//!
//! ```text
//! --out <path>             where to write the JSON report (default BENCH_eval.json)
//! --quick                  shorter measurement windows (CI smoke mode)
//! ```
//!
//! `fegen bench-measure` flags:
//!
//! ```text
//! --out <path>             where to write the JSON report (default BENCH_measure.json)
//! --quick                  tiny suite + reduced sampling (CI smoke mode)
//! --jobs <n>               parallel workers for both campaigns (default 1)
//! ```
//!
//! `bench-measure` runs the same measurement campaign twice — once
//! recompiling every (site, factor) cell from scratch, once forking each
//! cell off a per-benchmark snapshot — verifies the shards are
//! byte-identical, and reports the wall-clock ratio. It fails below a 2x
//! forked-over-scratch floor, after writing the report.

use fegen::core::ir::IrArena;
use fegen::core::search::SearchDriver;
use fegen::core::{
    parse_feature, EvalEngine, EvalPool, FeatureExpr, FeatureSearch, Grammar, Program, ProgramPath,
    SearchConfig, SearchError, SearchOutcome, TrainingExample,
};
use fegen::rtl::export::export_loop;
use fegen::rtl::heuristic::{gcc_default_factor, gcc_features, GccParams, GCC_FEATURE_NAMES};
use fegen::rtl::lower::lower_program;
use fegen::rtl::unroll::unroll_loop;
use fegen::rtl::RtlProgram;
use fegen::sim::{Arg, Machine, SimConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fegen: {e}");
            ExitCode::FAILURE
        }
    }
}

type Anyhow = Box<dyn std::error::Error>;

fn run(args: &[String]) -> Result<(), Anyhow> {
    let Some(cmd) = args.first() else {
        print_usage();
        return Ok(());
    };
    match cmd.as_str() {
        "parse" => cmd_parse(arg(args, 1)?),
        "rtl" => cmd_rtl(arg(args, 1)?, args.get(2).map(String::as_str)),
        "loops" => cmd_loops(arg(args, 1)?),
        "unroll" => cmd_unroll(
            arg(args, 1)?,
            arg(args, 2)?,
            parse_num(arg(args, 3)?)?,
            parse_num(arg(args, 4)?)?,
        ),
        "run" => cmd_run(arg(args, 1)?, arg(args, 2)?, &args[3..]),
        "table" => cmd_table(
            arg(args, 1)?,
            arg(args, 2)?,
            parse_num(arg(args, 3)?)?,
            args.get(4).map(|s| parse_num(s)).transpose()?,
        ),
        "export" => cmd_export(arg(args, 1)?, arg(args, 2)?, parse_num(arg(args, 3)?)?),
        "grammar" => cmd_grammar(arg(args, 1)?),
        "eval" => cmd_eval(
            arg(args, 1)?,
            arg(args, 2)?,
            parse_num(arg(args, 3)?)?,
            arg(args, 4)?,
        ),
        "suite" => cmd_suite(parse_num(arg(args, 1)?)?),
        "search" => cmd_search(arg(args, 1)?, &args[2..]),
        "island-worker" => cmd_island_worker(),
        "measure" => cmd_measure(&args[1..]),
        "report" => cmd_report(arg(args, 1)?),
        "bench-perf" => cmd_bench_perf(&args[1..]),
        "bench-measure" => cmd_bench_measure(&args[1..]),
        "train-model" => cmd_train_model(arg(args, 1)?, &args[2..]),
        "serve" => cmd_serve(&args[1..]),
        "bench-serve" => cmd_bench_serve(&args[1..]),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command `{other}` (try `fegen help`)").into()),
    }
}

fn print_usage() {
    println!("fegen — automatic feature generation for optimizing compilation");
    println!();
    println!("  fegen parse   <file>                         check + pretty-print");
    println!("  fegen rtl     <file> [func]                  dump lowered RTL");
    println!("  fegen loops   <file>                         list loops + analysis facts");
    println!("  fegen unroll  <file> <func> <loop> <factor>  dump unrolled RTL");
    println!("  fegen run     <file> <func> [int args...]    simulate a call");
    println!("  fegen table   <file> <func> <loop> [n]       cycle table, factors 0..=15");
    println!("  fegen export  <file> <func> <loop>           dump feature-generator IR");
    println!("  fegen grammar <file>                         derive the feature grammar");
    println!("  fegen eval    <file> <func> <loop> <expr>    evaluate a feature");
    println!("  fegen suite   <index>                        print benchmark #index source");
    println!("  fegen search  <file> [flags]                 run the GP feature search");
    println!("  fegen measure [flags]                        measurement campaign -> dataset");
    println!("  fegen report  <dir>                          summarize a telemetry event log");
    println!("  fegen bench-perf [flags]                     measure eval-engine throughput");
    println!("  fegen bench-measure [flags]                  time fork-once vs scratch campaigns");
    println!("  fegen train-model <file> [flags]             train + save a model artifact");
    println!("  fegen serve [flags]                          serve unroll decisions from a model");
    println!("  fegen bench-serve [flags]                    measure serve latency/throughput");
    println!();
    println!("measure flags:");
    println!("  --dataset-dir <dir>      dataset directory (required)");
    println!("  --resume                 continue a partial or corrupted dataset");
    println!("  --jobs <n>               parallel measurement workers (default 1)");
    println!("  --retry <n>              attempts per site before quarantine (default 3)");
    println!("  --quarantine-after <n>   benchmark quarantine threshold (default 4)");
    println!("  --seed <n>               master seed");
    println!("  --paper                  paper-scale suite (default: quick preset)");
    println!();
    println!("search flags:");
    println!("  --checkpoint-dir <dir>   write resumable snapshots into <dir>");
    println!("  --checkpoint-every <n>   snapshot every n GP generations (default 5)");
    println!("  --resume <path>          continue from a checkpoint file or directory");
    println!("  --seed <n>               master seed");
    println!("  --paper                  paper-scale budgets (default: quick preset)");
    println!("  --engine <name>          evaluation engine: compiled (default) | interp");
    println!("  --islands <n>            island populations per GP run (default 1)");
    println!("  --migration-every <n>    rounds between elite migrations (default 5)");
    println!("  --island-restart-limit <n>  crashed retries before freezing an island (default 3)");
    println!("  --workers <n>            island worker threads (results identical for any n)");
    println!("  --workers-proc <n>       step islands in n worker processes (results identical)");
    println!("  --worker-channel <name>  process-worker channel: stdio (default) | unix-socket");
    println!();
    println!("bench-perf flags:");
    println!("  --out <path>             JSON report path (default BENCH_eval.json)");
    println!("  --quick                  shorter measurement windows (CI smoke mode)");
    println!();
    println!("bench-measure flags:");
    println!("  --out <path>             JSON report path (default BENCH_measure.json)");
    println!("  --quick                  tiny suite + reduced sampling (CI smoke mode)");
    println!("  --jobs <n>               parallel workers for both campaigns (default 1)");
    println!();
    println!("train-model flags:");
    println!("  --out <path>             artifact path (default model.fgm)");
    println!("  --feature <expr>         feature to evaluate (repeatable; default: paper set)");
    println!("  --paper                  paper-scale evaluation budget");
    println!();
    println!("serve flags:");
    println!("  --model <path>           model artifact to serve (required)");
    println!("  --stdio                  speak frames on stdin/stdout (one client)");
    println!("  --socket <path>          listen on a Unix socket (many clients)");
    println!("  --arena-cache <n>        flattened-arena LRU capacity (default 1024)");
    println!("  --reload-every <n>       poll the artifact for hot-reload every n requests");
    println!();
    println!("bench-serve flags:");
    println!("  --out <path>             JSON report path (default BENCH_serve.json)");
    println!("  --quick                  fewer requests per batch size (CI smoke mode)");
    println!("  --arena-cache <n>        daemon arena LRU capacity (default 32, to observe eviction)");
    println!();
    println!("telemetry flags (search + measure + serve):");
    println!("  --telemetry-dir <dir>    append JSONL events to <dir>/events.jsonl");
    println!("  --log-json               mirror every event to stderr as JSON");
    println!("  --progress               human-readable progress lines on stderr");
}

fn arg(args: &[String], i: usize) -> Result<&str, Anyhow> {
    args.get(i)
        .map(String::as_str)
        .ok_or_else(|| format!("missing argument #{i} (try `fegen help`)").into())
}

fn parse_num(s: &str) -> Result<usize, Anyhow> {
    Ok(s.parse::<usize>()
        .map_err(|_| format!("`{s}` is not a number"))?)
}

fn load(path: &str) -> Result<(fegen::lang::Program, RtlProgram), Anyhow> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("reading `{path}`: {e}"))?;
    let ast = fegen::lang::parse_program(&source)?;
    let rtl = lower_program(&ast)?;
    Ok((ast, rtl))
}

fn find_func<'p>(rtl: &'p RtlProgram, name: &str) -> Result<&'p fegen::rtl::RtlFunction, Anyhow> {
    rtl.function(name)
        .ok_or_else(|| format!("no function `{name}`").into())
}

fn cmd_parse(path: &str) -> Result<(), Anyhow> {
    let (ast, _) = load(path)?;
    print!("{}", fegen::lang::print_program(&ast));
    Ok(())
}

fn cmd_rtl(path: &str, func: Option<&str>) -> Result<(), Anyhow> {
    let (_, rtl) = load(path)?;
    for f in &rtl.functions {
        if func.is_none_or(|n| n == f.name) {
            print!("{}", f.dump());
        }
    }
    Ok(())
}

fn cmd_loops(path: &str) -> Result<(), Anyhow> {
    let (_, rtl) = load(path)?;
    println!(
        "{:<24} {:>5} {:>6} {:>7} {:>7} {:>8} {:>8}",
        "loop", "depth", "simple", "trip", "ninsns", "branches", "gcc-dflt"
    );
    for f in &rtl.functions {
        for region in &f.loops {
            let feats = gcc_features(f, region);
            println!(
                "{:<24} {:>5} {:>6} {:>7} {:>7} {:>8} {:>8}",
                format!("{}#{}", f.name, region.id),
                region.depth,
                region.is_simple(),
                region
                    .trip_count()
                    .map_or("?".to_owned(), |t| t.to_string()),
                feats[0],
                feats[4],
                gcc_default_factor(f, region, &GccParams::default()),
            );
        }
    }
    Ok(())
}

fn cmd_unroll(path: &str, func: &str, loop_id: usize, factor: usize) -> Result<(), Anyhow> {
    let (_, rtl) = load(path)?;
    let f = find_func(&rtl, func)?;
    let unrolled = unroll_loop(f, loop_id, factor)?;
    print!("{}", unrolled.dump());
    Ok(())
}

fn cmd_run(path: &str, func: &str, rest: &[String]) -> Result<(), Anyhow> {
    let (_, rtl) = load(path)?;
    let _ = find_func(&rtl, func)?;
    let mut machine = Machine::new(&rtl, SimConfig::default());
    if rtl.function("init").is_some() && func != "init" {
        machine.call("init", &[])?;
    }
    let call_args: Vec<Arg> = rest
        .iter()
        .map(|s| -> Result<Arg, Anyhow> {
            if let Ok(v) = s.parse::<i64>() {
                Ok(Arg::Int(v))
            } else if let Ok(v) = s.parse::<f64>() {
                Ok(Arg::Float(v))
            } else {
                Ok(Arg::Array(s.clone()))
            }
        })
        .collect::<Result<_, _>>()?;
    let result = machine.call(func, &call_args)?;
    println!("result:      {result:?}");
    println!(
        "cycles:      {} (function), {} (total)",
        machine.cycles_of(func),
        machine.total_cycles()
    );
    println!("insns:       {}", machine.insns_executed());
    println!("dcache miss: {}", machine.dcache_misses());
    println!("icache miss: {}", machine.icache_misses());
    println!("mispredicts: {}", machine.mispredicts());
    Ok(())
}

fn cmd_table(path: &str, func: &str, loop_id: usize, n: Option<usize>) -> Result<(), Anyhow> {
    let (_, rtl) = load(path)?;
    let f = find_func(&rtl, func)?;
    let call_args: Vec<Arg> = f
        .params
        .iter()
        .map(|_| Arg::Int(n.unwrap_or(200) as i64))
        .collect();
    let mut baseline = None;
    println!("{:>6} {:>12} {:>9}", "factor", "cycles", "speedup");
    for factor in 0..=15usize {
        let unrolled = unroll_loop(f, loop_id, factor)?;
        let mut program = rtl.clone();
        *program.function_mut(func).expect("checked") = unrolled;
        let mut machine = Machine::new(&program, SimConfig::default());
        if program.function("init").is_some() && func != "init" {
            machine.call("init", &[])?;
        }
        machine.call(func, &call_args)?;
        let cycles = machine.cycles_of(func);
        let base = *baseline.get_or_insert(cycles);
        println!(
            "{factor:>6} {cycles:>12} {:>9.4}",
            base as f64 / cycles as f64
        );
    }
    Ok(())
}

fn cmd_export(path: &str, func: &str, loop_id: usize) -> Result<(), Anyhow> {
    let (_, rtl) = load(path)?;
    let f = find_func(&rtl, func)?;
    let region = f
        .loops
        .iter()
        .find(|l| l.id == loop_id)
        .ok_or_else(|| format!("no loop #{loop_id} in `{func}`"))?;
    print!("{}", export_loop(f, region, &rtl.layout).dump());
    Ok(())
}

fn exported_corpus(rtl: &RtlProgram) -> Vec<fegen::core::ir::IrNode> {
    let mut corpus = Vec::new();
    for f in &rtl.functions {
        for region in &f.loops {
            corpus.push(export_loop(f, region, &rtl.layout));
        }
    }
    corpus
}

fn cmd_grammar(path: &str) -> Result<(), Anyhow> {
    let (_, rtl) = load(path)?;
    let corpus = exported_corpus(&rtl);
    if corpus.is_empty() {
        return Err("the program has no loops to derive a grammar from".into());
    }
    let g = Grammar::derive(corpus.iter());
    println!("derived from {} exported loops", corpus.len());
    let kinds: Vec<&str> = g.kinds().iter().map(|k| k.as_str()).collect();
    println!("node kinds ({}): {}", kinds.len(), kinds.join(" "));
    for a in g.num_attrs() {
        println!("num  @{:<16} in [{}, {}]", a.name.as_str(), a.min, a.max);
    }
    for a in g.bool_attrs() {
        println!("bool @{}", a.as_str());
    }
    for a in g.enum_attrs() {
        let vals: Vec<&str> = a.values.iter().map(|v| v.as_str()).collect();
        println!("enum @{:<16} in {{{}}}", a.name.as_str(), vals.join(", "));
    }
    Ok(())
}

fn cmd_eval(path: &str, func: &str, loop_id: usize, expr: &str) -> Result<(), Anyhow> {
    let (_, rtl) = load(path)?;
    let f = find_func(&rtl, func)?;
    let region = f
        .loops
        .iter()
        .find(|l| l.id == loop_id)
        .ok_or_else(|| format!("no loop #{loop_id} in `{func}`"))?;
    let ir = export_loop(f, region, &rtl.layout);
    let feature = parse_feature(expr)?;
    println!("{}", feature.eval_default(&ir)?);
    Ok(())
}

fn cmd_suite(index: usize) -> Result<(), Anyhow> {
    let config = fegen::suite::SuiteConfig::paper();
    let names = fegen::suite::benchmark_names();
    if index >= names.len() {
        return Err(format!("suite index out of range (0..{})", names.len()).into());
    }
    let (name, suite_name) = names[index];
    let b = fegen::suite::generate_benchmark(name, suite_name, index, &config);
    println!("// benchmark {} ({}), {} loops", b.name, b.suite, b.n_loops);
    print!("{}", fegen::lang::print_program(&b.program));
    Ok(())
}

/// Measures one loop's cycle table over unroll factors 0..=15 (the same
/// protocol as `fegen table`) and pairs it with the loop's exported IR.
fn loop_example(
    rtl: &RtlProgram,
    f: &fegen::rtl::RtlFunction,
    loop_id: usize,
) -> Result<TrainingExample, Anyhow> {
    let region = f
        .loops
        .iter()
        .find(|l| l.id == loop_id)
        .ok_or_else(|| format!("no loop #{loop_id} in `{}`", f.name))?;
    let call_args: Vec<Arg> = f.params.iter().map(|_| Arg::Int(200)).collect();
    let mut cycles = Vec::with_capacity(16);
    for factor in 0..=15usize {
        let unrolled = unroll_loop(f, loop_id, factor)?;
        let mut program = rtl.clone();
        let slot = program
            .function_mut(&f.name)
            .ok_or_else(|| format!("no function `{}`", f.name))?;
        *slot = unrolled;
        let mut machine = Machine::new(&program, SimConfig::default());
        if program.function("init").is_some() && f.name != "init" {
            machine.call("init", &[])?;
        }
        machine.call(&f.name, &call_args)?;
        cycles.push(machine.cycles_of(&f.name) as f64);
    }
    Ok(TrainingExample {
        ir: export_loop(f, region, &rtl.layout),
        cycles,
    })
}

/// Builds the training corpus for `fegen search`: every measurable loop of
/// the program. Loops that fail to unroll or simulate are skipped with a
/// notice instead of aborting the search.
fn training_examples_from(rtl: &RtlProgram) -> Vec<TrainingExample> {
    let mut examples = Vec::new();
    for f in &rtl.functions {
        if f.name == "init" {
            continue;
        }
        for region in &f.loops {
            match loop_example(rtl, f, region.id) {
                Ok(e) => examples.push(e),
                Err(e) => eprintln!("fegen: skipping {}#{}: {e}", f.name, region.id),
            }
        }
    }
    examples
}

/// Builds a telemetry handle from the shared `--telemetry-dir`,
/// `--log-json` and `--progress` flags (disabled when none are given).
fn build_telemetry(
    dir: Option<&str>,
    log_json: bool,
    progress: bool,
) -> Result<fegen::core::Telemetry, Anyhow> {
    fegen::core::TelemetryConfig {
        dir: dir.map(std::path::PathBuf::from),
        log_json,
        progress,
    }
    .build()
    .map_err(|e| format!("opening telemetry sink: {e}").into())
}

/// Hidden entry point for `--workers-proc`: runs the island-stepping loop
/// over stdin/stdout frames until the supervisor closes the connection. Any
/// protocol violation (malformed handshake, version skew, digest mismatch)
/// is a typed error on stderr and a nonzero exit — never a hang.
fn cmd_island_worker() -> Result<(), Anyhow> {
    fegen::core::run_stdio_worker().map_err(|e| format!("island-worker: {e}").into())
}

fn cmd_report(dir: &str) -> Result<(), Anyhow> {
    let summary = fegen::core::telemetry::report::summarize_dir(std::path::Path::new(dir))
        .map_err(|e| format!("reading telemetry from `{dir}`: {e}"))?;
    print!("{summary}");
    Ok(())
}

fn cmd_search(path: &str, flags: &[String]) -> Result<(), Anyhow> {
    let mut checkpoint_dir: Option<String> = None;
    let mut checkpoint_every = 5usize;
    let mut resume: Option<String> = None;
    let mut seed: Option<u64> = None;
    let mut paper = false;
    let mut engine = EvalEngine::default();
    let mut telemetry_dir: Option<String> = None;
    let mut log_json = false;
    let mut progress = false;
    let mut islands: Option<usize> = None;
    let mut migration_every: Option<usize> = None;
    let mut island_restart_limit: Option<usize> = None;
    let mut workers = 1usize;
    let mut workers_proc: Option<usize> = None;
    let mut worker_channel = fegen::core::ChannelKind::Stdio;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, Anyhow> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value").into())
        };
        match flag.as_str() {
            "--checkpoint-dir" => checkpoint_dir = Some(value("--checkpoint-dir")?),
            "--checkpoint-every" => {
                checkpoint_every = parse_num(&value("--checkpoint-every")?)?.max(1)
            }
            "--resume" => resume = Some(value("--resume")?),
            "--seed" => {
                let v = value("--seed")?;
                seed = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("`{v}` is not a number"))?,
                );
            }
            "--paper" => paper = true,
            "--islands" => islands = Some(parse_num(&value("--islands")?)?.max(1)),
            "--migration-every" => {
                migration_every = Some(parse_num(&value("--migration-every")?)?.max(1))
            }
            "--island-restart-limit" => {
                island_restart_limit = Some(parse_num(&value("--island-restart-limit")?)?)
            }
            "--workers" => workers = parse_num(&value("--workers")?)?.max(1),
            "--workers-proc" => workers_proc = Some(parse_num(&value("--workers-proc")?)?.max(1)),
            "--worker-channel" => {
                worker_channel = match value("--worker-channel")?.as_str() {
                    "stdio" => fegen::core::ChannelKind::Stdio,
                    "unix" | "unix-socket" => fegen::core::ChannelKind::UnixSocket,
                    other => {
                        return Err(format!(
                            "unknown worker channel `{other}` (expected `stdio` or `unix-socket`)"
                        )
                        .into())
                    }
                };
            }
            "--telemetry-dir" => telemetry_dir = Some(value("--telemetry-dir")?),
            "--log-json" => log_json = true,
            "--progress" => progress = true,
            "--engine" => {
                engine = match value("--engine")?.as_str() {
                    "compiled" | "vm" => EvalEngine::Compiled,
                    "interp" | "interpreter" => EvalEngine::Interpreter,
                    other => {
                        return Err(format!(
                            "unknown engine `{other}` (expected `compiled` or `interp`)"
                        )
                        .into())
                    }
                };
            }
            other => return Err(format!("unknown search flag `{other}`").into()),
        }
    }

    let (_, rtl) = load(path)?;
    let examples = training_examples_from(&rtl);
    if examples.is_empty() {
        return Err("the program has no measurable loops to search over".into());
    }
    eprintln!("searching over {} loops", examples.len());

    let mut config = if paper {
        SearchConfig::paper()
    } else {
        SearchConfig::quick()
    };
    if let Some(s) = seed {
        config.seed = s;
    }
    // Topology flags enter the config (they define the trajectory and the
    // checkpoint identity); `--workers` stays a driver knob (any value
    // yields byte-identical results).
    if let Some(n) = islands {
        config.topology.islands = n;
    }
    if let Some(n) = migration_every {
        config.topology.migration_every = n;
    }
    if let Some(n) = island_restart_limit {
        config.topology.restart_limit = n;
    }
    let search = FeatureSearch::from_examples(&examples, config).with_engine(engine);
    let mut driver: SearchDriver = search.driver().workers(workers);
    if let Some(n) = workers_proc {
        // Re-invoke this very binary as the worker; the supervisor owns all
        // robustness policy, so the launcher is just argv + channel.
        let exe = std::env::current_exe()
            .map_err(|e| format!("locating the fegen binary for worker spawn: {e}"))?;
        let launcher = fegen::core::WorkerLauncher::Command {
            argv: vec![exe.to_string_lossy().into_owned(), "island-worker".into()],
            channel: worker_channel,
        };
        driver = driver.process_workers(n, launcher);
    }
    if let Some(dir) = &checkpoint_dir {
        driver = driver.checkpoint(dir, checkpoint_every);
    }
    driver = driver.telemetry(build_telemetry(
        telemetry_dir.as_deref(),
        log_json,
        progress,
    )?);
    let result = match &resume {
        Some(p) => driver.resume(p, &examples),
        None => driver.run(&examples),
    };
    match result {
        Ok(outcome) => {
            print_outcome(&outcome);
            Ok(())
        }
        Err(SearchError::Interrupted {
            checkpoint,
            total_generations,
        }) => match checkpoint {
            Some(p) => Err(format!(
                "interrupted after {total_generations} generations; \
                     resume with `--resume {}`",
                p.display()
            )
            .into()),
            None => Err(format!(
                "interrupted after {total_generations} generations \
                     (run with --checkpoint-dir to make interruptions resumable)"
            )
            .into()),
        },
        Err(e) => Err(e.into()),
    }
}

fn cmd_measure(flags: &[String]) -> Result<(), Anyhow> {
    use fegen::bench::{
        campaign_fingerprint, run_campaign_with_telemetry, CampaignConfig, CampaignError,
        DatasetStore, ExperimentConfig,
    };
    let mut dataset_dir: Option<String> = None;
    let mut resume = false;
    let mut paper = false;
    let mut seed: Option<u64> = None;
    let mut campaign = CampaignConfig::default();
    let mut telemetry_dir: Option<String> = None;
    let mut log_json = false;
    let mut progress = false;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, Anyhow> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value").into())
        };
        match flag.as_str() {
            "--dataset-dir" => dataset_dir = Some(value("--dataset-dir")?),
            "--resume" => resume = true,
            "--jobs" => campaign.jobs = parse_num(&value("--jobs")?)?.max(1),
            "--retry" => campaign.retry = parse_num(&value("--retry")?)?.max(1),
            "--quarantine-after" => {
                campaign.quarantine_after = parse_num(&value("--quarantine-after")?)?.max(1)
            }
            "--seed" => {
                let v = value("--seed")?;
                seed = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("`{v}` is not a number"))?,
                );
            }
            "--paper" => paper = true,
            "--telemetry-dir" => telemetry_dir = Some(value("--telemetry-dir")?),
            "--log-json" => log_json = true,
            "--progress" => progress = true,
            other => return Err(format!("unknown measure flag `{other}`").into()),
        }
    }
    let dir = dataset_dir.ok_or("fegen measure needs --dataset-dir <dir>")?;
    let telemetry = build_telemetry(telemetry_dir.as_deref(), log_json, progress)?;
    let mut config = if paper {
        ExperimentConfig::paper()
    } else {
        ExperimentConfig::quick()
    };
    if let Some(s) = seed {
        config.seed = s;
    }
    let fingerprint = campaign_fingerprint(&config, &campaign.sampling);
    let store = DatasetStore::open(std::path::Path::new(&dir), fingerprint)?
        .with_telemetry(telemetry.clone());
    if store.has_shards() && !resume {
        return Err(Box::new(CampaignError::DatasetExists {
            dir: store.dir().to_path_buf(),
        }));
    }
    eprintln!(
        "measuring {} benchmark(s) into {dir} (fingerprint {fingerprint:#x}, {} job(s))",
        config.suite.n_benchmarks, campaign.jobs
    );
    let cancel = fegen::core::CancelToken::new();
    let report =
        run_campaign_with_telemetry(&config, &campaign, &store, None, &cancel, &telemetry)?;
    print!("{}", fegen::bench::report::campaign_summary(&report));
    Ok(())
}

/// The evaluation step budget used for throughput measurement (the quick
/// preset's per-example budget).
const BENCH_BUDGET: u64 = 60_000;

/// Times repeated executions of `pass` for roughly `window`, returning
/// (passes, elapsed seconds). Each pass is one sweep of every feature over
/// every loop.
fn measure(window: std::time::Duration, mut pass: impl FnMut() -> f64) -> (u64, f64) {
    // One warm-up pass keeps lazy setup (interning, page faults) out of the
    // timed region.
    std::hint::black_box(pass());
    let start = std::time::Instant::now();
    let mut passes = 0u64;
    while start.elapsed() < window {
        std::hint::black_box(pass());
        passes += 1;
    }
    (passes.max(1), start.elapsed().as_secs_f64())
}

fn cmd_bench_perf(flags: &[String]) -> Result<(), Anyhow> {
    let mut out = "BENCH_eval.json".to_owned();
    let mut quick = false;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => {
                out = it.next().cloned().ok_or("--out needs a value")?;
            }
            "--quick" => quick = true,
            other => return Err(format!("unknown bench-perf flag `{other}`").into()),
        }
    }
    let window = std::time::Duration::from_millis(if quick { 120 } else { 600 });

    // The workload: every loop of the generated benchmark suite, swept by a
    // mix of hand-picked search-typical features and grammar-generated ones
    // (the actual shape of a GP population).
    let suite = fegen::suite::generate_suite(&fegen::suite::SuiteConfig::tiny());
    let mut loops = Vec::new();
    for b in &suite {
        let rtl = lower_program(&b.program)?;
        for f in &rtl.functions {
            for region in &f.loops {
                loops.push(export_loop(f, region, &rtl.layout));
            }
        }
    }
    if loops.is_empty() {
        return Err("the benchmark suite produced no loops".into());
    }
    let grammar = Grammar::derive(loops.iter());
    /// Number of hand-picked paper-shaped features at the front of the set.
    const PAPER_FEATURES: usize = 5;
    let mut features: Vec<FeatureExpr> = [
        "count(//*)",
        "count(filter(//*, is-type(reg)))",
        "count(filter(//*, !(is-type(wide-int) || is-type(const_double))))",
        "max(filter(/*, is-type(basic-block)), count(filter(//*, is-type(insn))))",
        "count(filter(//*, is-type(insn))) / (1 + count(filter(//*, is-type(basic-block))))",
    ]
    .iter()
    .map(|s| parse_feature(s))
    .collect::<Result<_, _>>()?;
    use rand::SeedableRng;
    /// Grammar depths of the generated mix; each contributes
    /// `GEN_PER_DEPTH` features after the paper-shaped group.
    const GEN_DEPTHS: [usize; 3] = [3, 4, 5];
    /// Generated features per depth bucket.
    const GEN_PER_DEPTH: usize = 8;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xbe7c);
    for depth in GEN_DEPTHS {
        for _ in 0..GEN_PER_DEPTH {
            features.push(grammar.gen_feature(&mut rng, depth));
        }
    }
    // Programs compiled and loops flattened once, exactly as the search
    // amortises them; cold-VM sweeps run without the result cache.
    let arenas: Vec<IrArena> = loops.iter().map(IrArena::from_tree).collect();
    let programs: Vec<Program> = features.iter().map(Program::compile).collect();

    // Sanity before timing: the engines must agree on every outcome.
    for (f, p) in features.iter().zip(&programs) {
        for (ir, arena) in loops.iter().zip(&arenas) {
            let a = f.eval_with_budget(ir, BENCH_BUDGET);
            let b = p.eval(arena, BENCH_BUDGET);
            if a != b {
                return Err(format!("engines disagree on `{f}`: {a:?} vs {b:?}").into());
            }
        }
    }

    // Two cold-VM groups: the paper-shaped features (counts over filtered
    // traversals, the shapes the GP converges to — Figure 16) and the
    // grammar-generated mix (a random population slice, including deep
    // frame-path aggregates the indexed paths cannot fuse).
    let mut group_stats = Vec::new();
    for (name, range) in [
        ("paper_features", 0..PAPER_FEATURES),
        ("generated_features", PAPER_FEATURES..features.len()),
    ] {
        let fs = &features[range.clone()];
        let ps = &programs[range];
        let per_pass = (fs.len() * loops.len()) as f64;
        let (ip, is) = measure(window, || {
            let mut acc = 0.0;
            for f in fs {
                for ir in &loops {
                    acc += f.eval_with_budget(ir, BENCH_BUDGET).unwrap_or(0.0);
                }
            }
            acc
        });
        let interp_eps = ip as f64 * per_pass / is;
        let (vp, vs) = measure(window, || {
            let mut acc = 0.0;
            for p in ps {
                for arena in &arenas {
                    acc += p.eval(arena, BENCH_BUDGET).unwrap_or(0.0);
                }
            }
            acc
        });
        let vm_eps = vp as f64 * per_pass / vs;
        group_stats.push((name, fs.len(), interp_eps, vm_eps, vm_eps / interp_eps));
    }

    // Per-depth breakdown of the generated mix: which grammar depths the
    // loop-nest planner actually accelerates, and how often programs still
    // fall back to the frame path.
    let mut depth_stats = Vec::new();
    for (bucket, depth) in GEN_DEPTHS.iter().enumerate() {
        let lo = PAPER_FEATURES + bucket * GEN_PER_DEPTH;
        let range = lo..lo + GEN_PER_DEPTH;
        let fs = &features[range.clone()];
        let ps = &programs[range];
        let per_pass = (fs.len() * loops.len()) as f64;
        let (ip, is) = measure(window, || {
            let mut acc = 0.0;
            for f in fs {
                for ir in &loops {
                    acc += f.eval_with_budget(ir, BENCH_BUDGET).unwrap_or(0.0);
                }
            }
            acc
        });
        let interp_eps = ip as f64 * per_pass / is;
        let (vp, vs) = measure(window, || {
            let mut acc = 0.0;
            for p in ps {
                for arena in &arenas {
                    acc += p.eval(arena, BENCH_BUDGET).unwrap_or(0.0);
                }
            }
            acc
        });
        let vm_eps = vp as f64 * per_pass / vs;
        depth_stats.push((*depth, vm_eps / interp_eps));
    }
    let gen_paths: Vec<ProgramPath> = programs[PAPER_FEATURES..]
        .iter()
        .map(Program::path)
        .collect();
    let count_path = |p: ProgramPath| gen_paths.iter().filter(|&&q| q == p).count();
    let (n_fast, n_plan, n_frame) = (
        count_path(ProgramPath::Fast),
        count_path(ProgramPath::LoopNest),
        count_path(ProgramPath::Frame),
    );
    let frame_pct = 100.0 * n_frame as f64 / gen_paths.len() as f64;

    // The pool as the search drives it: warm program + result caches, all
    // features; its baseline is the interpreter over the same full sweep.
    let per_pass = (features.len() * loops.len()) as f64;
    let (ip, is) = measure(window, || {
        let mut acc = 0.0;
        for f in &features {
            for ir in &loops {
                acc += f.eval_with_budget(ir, BENCH_BUDGET).unwrap_or(0.0);
            }
        }
        acc
    });
    let interp_all_eps = ip as f64 * per_pass / is;
    let pool = EvalPool::new(loops.iter(), EvalEngine::Compiled);
    let (pp, ps) = measure(window, || {
        let mut acc = 0.0;
        for f in &features {
            for (i, v) in pool
                .column(f, BENCH_BUDGET)
                .unwrap_or_default()
                .into_iter()
                .enumerate()
            {
                acc += v + i as f64;
            }
        }
        acc
    });
    let pool_eps = pp as f64 * per_pass / ps;
    let pool_speedup = pool_eps / interp_all_eps;

    let mut json = format!(
        "{{\n  \"loops\": {},\n  \"budget\": {BENCH_BUDGET},\n  \"window_ms\": {},\n",
        loops.len(),
        window.as_millis(),
    );
    for (name, n, interp_eps, vm_eps, speedup) in &group_stats {
        json.push_str(&format!(
            "  \"{name}\": {{\n    \"features\": {n},\n    \
             \"interp_evals_per_sec\": {interp_eps:.1},\n    \
             \"vm_evals_per_sec\": {vm_eps:.1},\n    \"vm_speedup\": {speedup:.2}\n  }},\n",
        ));
    }
    json.push_str("  \"generated_breakdown\": {\n    \"by_depth\": {\n");
    for (i, (depth, speedup)) in depth_stats.iter().enumerate() {
        let comma = if i + 1 < depth_stats.len() { "," } else { "" };
        json.push_str(&format!(
            "      \"{depth}\": {{ \"features\": {GEN_PER_DEPTH}, \"vm_speedup\": {speedup:.2} }}{comma}\n"
        ));
    }
    json.push_str(&format!(
        "    }},\n    \"paths\": {{ \"fast\": {n_fast}, \"loop_nest\": {n_plan}, \
         \"frame\": {n_frame} }},\n    \"frame_fallback_pct\": {frame_pct:.1}\n  }},\n"
    ));
    json.push_str(&format!(
        "  \"pool_warm\": {{\n    \"features\": {},\n    \
         \"interp_evals_per_sec\": {interp_all_eps:.1},\n    \
         \"evals_per_sec\": {pool_eps:.1},\n    \"speedup\": {pool_speedup:.2}\n  }}\n}}\n",
        features.len(),
    ));
    std::fs::write(&out, &json).map_err(|e| format!("writing `{out}`: {e}"))?;
    println!("{} loops, budget {BENCH_BUDGET}", loops.len());
    for (name, n, interp_eps, vm_eps, speedup) in &group_stats {
        println!(
            "{name:>20} ({n:>2}): interp {interp_eps:>10.0} ev/s, vm {vm_eps:>10.0} ev/s ({speedup:.1}x)"
        );
    }
    for (depth, speedup) in &depth_stats {
        println!(
            "{:>20} ({GEN_PER_DEPTH:>2}): vm {speedup:.1}x",
            format!("depth {depth}")
        );
    }
    println!(
        "{:>20}     : {n_fast} fast / {n_plan} loop-nest / {n_frame} frame ({frame_pct:.1}% fallback)",
        "generated paths",
    );
    println!(
        "{:>20} ({:>2}): interp {interp_all_eps:>10.0} ev/s, pool {pool_eps:>10.0} ev/s ({pool_speedup:.1}x)",
        "pool_warm",
        features.len(),
    );
    println!("report written to {out}");

    // Coarse regression guards (CI smoke), checked after the report is on
    // disk so a failure still leaves the numbers behind for diagnosis. The
    // compiled engine must at least hold parity with the interpreter on the
    // paper-shaped group — the measured margin is ~7x, so tripping this
    // means a fast path broke, not that the runner was noisy. The generated
    // mix must clear a conservative floor well under the measured speedup,
    // so the loop-nest planner gap cannot silently reopen.
    let (name, _, interp_eps, vm_eps, _) = group_stats[0];
    if vm_eps < interp_eps {
        return Err(format!(
            "perf regression: {name} vm {vm_eps:.0} ev/s < interp {interp_eps:.0} ev/s"
        )
        .into());
    }
    /// Minimum acceptable generated-mix speedup.
    const GENERATED_SPEEDUP_FLOOR: f64 = 2.5;
    let (name, _, _, _, gen_speedup) = group_stats[1];
    if gen_speedup < GENERATED_SPEEDUP_FLOOR {
        return Err(format!(
            "perf regression: {name} speedup {gen_speedup:.2}x below the \
             {GENERATED_SPEEDUP_FLOOR:.1}x floor"
        )
        .into());
    }
    Ok(())
}

fn cmd_bench_measure(flags: &[String]) -> Result<(), Anyhow> {
    use fegen::bench::{
        campaign_fingerprint, run_campaign, CampaignConfig, CampaignReport, DatasetStore,
        ExperimentConfig, MeasureMode, SamplingPolicy,
    };
    let mut out = "BENCH_measure.json".to_owned();
    let mut quick = false;
    let mut jobs = 1usize;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => {
                out = it.next().cloned().ok_or("--out needs a value")?;
            }
            "--quick" => quick = true,
            "--jobs" => {
                jobs = parse_num(it.next().ok_or("--jobs needs a value")?)?.max(1);
            }
            other => return Err(format!("unknown bench-measure flag `{other}`").into()),
        }
    }

    let mut config = ExperimentConfig::quick();
    let mut sampling = SamplingPolicy::default();
    if quick {
        // CI smoke mode: the 3-benchmark suite with the resilience tests'
        // reduced sampling — the protocol is unchanged, only the scale.
        config.suite = fegen::suite::SuiteConfig::tiny();
        sampling.base_runs = 8;
        sampling.max_runs = 16;
        sampling.target_log_iqr = 0.1;
    }
    let fingerprint = campaign_fingerprint(&config, &sampling);
    let base = std::env::temp_dir().join(format!("fegen-bench-measure-{}", std::process::id()));

    // Both campaigns share one fingerprint (MeasureMode is execution
    // policy, not dataset identity) and run with identical settings; only
    // how each cell's ground truth is obtained differs.
    let run_mode = |mode: MeasureMode, tag: &str| -> Result<(CampaignReport, f64, DatasetStore), Anyhow> {
        let dir = base.join(tag);
        let _ = std::fs::remove_dir_all(&dir);
        let store = DatasetStore::open(&dir, fingerprint)?;
        let campaign = CampaignConfig {
            jobs,
            sampling: sampling.clone(),
            measure: mode,
            ..CampaignConfig::default()
        };
        let start = std::time::Instant::now();
        let report = run_campaign(&config, &campaign, &store, None, &fegen::core::CancelToken::new())?;
        Ok((report, start.elapsed().as_secs_f64(), store))
    };
    eprintln!(
        "bench-measure: {} benchmark(s), {jobs} job(s); scratch campaign...",
        config.suite.n_benchmarks
    );
    let (scratch_report, scratch_secs, scratch_store) = run_mode(MeasureMode::Scratch, "scratch")?;
    eprintln!("scratch done in {scratch_secs:.2}s; forked campaign...");
    let (forked_report, forked_secs, forked_store) = run_mode(MeasureMode::Forked, "forked")?;
    eprintln!("forked done in {forked_secs:.2}s");

    let names: Vec<String> = fegen::suite::generate_suite(&config.suite)
        .iter()
        .map(|b| b.name.clone())
        .collect();
    let identical = names.iter().all(|n| {
        let a = std::fs::read(scratch_store.shard_path(n)).ok();
        let b = std::fs::read(forked_store.shard_path(n)).ok();
        a.is_some() && a == b
    });
    let _ = std::fs::remove_dir_all(&base);

    let cells = forked_report.forks;
    let speedup = scratch_secs / forked_secs.max(1e-9);
    let init_reuse = if forked_report.forks > 0 {
        forked_report.init_forks as f64 / forked_report.forks as f64
    } else {
        0.0
    };
    let json = format!(
        "{{\n  \"benchmarks\": {},\n  \"jobs\": {jobs},\n  \"cells\": {cells},\n  \
         \"scratch\": {{ \"secs\": {scratch_secs:.3}, \"cells_per_sec\": {:.1} }},\n  \
         \"forked\": {{ \"secs\": {forked_secs:.3}, \"cells_per_sec\": {:.1}, \
         \"snapshot_builds\": {}, \"forks\": {}, \"init_forks\": {}, \
         \"init_reuse_rate\": {init_reuse:.3} }},\n  \
         \"speedup\": {speedup:.2},\n  \"shards_identical\": {identical}\n}}\n",
        names.len(),
        cells as f64 / scratch_secs.max(1e-9),
        cells as f64 / forked_secs.max(1e-9),
        forked_report.snapshot_builds,
        forked_report.forks,
        forked_report.init_forks,
    );
    std::fs::write(&out, &json).map_err(|e| format!("writing `{out}`: {e}"))?;
    println!(
        "{} benchmark(s), {cells} cell(s): scratch {scratch_secs:.2}s, forked {forked_secs:.2}s \
         ({speedup:.2}x), init-state reuse {:.1}%, shards identical: {identical}",
        names.len(),
        init_reuse * 100.0
    );
    println!("report written to {out}");

    // Guards run after the report is on disk so a failure still leaves the
    // numbers behind for diagnosis. Bit-identity is non-negotiable; the 2x
    // wall-clock floor is conservative against the ~15x measured margin.
    if !identical {
        return Err("fork-once shards diverged from the scratch campaign's".into());
    }
    if scratch_report.sites_measured != forked_report.sites_measured {
        return Err(format!(
            "site counts diverged: scratch {} vs forked {}",
            scratch_report.sites_measured, forked_report.sites_measured
        )
        .into());
    }
    /// Minimum acceptable forked-over-scratch wall-clock ratio.
    const FORK_SPEEDUP_FLOOR: f64 = 2.0;
    if speedup < FORK_SPEEDUP_FLOOR {
        return Err(format!(
            "perf regression: fork-once speedup {speedup:.2}x below the \
             {FORK_SPEEDUP_FLOOR:.1}x floor"
        )
        .into());
    }
    Ok(())
}

fn print_outcome(outcome: &SearchOutcome) {
    println!(
        "baseline speedup {:.4}, oracle ceiling {:.4}, {} generations",
        outcome.baseline_speedup, outcome.oracle_speedup, outcome.total_generations
    );
    if outcome.features.is_empty() {
        println!("no feature improved on the baseline");
        return;
    }
    println!("{:>4} {:>9} {:>6}  feature", "#", "speedup", "gens");
    for (i, step) in outcome.steps.iter().enumerate() {
        println!(
            "{:>4} {:>9.4} {:>6}  {}",
            i + 1,
            step.speedup,
            step.generations,
            step.feature
        );
    }
}

/// The paper-shaped deployment feature set: the structural count/filter
/// shapes the GP search converges to (Figure 16). `train-model` and
/// `bench-serve` use it as the default model basis.
const PAPER_FEATURE_SET: [&str; 5] = [
    "count(//*)",
    "count(filter(//*, is-type(reg)))",
    "count(filter(//*, !(is-type(wide-int) || is-type(const_double))))",
    "max(filter(/*, is-type(basic-block)), count(filter(//*, is-type(insn))))",
    "count(filter(//*, is-type(insn))) / (1 + count(filter(//*, is-type(basic-block))))",
];

fn paper_features() -> Result<Vec<FeatureExpr>, Anyhow> {
    PAPER_FEATURE_SET
        .iter()
        .map(|s| parse_feature(s).map_err(|e| format!("parsing `{s}`: {e}").into()))
        .collect()
}

fn cmd_train_model(path: &str, flags: &[String]) -> Result<(), Anyhow> {
    use fegen::core::serve::ModelArtifact;
    let mut out = "model.fgm".to_owned();
    let mut paper = false;
    let mut feature_texts: Vec<String> = Vec::new();
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => out = it.next().cloned().ok_or("--out needs a value")?,
            "--feature" => {
                feature_texts.push(it.next().cloned().ok_or("--feature needs a value")?);
            }
            "--paper" => paper = true,
            other => return Err(format!("unknown train-model flag `{other}`").into()),
        }
    }
    let (_, rtl) = load(path)?;
    let examples = training_examples_from(&rtl);
    if examples.is_empty() {
        return Err("no measurable loops to train on".into());
    }
    let features: Vec<FeatureExpr> = if feature_texts.is_empty() {
        paper_features()?
    } else {
        feature_texts
            .iter()
            .map(|s| parse_feature(s).map_err(|e| format!("parsing `{s}`: {e}")))
            .collect::<Result<_, _>>()?
    };
    let config = if paper {
        SearchConfig::paper()
    } else {
        SearchConfig::quick()
    };
    let artifact = ModelArtifact::train(&config, &features, &examples)
        .map_err(|e| format!("training model: {e}"))?;
    artifact
        .save(std::path::Path::new(&out))
        .map_err(|e| format!("saving model: {e}"))?;
    println!(
        "model written to {out}: {} feature(s), {} class(es), {} example(s), digest {:#018x}",
        features.len(),
        artifact.n_classes,
        examples.len(),
        artifact.digest(),
    );
    Ok(())
}

fn cmd_serve(flags: &[String]) -> Result<(), Anyhow> {
    use fegen::core::serve::{ServeEngine, ServeOptions};
    let mut model: Option<String> = None;
    let mut socket: Option<String> = None;
    let mut stdio = false;
    let mut opts = ServeOptions::default();
    let mut telemetry_dir: Option<String> = None;
    let mut log_json = false;
    let mut progress = false;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--model" => model = Some(it.next().cloned().ok_or("--model needs a value")?),
            "--stdio" => stdio = true,
            "--socket" => socket = Some(it.next().cloned().ok_or("--socket needs a value")?),
            "--arena-cache" => {
                opts.arena_cache_cap = parse_num(it.next().ok_or("--arena-cache needs a value")?)?;
            }
            "--reload-every" => {
                opts.reload_check_every =
                    parse_num(it.next().ok_or("--reload-every needs a value")?)? as u64;
            }
            "--telemetry-dir" => {
                telemetry_dir = Some(it.next().cloned().ok_or("--telemetry-dir needs a value")?);
            }
            "--log-json" => log_json = true,
            "--progress" => progress = true,
            other => return Err(format!("unknown serve flag `{other}`").into()),
        }
    }
    let model = model.ok_or("serve needs --model <path>")?;
    if stdio == socket.is_some() {
        return Err("serve needs exactly one of --stdio or --socket <path>".into());
    }
    let telemetry = build_telemetry(telemetry_dir.as_deref(), log_json, progress)?;
    let engine = ServeEngine::new(std::path::PathBuf::from(&model), opts, telemetry)
        .map_err(|e| format!("loading model `{model}`: {e}"))?;
    if stdio {
        // stdout is the wire in this mode; nothing else may print to it.
        fegen::core::serve::run_stdio_serve(&engine).map_err(|e| format!("serve: {e}").into())
    } else {
        #[cfg(unix)]
        {
            let path = socket.expect("checked above");
            fegen::core::serve::run_unix_serve(
                std::sync::Arc::new(engine),
                std::path::Path::new(&path),
            )
            .map_err(|e| format!("serve: {e}").into())
        }
        #[cfg(not(unix))]
        Err("--socket requires a Unix platform; use --stdio".into())
    }
}

fn cmd_bench_serve(flags: &[String]) -> Result<(), Anyhow> {
    use fegen::core::serve::{
        decode_response, encode_request, Decision, ModelArtifact, ServeRequest, ServeResponse,
        WireAttr, WireNode, SERVE_PROTOCOL,
    };
    use fegen::core::{gp::transport::StreamTransport, FrameTransport};
    use std::io::Write as _;
    use std::time::Instant;

    let mut out = "BENCH_serve.json".to_owned();
    let mut quick = false;
    let mut arena_cache = 32usize;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => out = it.next().cloned().ok_or("--out needs a value")?,
            "--quick" => quick = true,
            "--arena-cache" => {
                arena_cache = parse_num(it.next().ok_or("--arena-cache needs a value")?)?;
            }
            other => return Err(format!("unknown bench-serve flag `{other}`").into()),
        }
    }
    let batch_sizes: &[usize] = if quick { &[1, 8, 32] } else { &[1, 8, 32, 128] };
    let requests_per_size = if quick { 24 } else { 80 };

    // Stage a model + telemetry dir under a private temp root.
    let root = std::env::temp_dir().join(format!("fegen-bench-serve-{}", std::process::id()));
    std::fs::create_dir_all(&root).map_err(|e| format!("creating `{}`: {e}", root.display()))?;
    let model_path = root.join("model.fgm");
    let tel_dir = root.join("telemetry");

    // Train a small real model over the generated suite: enough loops to
    // be a workload, quick budgets so staging stays in CI bounds.
    let suite = fegen::suite::generate_suite(&fegen::suite::SuiteConfig::tiny());
    let mut examples = Vec::new();
    let mut wire_loops: Vec<WireNode> = Vec::new();
    for b in &suite {
        let rtl = lower_program(&b.program)?;
        for f in &rtl.functions {
            for region in &f.loops {
                wire_loops.push(WireNode::from_ir(&export_loop(f, region, &rtl.layout)));
            }
        }
        if examples.len() < 8 {
            examples.extend(training_examples_from(&rtl));
        }
    }
    if wire_loops.is_empty() {
        return Err("the benchmark suite produced no loops".into());
    }
    let artifact = ModelArtifact::train(&SearchConfig::quick(), &paper_features()?, &examples)
        .map_err(|e| format!("training bench model: {e}"))?;
    artifact
        .save(&model_path)
        .map_err(|e| format!("saving bench model: {e}"))?;

    // The daemon under test: the real binary, stdio transport, a small
    // arena cache so the bounded-memory path (eviction) actually runs.
    let exe = std::env::current_exe().map_err(|e| format!("locating fegen binary: {e}"))?;
    let mut child = std::process::Command::new(&exe)
        .arg("serve")
        .arg("--stdio")
        .arg("--model")
        .arg(&model_path)
        .arg("--arena-cache")
        .arg(arena_cache.to_string())
        .arg("--telemetry-dir")
        .arg(&tel_dir)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawning serve daemon: {e}"))?;
    let child_in = child.stdin.take().ok_or("child stdin missing")?;
    let child_out = child.stdout.take().ok_or("child stdout missing")?;
    let mut wire = StreamTransport::new(child_out, child_in);

    let send = |wire: &mut StreamTransport<_, _>, req: &ServeRequest| -> Result<(), Anyhow> {
        wire.send(&encode_request(req)?)
            .map_err(|e| format!("sending to daemon: {e}").into())
    };
    let recv = |wire: &mut StreamTransport<_, _>| -> Result<ServeResponse, Anyhow> {
        let payload = wire.recv().map_err(|e| format!("daemon hung up: {e}"))?;
        decode_response(&payload).map_err(|e| format!("bad daemon response: {e}").into())
    };

    send(&mut wire, &ServeRequest::Hello { protocol: SERVE_PROTOCOL })?;
    match recv(&mut wire)? {
        ServeResponse::HelloAck { n_features, .. } => {
            eprintln!("bench-serve: daemon up, {n_features} feature(s)");
        }
        other => return Err(format!("expected HelloAck, got {other:?}").into()),
    }

    // A request stream with more distinct loop shapes than the arena cache
    // can hold: each variant perturbs `num-iter`, so digests differ and the
    // LRU must evict — the bounded-RSS path, not just the warm-hit path.
    let distinct = (2 * arena_cache).max(wire_loops.len());
    let variant = |v: usize| -> WireNode {
        let mut node = wire_loops[v % wire_loops.len()].clone();
        node.attrs
            .retain(|(name, _)| name != "bench-variant");
        node.attrs
            .push(("bench-variant".to_owned(), WireAttr::Num((v / wire_loops.len()) as f64)));
        node
    };

    let mut next_id = 1u64;
    let mut results = Vec::new();
    for &batch in batch_sizes {
        let mut latencies_us: Vec<u64> = Vec::with_capacity(requests_per_size);
        let mut loops_sent = 0usize;
        let started = Instant::now();
        for r in 0..requests_per_size {
            let loops: Vec<WireNode> = (0..batch)
                .map(|i| variant((r * batch + i) % distinct))
                .collect();
            loops_sent += loops.len();
            let id = next_id;
            next_id += 1;
            let t0 = Instant::now();
            send(&mut wire, &ServeRequest::Predict { id, loops })?;
            match recv(&mut wire)? {
                ServeResponse::Decisions { id: got, decisions } => {
                    if got != id || decisions.len() != batch {
                        return Err(format!(
                            "bad decisions: id {got} (want {id}), {} decision(s) (want {batch})",
                            decisions.len()
                        )
                        .into());
                    }
                    for Decision { unroll, .. } in &decisions {
                        if *unroll >= artifact.n_classes {
                            return Err(format!("decision {unroll} out of range").into());
                        }
                    }
                }
                other => return Err(format!("expected Decisions, got {other:?}").into()),
            }
            latencies_us.push(t0.elapsed().as_micros() as u64);
        }
        let total_s = started.elapsed().as_secs_f64();
        latencies_us.sort_unstable();
        let p50 = latencies_us[latencies_us.len() / 2];
        let p99 = latencies_us[(latencies_us.len() * 99 / 100).min(latencies_us.len() - 1)];
        let throughput = loops_sent as f64 / total_s;
        eprintln!(
            "bench-serve: batch {batch:>4}: p50 {p50:>6}µs, p99 {p99:>6}µs, {throughput:>9.0} loops/s"
        );
        results.push((batch, p50, p99, throughput));
    }

    // Final counters from the daemon itself, then a clean shutdown.
    let stats = {
        send(&mut wire, &ServeRequest::Stats { id: next_id })?;
        match recv(&mut wire)? {
            ServeResponse::StatsReport { stats, .. } => stats,
            other => return Err(format!("expected StatsReport, got {other:?}").into()),
        }
    };
    send(&mut wire, &ServeRequest::Shutdown)?;
    match recv(&mut wire)? {
        ServeResponse::Bye => {}
        other => return Err(format!("expected Bye, got {other:?}").into()),
    }
    drop(wire);
    let status = child.wait().map_err(|e| format!("waiting for daemon: {e}"))?;
    if !status.success() {
        return Err(format!("daemon exited uncleanly: {status}").into());
    }

    let mut json = String::from("{\n  \"batches\": [\n");
    for (i, (batch, p50, p99, throughput)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{ \"batch\": {batch}, \"p50_us\": {p50}, \"p99_us\": {p99}, \
             \"throughput_loops_per_sec\": {throughput:.1} }}{comma}\n"
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"requests\": {},\n  \"loops_evaluated\": {},\n  \"errors\": {},\n  \
         \"arena_cache_cap\": {arena_cache},\n  \"arena_hits\": {},\n  \"arena_misses\": {},\n  \
         \"arena_evictions\": {},\n  \"arena_entries\": {},\n  \"queue_depth_peak\": {}\n}}\n",
        stats.requests,
        stats.loops_evaluated,
        stats.errors,
        stats.arena_hits,
        stats.arena_misses,
        stats.arena_evictions,
        stats.arena_entries,
        stats.queue_depth_peak,
    ));
    let mut file =
        std::fs::File::create(&out).map_err(|e| format!("writing `{out}`: {e}"))?;
    file.write_all(json.as_bytes())
        .map_err(|e| format!("writing `{out}`: {e}"))?;

    println!(
        "serve: {} request(s), {} loop(s), {} error(s); arena {} hit(s) / {} miss(es), \
         {} eviction(s), {} resident",
        stats.requests,
        stats.loops_evaluated,
        stats.errors,
        stats.arena_hits,
        stats.arena_misses,
        stats.arena_evictions,
        stats.arena_entries,
    );
    print!(
        "{}",
        fegen::core::telemetry::report::summarize_dir(&tel_dir)
            .map_err(|e| format!("daemon telemetry unreadable: {e}"))?
    );
    println!("report written to {out}");
    let _ = std::fs::remove_dir_all(&root);

    // Floors checked after the report is on disk (same contract as the
    // other bench commands): nothing dropped, the bounded cache actually
    // cycled, and throughput clears a floor far under the measured rate.
    if stats.errors != 0 {
        return Err(format!("{} request(s) answered with errors", stats.errors).into());
    }
    if stats.arena_evictions == 0 {
        return Err("arena LRU never evicted; the bounded-memory path went unexercised".into());
    }
    if stats.arena_entries as usize > arena_cache {
        return Err(format!(
            "arena cache holds {} entries, over its {arena_cache} cap",
            stats.arena_entries
        )
        .into());
    }
    /// Minimum acceptable serve throughput at the largest batch size.
    const SERVE_THROUGHPUT_FLOOR: f64 = 50.0;
    let (_, _, _, best) = results[results.len() - 1];
    if best < SERVE_THROUGHPUT_FLOOR {
        return Err(format!(
            "serve throughput {best:.0} loops/s below the {SERVE_THROUGHPUT_FLOOR:.0} floor"
        )
        .into());
    }
    Ok(())
}

// Silence "unused" for names referenced only in help text.
#[allow(dead_code)]
const _: [&str; 6] = GCC_FEATURE_NAMES;
