//! Quickstart: the whole system in one page.
//!
//! Parse a Tiny-C kernel, lower it to RTL, export a loop for the feature
//! generator, evaluate a hand-written feature on it, and run a miniature
//! GP feature search against measured cycle tables.
//!
//! Run with: `cargo run --release --example quickstart`

use fegen::core::{parse_feature, FeatureSearch, SearchConfig, TrainingExample};
use fegen::rtl::export::export_loop;
use fegen::rtl::lower::lower_program;
use fegen::sim::oracle::{measure_workload, CallSpec, OracleConfig, Workload};
use fegen::sim::Arg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small program: two kernels with different unrolling behaviour.
    // Streaming kernels at several constant trip counts, plus short-trip
    // nested kernels: enough variety for the feature search to have
    // something to discover.
    let mut src = String::from(
        "int data[512];\nint out[512];\n\
         void init() { int i; for (i = 0; i < 512; i = i + 1) { data[i] = i * 31 % 97; } }\n",
    );
    for trip in [12, 48, 120, 240, 480] {
        src.push_str(&format!(
            "int stream{trip}(int n) {{ int i; int s; s = 0;\n\
               for (i = 0; i < {trip}; i = i + 1) {{ s = s + data[i] * 3; }} return s; }}\n"
        ));
    }
    for inner in [2, 3, 5] {
        src.push_str(&format!(
            "void shorty{inner}(int n) {{ int i; int j;\n\
               for (j = 0; j < n; j = j + 1) {{\n\
                 for (i = 0; i < {inner}; i = i + 1) {{ out[i] = data[i] + j; }}\n\
               }}\n\
             }}\n"
        ));
    }
    let src = src.as_str();
    let ast = fegen::lang::parse_program(src)?;
    let rtl = lower_program(&ast)?;
    println!("lowered {} functions", rtl.functions.len());

    // 2. Export a loop and evaluate a feature expression on it.
    let stream = rtl.function("stream480").expect("kernel exists");
    let ir = export_loop(stream, &stream.loops[0], &rtl.layout);
    let feature = parse_feature("count(filter(//*, is-type(mem)))")?;
    println!(
        "feature `{feature}` = {} on the stream loop",
        feature.eval_default(&ir)?
    );
    let trip = parse_feature("get-attr(@num-iter)")?;
    println!("feature `{trip}` = {}", trip.eval_default(&ir)?);

    // 3. Measure every loop's cycle table over unroll factors 0..=15.
    let mut kernels = Vec::new();
    for trip in [12, 48, 120, 240, 480] {
        kernels.push(CallSpec { func: format!("stream{trip}"), args: vec![Arg::Int(0)] });
    }
    for inner in [2, 3, 5] {
        kernels.push(CallSpec { func: format!("shorty{inner}"), args: vec![Arg::Int(300)] });
    }
    let workload = Workload {
        init: vec![CallSpec { func: "init".into(), args: vec![] }],
        kernels,
    };
    let tables = measure_workload(&rtl, &workload, &OracleConfig::default())?;
    let mut examples = Vec::new();
    for t in &tables {
        println!(
            "loop {:<10} best factor {:>2}, speedup at best {:.4}",
            t.site.to_string(),
            t.best_factor(),
            t.cycles[0] / t.cycles[t.best_factor()]
        );
        let f = rtl.function(&t.site.func).expect("function exists");
        let region = f.loops.iter().find(|l| l.id == t.site.loop_id).expect("loop");
        examples.push(TrainingExample {
            ir: export_loop(f, region, &rtl.layout),
            cycles: t.cycles.clone(),
        });
    }

    // 4. Search for features that let a decision tree predict good factors.
    //    (Tiny budgets — this is a demo, not an experiment.)
    let mut config = SearchConfig::quick();
    config.max_features = 3;
    config.max_total_generations = 60;
    // Two loops is a *very* small training set; disable the internal
    // holdout rotation so the demo stays deterministic and instant.
    config.internal_folds = 1;
    config.internal_k = 3;
    let search = FeatureSearch::from_examples(&examples, config);
    let outcome = search.run(&examples);
    println!(
        "search used {} generations and found {} feature(s):",
        outcome.total_generations,
        outcome.features.len()
    );
    for step in &outcome.steps {
        println!("  internal speedup {:.4} <- {}", step.speedup, step.feature);
    }
    Ok(())
}
