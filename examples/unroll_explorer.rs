//! Unroll explorer: the paper's §V data generation in miniature.
//!
//! Takes a Tiny-C kernel (from a file passed as the first argument, or a
//! built-in FIR filter), lowers it, unrolls its first loop by every factor
//! 0..=15 and prints the simulated cycle table — the raw material the
//! whole learning pipeline is built on.
//!
//! Run with: `cargo run --release --example unroll_explorer [source.tc]`

use fegen::rtl::lower::lower_program;
use fegen::rtl::unroll::unroll_loop;
use fegen::sim::{Arg, Machine, SimConfig};

const BUILTIN: &str = "\
    float signal[1024];\n\
    float filtered[1024];\n\
    void init() { int i; for (i = 0; i < 1024; i = i + 1) { signal[i] = (i % 64) * 0.25; } }\n\
    void fir(int n) {\n\
      int i;\n\
      for (i = 0; i < n; i = i + 1) {\n\
        filtered[i] = signal[i] * 0.5 + signal[i + 1] * 0.3 + signal[i + 2] * 0.2;\n\
      }\n\
    }\n";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => BUILTIN.to_owned(),
    };
    let ast = fegen::lang::parse_program(&source)?;
    let rtl = lower_program(&ast)?;

    // The kernel = the last function; `init`, when present, fills inputs.
    let kernel = rtl.functions.last().expect("at least one function");
    let kernel_name = kernel.name.clone();
    if kernel.loops.is_empty() {
        return Err(format!("function `{kernel_name}` has no loops").into());
    }
    println!(";; exploring loop 0 of `{kernel_name}`");
    println!(";; {} instructions before unrolling", kernel.insns.len());
    println!();
    println!("{:>6} {:>12} {:>9} {:>8} {:>8} {:>9}", "factor", "cycles", "speedup", "insns", "ic-miss", "mispred");

    let mut baseline = None;
    for factor in 0..=15usize {
        let unrolled = unroll_loop(rtl.function(&kernel_name).expect("kernel"), 0, factor)?;
        let mut program = rtl.clone();
        *program.function_mut(&kernel_name).expect("kernel") = unrolled;

        let mut machine = Machine::new(&program, SimConfig::default());
        if program.function("init").is_some() {
            machine.call("init", &[])?;
        }
        // Scalar int parameters get a default trip count of 500.
        let args: Vec<Arg> = program
            .function(&kernel_name)
            .expect("kernel")
            .params
            .iter()
            .map(|_| Arg::Int(500))
            .collect();
        machine.call(&kernel_name, &args)?;
        let cycles = machine.cycles_of(&kernel_name);
        let base = *baseline.get_or_insert(cycles);
        println!(
            "{factor:>6} {cycles:>12} {:>9.4} {:>8} {:>8} {:>9}",
            base as f64 / cycles as f64,
            program.function(&kernel_name).expect("kernel").insns.len(),
            machine.icache_misses(),
            machine.mispredicts(),
        );
    }
    Ok(())
}
