//! Compare unrolling heuristics on a single generated benchmark: GCC's
//! default decisions vs the oracle, loop by loop — a per-benchmark slice
//! of the Figure 12 limit study.
//!
//! Run with: `cargo run --release --example compare_heuristics`

use fegen::rtl::heuristic::{gcc_default_factor, gcc_features, GccParams, GCC_FEATURE_NAMES};
use fegen::rtl::lower::lower_program;
use fegen::sim::oracle::{kernel_functions, measure_site, CallSpec, LoopSite, OracleConfig, Workload};
use fegen::suite::{generate_benchmark, ArgDesc, SuiteConfig, SuiteName};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SuiteConfig::tiny();
    let bench = generate_benchmark("demo_dsp", SuiteName::Utdsp, 7, &config);
    println!("benchmark `{}` with {} loops", bench.name, bench.n_loops);

    let rtl = lower_program(&bench.program)?;
    let to_args = |a: &ArgDesc| match a {
        ArgDesc::Int(v) => fegen::sim::Arg::Int(*v),
        ArgDesc::Float(v) => fegen::sim::Arg::Float(*v),
        ArgDesc::Array(n) => fegen::sim::Arg::Array(n.clone()),
    };
    let workload = Workload {
        init: bench
            .init
            .iter()
            .map(|c| CallSpec { func: c.func.clone(), args: c.args.iter().map(to_args).collect() })
            .collect(),
        kernels: bench
            .kernels
            .iter()
            .map(|c| CallSpec { func: c.func.clone(), args: c.args.iter().map(to_args).collect() })
            .collect(),
    };

    let oracle_config = OracleConfig::default();
    let kernel_funcs = kernel_functions(&rtl, &workload);
    println!();
    println!(
        "{:<18} {:>4} {:>6} {:>9} {:>9}  features",
        "loop", "gcc", "best", "gcc-spd", "best-spd"
    );
    for func_name in &kernel_funcs {
        let func = rtl.function(func_name).expect("kernel function");
        for region in &func.loops {
            let site = LoopSite { func: func_name.clone(), loop_id: region.id };
            let m = measure_site(&rtl, &workload, &kernel_funcs, &site, &oracle_config)?;
            let gcc = gcc_default_factor(func, region, &GccParams::default());
            let best = m.best_factor();
            let feats = gcc_features(func, region);
            let brief: Vec<String> = GCC_FEATURE_NAMES
                .iter()
                .zip(&feats)
                .take(3)
                .map(|(n, v)| format!("{n}={v:.0}"))
                .collect();
            println!(
                "{:<18} {gcc:>4} {best:>6} {:>9.4} {:>9.4}  {}",
                site.to_string(),
                m.cycles[0] / m.cycles[gcc.min(15)],
                m.cycles[0] / m.cycles[best],
                brief.join(" ")
            );
        }
    }
    Ok(())
}
