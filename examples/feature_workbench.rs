//! Feature workbench: explore the feature grammar interactively-ish.
//!
//! Derives the grammar from a benchmark suite's exported loops, prints the
//! discovered vocabulary, generates a handful of random features (the GP's
//! raw material), and evaluates any features passed as CLI arguments over
//! a sample of loops.
//!
//! Run with:
//! `cargo run --release --example feature_workbench -- "count(filter(//*, is-type(mem)))"`

use fegen::core::{parse_feature, Grammar};
use fegen::rtl::export::export_loop;
use fegen::rtl::lower::lower_program;
use fegen::suite::{generate_suite, SuiteConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Exported loop corpus from a tiny suite.
    let suite = generate_suite(&SuiteConfig::tiny());
    let mut corpus = Vec::new();
    for b in &suite {
        let rtl = lower_program(&b.program)?;
        for f in &rtl.functions {
            if f.name == "init" {
                continue;
            }
            for region in &f.loops {
                corpus.push(export_loop(f, region, &rtl.layout));
            }
        }
    }
    println!("exported {} loops from {} benchmarks", corpus.len(), suite.len());

    // The automatically derived grammar (paper §VI).
    let grammar = Grammar::derive(corpus.iter());
    println!();
    println!(
        "grammar vocabulary: {} node kinds, {} numeric attrs, {} bool attrs, {} enum attrs",
        grammar.kinds().len(),
        grammar.num_attrs().len(),
        grammar.bool_attrs().len(),
        grammar.enum_attrs().len()
    );
    let kinds: Vec<&str> = grammar.kinds().iter().map(|k| k.as_str()).collect();
    println!("kinds: {}", kinds.join(" "));
    for a in grammar.num_attrs() {
        println!("  @{} in [{}, {}]", a.name, a.min, a.max);
    }

    // Random sentences of the grammar — what the GP population starts from.
    println!();
    println!("random features:");
    let mut rng = StdRng::seed_from_u64(2009);
    for _ in 0..8 {
        let f = grammar.gen_feature(&mut rng, 5);
        let v = f.eval_default(&corpus[0])?;
        println!("  {v:>12.2} <- {f}");
    }

    // Evaluate user-provided features over the corpus.
    for arg in std::env::args().skip(1) {
        let f = parse_feature(&arg)?;
        println!();
        println!("`{f}` over the corpus:");
        for (i, ir) in corpus.iter().take(10).enumerate() {
            println!("  loop {i:>2}: {}", f.eval_default(ir)?);
        }
    }
    Ok(())
}
